"""Benchmark: regenerate the paper's table10 (consistency action frequency).

Prints the reproduced table10 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table10(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table10", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert 0.0 < result.metrics["write_sharing_fraction"] < 0.02
