"""Benchmark: regenerate the paper's figure2 (dynamic file sizes).

Prints the reproduced figure2 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_figure2(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("figure2", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["accesses_below_10kb"] > 0.6
    assert result.metrics["bytes_from_files_over_1mb"] > 0.2
