"""Benchmark: regenerate the paper's table6 (client cache effectiveness).

Prints the reproduced table6 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table6(benchmark, cluster_ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table6", cluster_ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert 0.1 < result.metrics["read_miss_ratio"] < 0.7
    assert result.metrics["writeback_traffic_ratio"] > 0.6
