"""Benchmark: regenerate the paper's table7 (server traffic).

Prints the reproduced table7 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table7(benchmark, cluster_ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table7", cluster_ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert 0.3 < result.metrics["global_filter_ratio"] < 0.8
