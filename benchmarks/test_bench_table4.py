"""Benchmark: regenerate the paper's table4 (client cache sizes).

Prints the reproduced table4 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table4(benchmark, cluster_ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table4", cluster_ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert 1.0 < result.metrics["avg_cache_mb"] < 16.0
