"""Benchmark: regenerate the paper's figure1 (sequential run lengths).

Prints the reproduced figure1 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_figure1(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("figure1", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["runs_below_10kb"] > 0.6
    assert result.metrics["bytes_in_runs_over_1mb"] >= 0.1
