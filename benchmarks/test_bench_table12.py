"""Benchmark: regenerate the paper's table12 (cache consistency overhead).

Prints the reproduced table12 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table12(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table12", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert abs(result.metrics["sprite_byte_ratio"] - 1.0) < 0.1
