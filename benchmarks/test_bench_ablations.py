"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation reruns the cluster simulator with one policy changed and
reports how the Section 5 results move:

* write-through vs the 30-second delayed-write policy (the delay is
  what absorbs ~10% of new bytes and batches writebacks);
* a fixed 10%-of-memory cache (the contemporary UNIX allocation the
  paper contrasts with) vs Sprite's dynamic negotiation;
* no VM preference (the cache may steal any unreferenced page
  immediately) vs the 20-minute rule.
"""

from __future__ import annotations

from repro.caching import compute_cache_sizes, compute_effectiveness, machine_days
from repro.fs import ClusterConfig, run_cluster_on_trace
from repro.fs.counters import ClientCounters


def _aggregate(result) -> ClientCounters:
    return ClientCounters.aggregate(result.final_counters.values())


def _replay(ctx, config: ClusterConfig):
    trace = ctx.traces()[0]
    return run_cluster_on_trace(trace.records, trace.duration, config, seed=13)


def test_bench_ablation_writeback_delay(benchmark, ctx):
    """Write-through forfeits the delayed-write absorption."""
    client_count = ctx.client_count
    base_config = ClusterConfig(client_count=client_count)
    through_config = ClusterConfig(client_count=client_count, write_through=True)

    def run():
        return _replay(ctx, base_config), _replay(ctx, through_config)

    base, through = benchmark.pedantic(run, rounds=1, iterations=1)
    base_counters, through_counters = _aggregate(base), _aggregate(through)
    base_written = base_counters.bytes_written_to_server
    through_written = through_counters.bytes_written_to_server
    print()
    print("Ablation: 30-second delayed write vs write-through")
    print(f"  bytes written to server, delayed : {base_written / 2**20:8.1f} MB")
    print(f"  bytes written to server, through : {through_written / 2**20:8.1f} MB")
    print(f"  absorbed by the delay            : "
          f"{100 * base_counters.dirty_bytes_discarded / max(base_counters.cache_write_bytes, 1):.1f}%")
    # The paper: ~10% of new bytes never reach the server thanks to the
    # delay; write-through must therefore send more.
    assert through_written > base_written
    assert base_counters.dirty_bytes_discarded > 0


def test_bench_ablation_fixed_10pct_cache(benchmark, ctx):
    """The BSD-era fixed 10% cache misses far more than Sprite's
    dynamically negotiated cache."""
    client_count = ctx.client_count
    dynamic_config = ClusterConfig(client_count=client_count)
    fixed_config = ClusterConfig(client_count=client_count, max_cache_fraction=0.10)

    def run():
        return _replay(ctx, dynamic_config), _replay(ctx, fixed_config)

    dynamic, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    dyn_eff = compute_effectiveness(machine_days([dynamic]))
    fix_eff = compute_effectiveness(machine_days([fixed]))
    dyn_size = compute_cache_sizes(machine_days([dynamic]))
    fix_size = compute_cache_sizes(machine_days([fixed]))
    print()
    print("Ablation: dynamic cache vs fixed 10% of memory")
    print(f"  dynamic: avg cache {dyn_size.size.mean / 2**20:.1f} MB, "
          f"read miss {100 * dyn_eff.read_miss.mean:.1f}%")
    print(f"  fixed  : avg cache {fix_size.size.mean / 2**20:.1f} MB, "
          f"read miss {100 * fix_eff.read_miss.mean:.1f}%")
    assert fix_size.size.mean < dyn_size.size.mean
    assert fix_eff.read_miss.mean >= dyn_eff.read_miss.mean - 0.02


def test_bench_ablation_vm_preference(benchmark, ctx):
    """Without the 20-minute rule the cache raids VM pages instantly,
    growing larger at VM's expense."""
    client_count = ctx.client_count
    preferred = ClusterConfig(client_count=client_count)
    greedy = ClusterConfig(client_count=client_count, vm_preference=0.0)

    def run():
        return _replay(ctx, preferred), _replay(ctx, greedy)

    base, nopref = benchmark.pedantic(run, rounds=1, iterations=1)
    base_size = compute_cache_sizes(machine_days([base]))
    nopref_size = compute_cache_sizes(machine_days([nopref]))
    print()
    print("Ablation: 20-minute VM preference vs immediate stealing")
    print(f"  with preference   : avg cache {base_size.size.mean / 2**20:.2f} MB")
    print(f"  without preference: avg cache {nopref_size.size.mean / 2**20:.2f} MB")
    assert nopref_size.size.mean >= base_size.size.mean


def test_bench_ablation_nonvolatile_cache(benchmark, ctx):
    """Section 6's future direction: with non-volatile client cache
    memory the 30-second safety flush becomes unnecessary -- dirty data
    can sit in the cache indefinitely (here: a full day), flushed only
    by recalls and evictions.  Write traffic to the server collapses."""
    client_count = ctx.client_count
    volatile = ClusterConfig(client_count=client_count)
    nvram = ClusterConfig(client_count=client_count, writeback_delay=86_400.0)

    def run():
        return _replay(ctx, volatile), _replay(ctx, nvram)

    base, nv = benchmark.pedantic(run, rounds=1, iterations=1)
    base_counters, nv_counters = _aggregate(base), _aggregate(nv)
    print()
    print("Ablation: volatile (30-s flush) vs non-volatile cache memory")
    print(f"  server write bytes, volatile    : "
          f"{base_counters.bytes_written_to_server / 2**20:8.1f} MB")
    print(f"  server write bytes, non-volatile: "
          f"{nv_counters.bytes_written_to_server / 2**20:8.1f} MB")
    assert (nv_counters.bytes_written_to_server
            < 0.7 * base_counters.bytes_written_to_server)


def test_bench_ablation_longer_writeback_delay(benchmark, ctx):
    """A 120-second delay absorbs more new bytes than 30 seconds (the
    paper's suggested direction once reads stop dominating), at the
    cost of more data exposed to crashes."""
    client_count = ctx.client_count
    delay30 = ClusterConfig(client_count=client_count)
    delay120 = ClusterConfig(client_count=client_count, writeback_delay=120.0)

    def run():
        return _replay(ctx, delay30), _replay(ctx, delay120)

    base, longer = benchmark.pedantic(run, rounds=1, iterations=1)
    base_counters, longer_counters = _aggregate(base), _aggregate(longer)

    def absorption(counters: ClientCounters) -> float:
        return counters.dirty_bytes_discarded / max(counters.cache_write_bytes, 1)

    print()
    print("Ablation: 30-second vs 120-second writeback delay")
    print(f"  absorbed at 30 s : {100 * absorption(base_counters):.1f}%")
    print(f"  absorbed at 120 s: {100 * absorption(longer_counters):.1f}%")
    assert absorption(longer_counters) >= absorption(base_counters)
