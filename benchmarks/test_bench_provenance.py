"""Unit tests for the bench-report provenance envelope (conftest).

Fast, no pipeline fixtures: they pin the ``git status --porcelain``
parsing behind :func:`conftest._tree_is_dirty` and the dirty-tree
refusal in :func:`conftest.write_bench_json`.  The parsing is easy to
get wrong because :func:`conftest._git` strips the subprocess output,
which eats the leading space of the *first* status line (`` M path``
becomes ``M path``) -- a fixed-offset slice then mangles the path and
silently defeats the BENCH_* exemption.
"""

from __future__ import annotations

import pytest

import conftest


def _with_status(monkeypatch, status: str | None) -> None:
    def fake_git(*args: str) -> str | None:
        if args[0] == "rev-parse":
            return "0" * 40
        return status

    monkeypatch.setattr(conftest, "_git", fake_git)


class TestTreeIsDirty:
    def test_clean_tree(self, monkeypatch):
        _with_status(monkeypatch, "")
        assert not conftest._tree_is_dirty()

    def test_source_change_is_dirty(self, monkeypatch):
        _with_status(monkeypatch, " M src/repro/fs/cluster.py")
        assert conftest._tree_is_dirty()

    def test_bench_report_is_exempt(self, monkeypatch):
        # The first line arrives with its leading space stripped (see
        # module docstring); the exemption must still match.
        _with_status(
            monkeypatch,
            "M benchmarks/BENCH_scale.json\n M benchmarks/BENCH_replay.json",
        )
        assert not conftest._tree_is_dirty()

    def test_bench_report_plus_source_is_dirty(self, monkeypatch):
        _with_status(
            monkeypatch,
            "M benchmarks/BENCH_scale.json\n M benchmarks/conftest.py",
        )
        assert conftest._tree_is_dirty()

    def test_renamed_bench_report_is_exempt(self, monkeypatch):
        _with_status(
            monkeypatch,
            "R  benchmarks/BENCH_old.json -> benchmarks/BENCH_new.json",
        )
        assert not conftest._tree_is_dirty()

    def test_non_bench_file_in_benchmarks_is_dirty(self, monkeypatch):
        _with_status(monkeypatch, " M benchmarks/test_bench_replay.py")
        assert conftest._tree_is_dirty()

    def test_git_unavailable_reads_clean(self, monkeypatch):
        # No git -> no stamp to misattribute; don't block the write.
        _with_status(monkeypatch, None)
        assert not conftest._tree_is_dirty()


class TestWriteBenchJson:
    def test_refuses_dirty_tree(self, monkeypatch, tmp_path):
        _with_status(monkeypatch, " M src/repro/fs/cluster.py")
        with pytest.raises(RuntimeError, match="tree is dirty"):
            conftest.write_bench_json("BENCH_never_written.json", {"x": 1})
        assert not (tmp_path / "BENCH_never_written.json").exists()

    def test_allow_dirty_overrides(self, monkeypatch, tmp_path):
        _with_status(monkeypatch, " M src/repro/fs/cluster.py")
        monkeypatch.setattr(conftest, "Path", lambda _: tmp_path / "x")
        out = conftest.write_bench_json(
            "BENCH_tmp.json", {"x": 1}, allow_dirty=True
        )
        assert out.name == "BENCH_tmp.json"

    def test_rejects_reserved_payload_keys(self):
        with pytest.raises(ValueError, match="envelope keys"):
            conftest.write_bench_json("BENCH_tmp.json", {"commit": "abc"})
