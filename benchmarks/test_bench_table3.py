"""Benchmark: regenerate the paper's table3 (file access patterns).

Prints the reproduced table3 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table3(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table3", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["read_only_access_share"] > 0.7
    assert result.metrics["sequential_bytes_fraction"] > 0.9
