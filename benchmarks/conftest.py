"""Shared fixtures for the benchmark suite.

Each bench regenerates one of the paper's tables or figures and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
rendered output).  The expensive inputs -- the eight synthetic traces
and the cluster replays -- are built once per session by the context
fixture; the benchmarks time the analysis/simulation pipeline on top.

The context build goes through the parallel pipeline.  Two environment
variables control it:

* ``REPRO_BENCH_WORKERS`` -- worker processes for the build stages
  (0 = one per core; default 1, serial).
* ``REPRO_BENCH_CACHE`` -- ``off`` disables the artifact cache; any
  other value is the cache directory (default: the library default,
  ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).

At session end the build's timing lands in
``benchmarks/BENCH_pipeline.json``: per-stage wall seconds, worker
count, and cache hit/miss/store counts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

#: Population scale for the bench suite; 0.05 keeps the full suite in
#: tens of seconds.  Raise to 0.25+ for numbers closer to Table 1's
#: absolute magnitudes.
BENCH_SCALE = 0.05


def _bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def _bench_cache() -> bool | str:
    value = os.environ.get("REPRO_BENCH_CACHE", "")
    if value.lower() == "off":
        return False
    return value or True


@pytest.fixture(scope="session")
def ctx(request) -> ExperimentContext:
    context = ExperimentContext(
        scale=BENCH_SCALE,
        seed=1991,
        workers=_bench_workers(),
        cache=_bench_cache(),
    )
    request.config._repro_bench_ctx = context
    context.traces()  # build the eight traces once, up front
    return context


@pytest.fixture(scope="session")
def cluster_ctx(ctx) -> ExperimentContext:
    ctx.cluster_results()  # replay the normal traces once, up front
    return ctx


def pytest_sessionfinish(session) -> None:
    """Write the machine-readable pipeline timing report."""
    context = getattr(session.config, "_repro_bench_ctx", None)
    if context is None:
        return
    report = context.pipeline_report.as_dict()
    report["workers"] = context.workers
    cache = context._artifact_cache
    report["cache"] = cache.stats.as_dict() if cache is not None else None
    out = Path(__file__).parent / "BENCH_pipeline.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
