"""Shared fixtures for the benchmark suite.

Each bench regenerates one of the paper's tables or figures and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
rendered output).  The expensive inputs -- the eight synthetic traces
and the cluster replays -- are built once per session by the context
fixture; the benchmarks time the analysis/simulation pipeline on top.

The context build goes through the parallel pipeline.  Two environment
variables control it:

* ``REPRO_BENCH_WORKERS`` -- worker processes for the build stages
  (0 = one per core; default 1, serial).
* ``REPRO_BENCH_CACHE`` -- ``off`` disables the artifact cache; any
  other value is the cache directory (default: the library default,
  ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).

Machine-readable results land in ``benchmarks/BENCH_*.json``, all
written through :func:`write_bench_json` so every report carries the
same envelope: a schema version, the git commit it was measured at, and
the machine it ran on.  ``BENCH_replay.json`` and ``BENCH_scale.json``
are *committed* artifacts (like the golden tables): regenerate them
with ``pytest benchmarks/test_bench_replay.py --regen-bench`` after an
intentional performance change and review the diff.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

#: Population scale for the bench suite; 0.05 keeps the full suite in
#: tens of seconds.  Raise to 0.25+ for numbers closer to Table 1's
#: absolute magnitudes.
BENCH_SCALE = 0.05

#: Envelope version for every BENCH_*.json written here.  Bump when the
#: envelope keys (not the per-bench payload) change shape.
BENCH_SCHEMA_VERSION = 1


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-bench",
        action="store_true",
        default=False,
        help=(
            "Rewrite the committed benchmarks/BENCH_replay.json and "
            "BENCH_scale.json from fresh measurements instead of "
            "comparing against them (the bench twin of --regen-golden). "
            "Use after an intentional performance change; review the "
            "diff."
        ),
    )


def _bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def _bench_cache() -> bool | str:
    value = os.environ.get("REPRO_BENCH_CACHE", "")
    if value.lower() == "off":
        return False
    return value or True


# --- the unified bench-report writer ----------------------------------------


def _git(*args: str) -> str | None:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    out = proc.stdout.strip()
    return out if proc.returncode == 0 else None


def _git_commit() -> str | None:
    return _git("rev-parse", "HEAD") or None


def _tree_is_dirty() -> bool:
    """True when the working tree differs from HEAD in a way that could
    make the stamped commit a lie about the *measured code*.  Untracked
    files and the bench reports themselves don't count -- regenerating
    one report must not block writing the next in the same session."""
    status = _git("status", "--porcelain", "--untracked-files=no")
    for line in (status or "").splitlines():
        # ``XY path`` -- split off the status code rather than slicing a
        # fixed offset, since _git() strips the first line's leading space.
        fields = line.split(None, 1)
        if len(fields) < 2:
            continue
        path = fields[1].split(" -> ")[-1].strip().strip('"')
        name = Path(path).name
        if path.startswith("benchmarks/") and name.startswith("BENCH_"):
            continue
        return True
    return False


def _machine_info() -> dict:
    return {
        "implementation": platform.python_implementation(),
        "python": platform.python_version(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def calibration_seconds(repeats: int = 3) -> float:
    """Wall clock of a fixed pure-Python workload (best of ``repeats``).

    Dividing a bench's wall seconds by this cancels raw machine speed to
    first order, so committed reports from one machine remain a usable
    regression baseline on another.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i & 7
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def write_bench_json(
    name: str, payload: dict, *, allow_dirty: bool = False
) -> Path:
    """Write ``benchmarks/<name>`` with the shared report envelope.

    ``payload`` keys land at the top level next to ``schema_version``,
    ``commit``, and ``machine`` (those three names are reserved).

    The commit is resolved *at write time*, and a dirty working tree is
    refused (unless ``allow_dirty``): BENCH_scale.json once shipped
    stamped with the previous PR's commit because the regen ran before
    the code was committed -- the stamp described code that did not
    produce the numbers.  Regenerate committed reports on a clean tree:
    commit the code change first, then run ``--regen-bench`` and commit
    the JSON diff as its own change.
    """
    reserved = {"schema_version", "commit", "machine"} & payload.keys()
    if reserved:
        raise ValueError(f"payload shadows envelope keys: {sorted(reserved)}")
    commit = _git_commit()
    if not allow_dirty and _tree_is_dirty():
        raise RuntimeError(
            f"refusing to write {name}: the git tree is dirty, so stamping "
            f"commit {commit and commit[:12]} would misattribute the "
            "measurement.  Commit (or stash) first, then regenerate."
        )
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "commit": commit,
        "machine": _machine_info(),
        **payload,
    }
    out = Path(__file__).parent / name
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return out


def load_bench_json(name: str) -> dict | None:
    """Read a committed bench report, or None if absent."""
    path = Path(__file__).parent / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


# --- session fixtures --------------------------------------------------------


@pytest.fixture(scope="session")
def ctx(request) -> ExperimentContext:
    context = ExperimentContext(
        scale=BENCH_SCALE,
        seed=1991,
        workers=_bench_workers(),
        cache=_bench_cache(),
    )
    request.config._repro_bench_ctx = context
    context.traces()  # build the eight traces once, up front
    return context


@pytest.fixture(scope="session")
def cluster_ctx(ctx) -> ExperimentContext:
    ctx.cluster_results()  # replay the normal traces once, up front
    return ctx


def pytest_sessionfinish(session) -> None:
    """Write the machine-readable pipeline timing report."""
    context = getattr(session.config, "_repro_bench_ctx", None)
    if context is None:
        return
    report = context.pipeline_report.as_dict()
    report["workers"] = context.workers
    cache = context._artifact_cache
    report["cache"] = cache.stats.as_dict() if cache is not None else None
    # Pipeline timing is a per-run diagnostic, not a committed gate:
    # writing it from a dirty tree is fine.
    write_bench_json("BENCH_pipeline.json", report, allow_dirty=True)
