"""Shared fixtures for the benchmark suite.

Each bench regenerates one of the paper's tables or figures and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
rendered output).  The expensive inputs -- the eight synthetic traces
and the cluster replays -- are built once per session by the context
fixture; the benchmarks time the analysis/simulation pipeline on top.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext

#: Population scale for the bench suite; 0.05 keeps the full suite in
#: tens of seconds.  Raise to 0.25+ for numbers closer to Table 1's
#: absolute magnitudes.
BENCH_SCALE = 0.05


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    context = ExperimentContext(scale=BENCH_SCALE, seed=1991)
    context.traces()  # build the eight traces once, up front
    return context


@pytest.fixture(scope="session")
def cluster_ctx(ctx) -> ExperimentContext:
    ctx.cluster_results()  # replay the normal traces once, up front
    return ctx
