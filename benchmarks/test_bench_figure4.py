"""Benchmark: regenerate the paper's figure4 (file lifetimes).

Prints the reproduced figure4 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_figure4(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("figure4", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["files_under_30s"] > 0.5
    assert result.metrics["bytes_under_30s"] < result.metrics["files_under_30s"]
