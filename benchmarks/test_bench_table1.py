"""Benchmark: regenerate the paper's table1 (overall trace statistics).

Prints the reproduced table1 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table1(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["total_opens"] > 1000
    assert result.metrics["max_trace_mbytes_read"] > result.metrics["total_mbytes_read"] / 8
