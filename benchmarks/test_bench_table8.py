"""Benchmark: regenerate the paper's table8 (cache block replacement).

Prints the reproduced table8 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table8(benchmark, cluster_ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table8", cluster_ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["for_file_share"] + result.metrics["for_vm_share"] > 0.99
