"""Benchmark: regenerate the paper's table2 (user activity and throughput).

Prints the reproduced table2 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table2(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["avg_user_throughput_10s_kbs"] > result.metrics["avg_user_throughput_10min_kbs"]
    assert result.metrics["migration_burst_factor"] > 1.0
