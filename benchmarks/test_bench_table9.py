"""Benchmark: regenerate the paper's table9 (dirty block cleaning).

Prints the reproduced table9 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table9(benchmark, cluster_ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table9", cluster_ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["delay_share"] > 0.5
