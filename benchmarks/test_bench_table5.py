"""Benchmark: regenerate the paper's table5 (traffic sources).

Prints the reproduced table5 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table5(benchmark, cluster_ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table5", cluster_ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert 0.1 < result.metrics["paging_share"] < 0.6
