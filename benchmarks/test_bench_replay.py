"""Benchmark: the single-worker replay hot path.

Two committed reports come out of this module (regenerate with
``--regen-bench`` after an intentional performance change):

* ``BENCH_replay.json`` -- wall clock of one scale=1 trace0 replay and
  the speedup over the recorded pre-optimization baseline.  The
  committed copy doubles as the CI smoke gate: a run whose wall clock
  regresses more than 25% over the committed figure fails.
* ``BENCH_scale.json`` -- the scale-out curve (clients x wall clock x
  peak RSS) at population scales 0.05 / 0.5 / 2 / 10 / 100, measured on
  the partitioned pipeline (columnar generation, streaming consumption,
  owned-only sharded replay + deterministic merge; DESIGN.md §15-16).
  The scale=2 point doubles as CI's scale-smoke gate
  (``test_bench_partitioned_scale2_smoke``), the scale=10 row asserts
  the sub-2-GB peak-RSS target outright, and the scale=100 row (4000
  clients, 2000 owned-only groups) its own explicit peak-RSS bar.  Each
  row also carries the merged per-shard construction time and shared-
  tick event count, the owned-only overheads worth watching at scale.

Both record :func:`conftest.calibration_seconds` as context: on a much
slower machine the gate will trip spuriously -- compare the calibration
figures to tell a machine change from a real regression, then rebase
with ``--regen-bench``.
"""

from __future__ import annotations

import gc
import resource
import time

import pytest

from repro.fs import ClusterConfig, run_cluster_on_trace
from repro.pipeline.scaleout import (
    ScaleOutPlan,
    build_group_traces,
    run_partitioned_replay,
)
from repro.workload import STANDARD_PROFILES, generate_trace

from conftest import calibration_seconds, load_bench_json, write_bench_json

#: Pre-optimization baseline: commit f33387b (before the hot-path
#: rewrite), same trace0 replay at scale=1.  Median of four runs
#: interleaved with the optimized tree on the same host, so both sides
#: saw the same load; ``calibration_seconds`` recorded alongside makes
#: the ratio transferable across machines.
BASELINE = {
    "commit": "f33387b",
    "wall_seconds": 25.4,
    "calibration_seconds": 0.0880,
}

#: The gate: fail when wall clock exceeds the committed report's by
#: more than this factor.
MAX_REGRESSION = 1.25

#: The tentpole target: replay at least this many times faster than the
#: pre-optimization baseline.
MIN_SPEEDUP = 5.0


def _clients_for(scale: float) -> int:
    """Mirror ``ExperimentContext.client_count``."""
    return max(4, round(40 * scale))


def _replay_once(scale: float) -> dict:
    """Generate trace0 at ``scale`` and time one single-worker replay."""
    clients = _clients_for(scale)
    trace = generate_trace(
        STANDARD_PROFILES[0], seed=1991, scale=scale, client_count=clients
    )
    config = ClusterConfig(client_count=clients)
    gc.collect()
    start = time.perf_counter()
    result = run_cluster_on_trace(trace.records, trace.duration, config)
    wall = time.perf_counter() - start
    assert len(result.final_counters) == clients
    return {
        "scale": scale,
        "clients": clients,
        "records": len(trace.records),
        "wall_seconds": round(wall, 3),
        "records_per_second": round(len(trace.records) / wall),
    }


@pytest.fixture(scope="module")
def regen_bench(request) -> bool:
    return request.config.getoption("--regen-bench")


def test_bench_replay_scale1(regen_bench):
    """Time the scale=1 replay; gate against the committed report."""
    # Best of five: co-tenant noise on a small host can inflate a single
    # run by 30%, and noise episodes last long enough to cover adjacent
    # runs -- the minimum of five is the stable "quiet window" figure.
    runs = [_replay_once(1.0) for _ in range(5)]
    best = min(runs, key=lambda r: r["wall_seconds"])
    wall = best["wall_seconds"]
    speedup = BASELINE["wall_seconds"] / wall
    report = {
        **best,
        "calibration_seconds": round(calibration_seconds(), 4),
        "baseline": BASELINE,
        "speedup_vs_baseline": round(speedup, 2),
    }
    print(
        f"\nreplay scale=1: {wall:.2f}s wall, "
        f"{best['records_per_second']:,} records/s, "
        f"{speedup:.1f}x over baseline"
    )

    if regen_bench:
        # A report may only be committed if it meets the tentpole
        # target; reruns then gate against the committed copy, which
        # tolerates run-to-run noise without diluting the target.
        assert speedup >= MIN_SPEEDUP, (
            f"refusing to commit a report at {speedup:.2f}x; the target "
            f"is {MIN_SPEEDUP}x ({wall:.2f}s wall vs the "
            f"{BASELINE['wall_seconds']}s baseline)"
        )
        write_bench_json("BENCH_replay.json", report)
        return
    committed = load_bench_json("BENCH_replay.json")
    assert committed is not None, (
        "benchmarks/BENCH_replay.json is missing; run "
        "pytest benchmarks/test_bench_replay.py --regen-bench to create it"
    )
    assert committed["speedup_vs_baseline"] >= MIN_SPEEDUP
    ratio = wall / committed["wall_seconds"]
    assert ratio <= MAX_REGRESSION, (
        f"replay wall clock regressed {ratio:.2f}x vs the committed report "
        f"({wall:.2f}s now vs {committed['wall_seconds']}s committed; limit "
        f"{MAX_REGRESSION}x).  Check the calibration_seconds figures first "
        "-- a much slower machine trips this too; if the change is "
        "intentional, regenerate with --regen-bench and commit the diff."
    )


#: The scale-out population rule mirrors the registry: the plan sizes
#: the population at the *total* scale (``max(4, round(40 * scale))``)
#: and splits it across ``round(scale / 0.05)`` groups, so ``scale=10``
#: means 200 groups and 400 clients, ``scale=100`` 2000 groups and 4000
#: clients.  Shards cap at 4: on the bench host shards beyond the core
#: count only repeat the fixed day-simulation cost.
def _scale_out_plan(scale: float) -> ScaleOutPlan:
    return ScaleOutPlan(
        profile=STANDARD_PROFILES[0],
        seed=1991,
        scale=scale,
        groups=max(1, round(scale / 0.05)),
    )


#: Hard ceiling from the scale-out acceptance bar: the scale=10
#: partitioned replay must complete under 2 GB peak RSS.
MAX_SCALE10_RSS_MB = 2048

#: The scale=100 bar (4000 clients, 2000 groups, 4 owned-only shards of
#: 500 groups each): every shard constructs only its own slice, so peak
#: RSS is dominated by the columnar traces, not the machines.  Measured
#: ~7.0 GB on the bench host; the bar leaves ~30% headroom.
MAX_SCALE100_RSS_MB = 9216


def _partitioned_replay_once(scale: float) -> dict:
    """Columnar generation + partitioned streaming replay at ``scale``."""
    plan = _scale_out_plan(scale)
    shards = min(plan.groups, 4)
    gc.collect()
    start = time.perf_counter()
    traces = build_group_traces(plan)
    gen_wall = time.perf_counter() - start
    records = sum(trace.record_count for trace in traces)
    start = time.perf_counter()
    result = run_partitioned_replay(plan, traces, shards=shards)
    replay_wall = time.perf_counter() - start
    assert result.records_replayed == records
    return {
        "scale": scale,
        "groups": plan.groups,
        "shards": shards,
        "clients": plan.client_count,
        "records": records,
        "generate_seconds": round(gen_wall, 3),
        "wall_seconds": round(replay_wall, 3),
        "records_per_second": round(records / replay_wall),
        # Owned-only overheads, summed over shards by the merge: time
        # spent building machines, and shared-ticker timer firings.
        "construction_seconds": round(result.construction_seconds, 3),
        "tick_events": result.tick_events,
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        ),
    }


@pytest.mark.slow
def test_bench_replay_scale_curve(regen_bench):
    """The scale-out curve: clients x wall x peak RSS through scale=100,
    on the partitioned pipeline (columnar + streaming + owned-only
    sharded)."""
    rows = []
    # Increasing order on purpose: ru_maxrss is a process-lifetime peak,
    # so each row's figure is dominated by its own (largest-yet) run.
    for scale in (0.05, 0.5, 2.0, 10.0, 100.0):
        row = _partitioned_replay_once(scale)
        rows.append(row)
        print(
            f"\nscale={scale}: {row['clients']} clients in "
            f"{row['groups']} groups, {row['records']:,} records, "
            f"gen {row['generate_seconds']:.2f}s + replay "
            f"{row['wall_seconds']:.2f}s (construction "
            f"{row['construction_seconds']:.2f}s, "
            f"{row['tick_events']:,} ticks), "
            f"peak RSS {row['peak_rss_mb']} MB"
        )
    report = {
        "calibration_seconds": round(calibration_seconds(), 4),
        "rss_note": (
            "peak_rss_mb is the process peak after that run; scales are "
            "measured in increasing order so each row reflects its own run"
        ),
        "rows": rows,
    }

    # Work and cost grow with scale, and the tentpole targets hold: the
    # scale=10 population (400 clients) stays under the 2 GB peak-RSS
    # bar, and the scale=100 population (4000 clients, 2000 owned-only
    # groups) under its own explicit bar.
    for smaller, larger in zip(rows, rows[1:]):
        assert smaller["records"] < larger["records"]
        assert smaller["wall_seconds"] < larger["wall_seconds"]
    scale10 = next(r for r in rows if r["scale"] == 10.0)
    assert scale10["clients"] >= 400
    assert scale10["peak_rss_mb"] < MAX_SCALE10_RSS_MB
    scale100 = rows[-1]
    assert scale100["clients"] >= 4000
    assert scale100["peak_rss_mb"] < MAX_SCALE100_RSS_MB

    if regen_bench:
        write_bench_json("BENCH_scale.json", report)
        return
    committed = load_bench_json("BENCH_scale.json")
    assert committed is not None, (
        "benchmarks/BENCH_scale.json is missing; run "
        "pytest benchmarks/test_bench_replay.py --regen-bench to create it"
    )
    assert [r["scale"] for r in committed["rows"]] == [
        r["scale"] for r in rows
    ]


@pytest.mark.slow
def test_bench_partitioned_scale2_smoke():
    """CI's scale-smoke gate: one scale=2 partitioned replay must stay
    under the wall-clock and peak-RSS thresholds committed in
    BENCH_scale.json.  Marked slow so the bench-smoke job's
    ``-m "not slow"`` skips it; the dedicated scale-smoke leg selects
    it by name (``-k partitioned_scale2``)."""
    committed = load_bench_json("BENCH_scale.json")
    assert committed is not None, (
        "benchmarks/BENCH_scale.json is missing; run "
        "pytest benchmarks/test_bench_replay.py --regen-bench to create it"
    )
    baseline = next(r for r in committed["rows"] if r["scale"] == 2.0)
    row = _partitioned_replay_once(2.0)
    print(
        f"\nscale=2 smoke: gen {row['generate_seconds']:.2f}s + replay "
        f"{row['wall_seconds']:.2f}s (committed {baseline['wall_seconds']}s), "
        f"peak RSS {row['peak_rss_mb']} MB "
        f"(committed {baseline['peak_rss_mb']} MB)"
    )
    assert row["clients"] == baseline["clients"]
    assert row["records"] == baseline["records"]  # seeded -- exact
    ratio = row["wall_seconds"] / baseline["wall_seconds"]
    assert ratio <= 2.0, (
        f"scale=2 partitioned replay regressed {ratio:.2f}x vs the "
        f"committed row ({row['wall_seconds']:.2f}s now vs "
        f"{baseline['wall_seconds']}s committed).  Check the "
        "calibration_seconds figures first -- a much slower machine "
        "trips this too; if intentional, rebase with --regen-bench."
    )
    assert row["peak_rss_mb"] <= baseline["peak_rss_mb"] * 1.5, (
        f"scale=2 partitioned replay peak RSS {row['peak_rss_mb']} MB "
        f"exceeds 1.5x the committed {baseline['peak_rss_mb']} MB"
    )
