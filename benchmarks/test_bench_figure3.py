"""Benchmark: regenerate the paper's figure3 (file open times).

Prints the reproduced figure3 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_figure3(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("figure3", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["opens_below_quarter_second"] > 0.6
