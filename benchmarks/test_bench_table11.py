"""Benchmark: regenerate the paper's table11 (stale data errors under polling).

Prints the reproduced table11 (run with ``-s``) and times the pipeline
that produces it from the synthetic traces.
"""

from repro.experiments import run_experiment


def test_bench_table11(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_experiment("table11", ctx), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    print(f"Paper: {result.paper_expectation}")
    assert result.metrics["error_reduction_factor"] > 2.0
