"""Plain-text rendering for tables and CDF figures.

Every experiment ends by printing something that looks like the paper's
table or figure, next to the paper's own numbers where we have them, so
the shape comparison is visible straight from the bench harness output.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.common.cdf import Cdf


def format_number(value: float, precision: int = 1) -> str:
    """Format a number the way the paper's tables do.

    Integers print without a decimal point; everything else with the
    requested precision.  NaN prints as ``NA`` (the paper's marker for
    unavailable measurements).
    """
    if isinstance(value, float) and math.isnan(value):
        return "NA"
    if float(value).is_integer() and abs(value) >= 10:
        return f"{int(value):d}"
    return f"{value:.{precision}f}"


def format_with_spread(mean: float, spread: float, precision: int = 1) -> str:
    """``mean (spread)`` -- the paper's mean-with-standard-deviation cell."""
    return f"{format_number(mean, precision)} ({format_number(spread, precision)})"


def format_with_range(
    value: float, low: float, high: float, precision: int = 2
) -> str:
    """``value (low-high)`` -- the paper's value-with-min/max cell."""
    return (
        f"{format_number(value, precision)} "
        f"({format_number(low, precision)}-{format_number(high, precision)})"
    )


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    note: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but table has {columns} columns: {row}"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows), 1)
        if rows
        else len(str(headers[i]))
        for i in range(columns)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (columns - 1))
    lines = [title, "=" * len(title), fmt_row(headers), rule]
    lines.extend(fmt_row(row) for row in rows)
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def render_cdf_figure(
    title: str,
    curves: dict[str, Cdf],
    xlabel: str,
    probe_values: Sequence[float],
    value_formatter=None,
    width: int = 60,
) -> str:
    """Render a family of CDFs as an ASCII chart plus a probe table.

    ``probe_values`` picks the x positions reported in the companion
    table (the paper's figures are read off at round values like 1 KB,
    10 KB, ...).
    """
    if not curves:
        raise ValueError("no curves to render")
    fmt = value_formatter or (lambda v: format_number(v, 3))
    lines = [title, "=" * len(title)]

    # Probe table: one row per probe value, one column per curve.
    headers = [xlabel] + list(curves)
    rows = []
    for probe in probe_values:
        row = [fmt(probe)]
        for cdf in curves.values():
            row.append(f"{100 * cdf.fraction_at_or_below(probe):5.1f}%")
        rows.append(row)
    lines.append(
        render_table(f"Cumulative % at or below {xlabel}", headers, rows)
    )

    # ASCII sparkline per curve over the probe range.
    lines.append("")
    for name, cdf in curves.items():
        bar_cells = []
        for probe in probe_values:
            frac = cdf.fraction_at_or_below(probe)
            bar_cells.append("_.:-=+*#%@"[min(9, int(frac * 10))])
        lines.append(f"{name:>24}  |{''.join(bar_cells)}|  (0..100% across probes)")
    return "\n".join(lines)


def byte_label(value: float) -> str:
    """Human-readable byte axis label (100, 1K, 10K, 1M, ...)."""
    if value >= 1024 * 1024 * 1024:
        return f"{value / (1024 * 1024 * 1024):g}G"
    if value >= 1024 * 1024:
        return f"{value / (1024 * 1024):g}M"
    if value >= 1024:
        return f"{value / 1024:g}K"
    return f"{value:g}"


def seconds_label(value: float) -> str:
    """Human-readable time axis label (10ms, 1s, 5m, 2h, 1d)."""
    if value < 1.0:
        return f"{value * 1000:g}ms"
    if value < 60:
        return f"{value:g}s"
    if value < 3600:
        return f"{value / 60:g}m"
    if value < 86400:
        return f"{value / 3600:g}h"
    return f"{value / 86400:g}d"
