"""Shared foundations for the Sprite measurement reproduction.

This package holds the pieces every other subsystem leans on:

* :mod:`repro.common.units` -- physical constants of the measured system
  (block size, delayed-write interval, memory sizes, ...).
* :mod:`repro.common.ids` -- small typed identifiers for users, files,
  clients, and processes.
* :mod:`repro.common.errors` -- the library's exception hierarchy.
* :mod:`repro.common.rng` -- deterministic, forkable random streams.
* :mod:`repro.common.stats` -- running statistics and histograms.
* :mod:`repro.common.cdf` -- weighted empirical CDFs (the paper's figures).
* :mod:`repro.common.intervals` -- fixed-width interval accumulators
  (the paper's 10-second / 10-minute / 15-minute / 60-minute buckets).
* :mod:`repro.common.render` -- plain-text rendering of tables and
  CDF figures.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    TraceError,
    SimulationError,
)
from repro.common.ids import ClientId, FileId, ProcessId, UserId
from repro.common.rng import RngStream

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceError",
    "SimulationError",
    "ClientId",
    "FileId",
    "ProcessId",
    "UserId",
    "RngStream",
]
