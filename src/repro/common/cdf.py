"""Weighted empirical cumulative distribution functions.

Figures 1--4 of the paper are all CDFs, each drawn twice: once weighted
by event count ("number of runs", "number of files") and once weighted
by bytes.  :class:`Cdf` supports both by accepting a weight per sample.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class CdfPoint:
    """One point of an empirical CDF: fraction of mass <= value."""

    value: float
    fraction: float


class Cdf:
    """An empirical, optionally weighted CDF.

    Samples are buffered and the CDF is materialized lazily on first
    query; adding more samples afterwards invalidates and rebuilds it.
    """

    def __init__(self) -> None:
        self._samples: list[tuple[float, float]] = []
        self._values: list[float] | None = None
        self._cum: list[float] | None = None
        self._total: float = 0.0

    def add(self, value: float, weight: float = 1.0) -> None:
        """Add one sample with the given non-negative weight."""
        if weight < 0:
            raise ValueError(f"negative weight: {weight}")
        if weight == 0:
            return
        self._samples.append((value, weight))
        self._values = None

    def extend(self, values: Iterable[float]) -> None:
        """Add many unit-weight samples."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of (non-zero-weight) samples."""
        return len(self._samples)

    @property
    def total_weight(self) -> float:
        """Total mass in the distribution."""
        self._materialize()
        return self._total

    def _materialize(self) -> None:
        if self._values is not None:
            return
        merged: dict[float, float] = {}
        for value, weight in self._samples:
            merged[value] = merged.get(value, 0.0) + weight
        self._values = sorted(merged)
        cum: list[float] = []
        running = 0.0
        for value in self._values:
            running += merged[value]
            cum.append(running)
        self._cum = cum
        self._total = running

    def fraction_at_or_below(self, value: float) -> float:
        """Fraction of total mass at samples <= ``value``."""
        self._materialize()
        assert self._values is not None and self._cum is not None
        if self._total == 0:
            return 0.0
        index = bisect.bisect_right(self._values, value)
        if index == 0:
            return 0.0
        return self._cum[index - 1] / self._total

    def value_at_fraction(self, fraction: float) -> float:
        """Smallest sample value v with fraction_at_or_below(v) >= fraction.

        This is the inverse CDF / quantile function the paper's prose uses
        ("80% of all runs are less than 2300 bytes").
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        self._materialize()
        assert self._values is not None and self._cum is not None
        if not self._values:
            raise ValueError("empty CDF")
        target = fraction * self._total
        index = bisect.bisect_left(self._cum, target)
        index = min(index, len(self._values) - 1)
        return self._values[index]

    def median(self) -> float:
        """The 50th percentile."""
        return self.value_at_fraction(0.5)

    def points(self, max_points: int = 200) -> list[CdfPoint]:
        """Downsampled (value, fraction) points suitable for plotting.

        Always includes the first and last sample.  Intermediate points
        are chosen uniformly in rank space.
        """
        self._materialize()
        assert self._values is not None and self._cum is not None
        n = len(self._values)
        if n == 0:
            return []
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        if n <= max_points:
            indices: Sequence[int] = range(n)
        else:
            step = (n - 1) / (max_points - 1)
            indices = sorted({round(i * step) for i in range(max_points)})
        return [
            CdfPoint(value=self._values[i], fraction=self._cum[i] / self._total)
            for i in indices
        ]

    def sample_at(self, probe_values: Sequence[float]) -> list[CdfPoint]:
        """Evaluate the CDF at explicit probe values (for figure tables)."""
        return [
            CdfPoint(value=v, fraction=self.fraction_at_or_below(v))
            for v in probe_values
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cdf(samples={self.count})"
