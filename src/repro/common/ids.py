"""Typed identifiers for the entities the traces talk about.

The trace format and the simulator pass around user, file, client, and
process identifiers constantly.  Using distinct NewTypes keeps signatures
honest (a ``UserId`` cannot silently stand in for a ``FileId``) without
any runtime cost.
"""

from __future__ import annotations

from typing import NewType

#: A user of the cluster (the paper traced ~70 distinct users).
UserId = NewType("UserId", int)

#: A file or directory, unique across the shared hierarchy.
FileId = NewType("FileId", int)

#: A client workstation (0..39 in the measured cluster).
ClientId = NewType("ClientId", int)

#: A server machine.  Servers and clients live in separate namespaces.
ServerId = NewType("ServerId", int)

#: A process; migrated processes keep their id across hosts.
ProcessId = NewType("ProcessId", int)

#: An open-file instance: one open()..close() episode of one process.
OpenId = NewType("OpenId", int)


class IdAllocator:
    """Hands out dense, monotonically increasing integer ids.

    Each entity namespace in the workload generator owns one allocator so
    that ids are reproducible given the same generation order.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"id allocators start at >= 0, got {start}")
        self._next = start

    def allocate(self) -> int:
        """Return the next unused id."""
        value = self._next
        self._next += 1
        return value

    @property
    def allocated(self) -> int:
        """How many ids have been handed out so far."""
        return self._next

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdAllocator(next={self._next})"
