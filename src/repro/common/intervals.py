"""Fixed-width interval accumulators.

Table 2 divides each trace into 10-minute and 10-second intervals and
computes per-interval active-user counts and per-user throughput;
Table 4 measures cache-size change over 15-minute and 60-minute
intervals.  :class:`IntervalAccumulator` does the bucketing once so each
analysis only supplies a fold function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generic, Iterator, TypeVar

from repro.common.errors import AnalysisError

V = TypeVar("V")


def interval_index(time: float, width: float, origin: float = 0.0) -> int:
    """Index of the fixed-width interval containing ``time``."""
    if width <= 0:
        raise ValueError(f"interval width must be positive, got {width}")
    return math.floor((time - origin) / width)


@dataclass(frozen=True)
class Interval:
    """A half-open time interval [start, end)."""

    index: int
    start: float
    end: float


class IntervalAccumulator(Generic[V]):
    """Groups timestamped observations into fixed-width intervals.

    ``factory`` builds a fresh per-interval state; ``fold`` merges one
    observation into it.  Observations may arrive in any time order.
    """

    def __init__(
        self,
        width: float,
        factory: Callable[[], V],
        origin: float = 0.0,
    ) -> None:
        if width <= 0:
            raise ValueError(f"interval width must be positive, got {width}")
        self.width = width
        self.origin = origin
        self._factory = factory
        self._buckets: dict[int, V] = {}

    def observe(self, time: float) -> V:
        """Return (creating if needed) the state for the interval at
        ``time`` so the caller can fold into it."""
        index = interval_index(time, self.width, self.origin)
        state = self._buckets.get(index)
        if state is None:
            state = self._factory()
            self._buckets[index] = state
        return state

    def interval_for(self, index: int) -> Interval:
        """The time bounds of interval ``index``."""
        start = self.origin + index * self.width
        return Interval(index=index, start=start, end=start + self.width)

    @property
    def bucket_count(self) -> int:
        """How many distinct intervals saw at least one observation."""
        return len(self._buckets)

    def items(self) -> Iterator[tuple[Interval, V]]:
        """Iterate non-empty intervals in time order."""
        for index in sorted(self._buckets):
            yield self.interval_for(index), self._buckets[index]

    def values(self) -> Iterator[V]:
        """Iterate per-interval states in time order."""
        for _, state in self.items():
            yield state


def span_intervals(start: float, end: float, width: float) -> Iterator[Interval]:
    """All fixed-width intervals overlapping [start, end)."""
    if end < start:
        raise AnalysisError(f"interval span ends before it starts: {start}..{end}")
    first = interval_index(start, width)
    last = interval_index(end, width) if end > start else first
    # A point exactly on a boundary belongs only to the interval it opens.
    if end > start and end == last * width:
        last -= 1
    for index in range(first, last + 1):
        yield Interval(index=index, start=index * width, end=(index + 1) * width)
