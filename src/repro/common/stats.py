"""Running statistics and histograms.

The paper reports nearly everything as an average with a standard
deviation in parentheses, or as a min--max band over the eight traces.
:class:`RunningStat` implements Welford's online algorithm so simulator
counters never need to retain raw samples; :class:`Histogram` retains
bucketed counts for distribution-shaped results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class RunningStat:
    """Online mean / variance / min / max via Welford's algorithm."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float, weight: int = 1) -> None:
        """Fold one observation (optionally repeated ``weight`` times) in."""
        if weight < 0:
            raise ValueError(f"negative weight: {weight}")
        for _ in range(weight):
            self.count += 1
            delta = value - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (value - self._mean)
        if weight:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold in many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStat") -> None:
        """Combine another accumulator into this one (parallel merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._mean * self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStat(n={self.count}, mean={self.mean:.4g}, "
            f"sd={self.stddev:.4g})"
        )


@dataclass
class MinMax:
    """Tracks the min--max band of per-trace values (the parenthesized
    ranges in Tables 3, 10, 11, and 12)."""

    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def empty(self) -> bool:
        return self.minimum > self.maximum

    def as_tuple(self) -> tuple[float, float]:
        if self.empty:
            raise ValueError("no values recorded")
        return (self.minimum, self.maximum)


@dataclass
class Histogram:
    """A histogram over explicit bucket edges.

    ``edges`` are the *upper* bounds of each bucket; a final overflow
    bucket catches everything larger.  Values are accumulated with an
    arbitrary non-negative weight so the same class serves count-weighted
    and byte-weighted distributions.
    """

    edges: list[float]
    counts: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b >= a for b, a in zip(self.edges, self.edges[1:])):
            raise ValueError(f"bucket edges must be strictly increasing: {self.edges}")
        if not self.counts:
            self.counts = [0.0] * (len(self.edges) + 1)
        elif len(self.counts) != len(self.edges) + 1:
            raise ValueError("counts length must be len(edges) + 1")

    def add(self, value: float, weight: float = 1.0) -> None:
        """Add ``weight`` mass at ``value``."""
        if weight < 0:
            raise ValueError(f"negative weight: {weight}")
        self.counts[self._bucket(value)] += weight

    def _bucket(self, value: float) -> int:
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def total(self) -> float:
        return sum(self.counts)

    def fraction_at_or_below(self, value: float) -> float:
        """Cumulative fraction of mass at or below ``value``."""
        total = self.total
        if total == 0:
            return 0.0
        bucket = self._bucket(value)
        return sum(self.counts[: bucket + 1]) / total

    def buckets(self) -> Iterator[tuple[float, float]]:
        """Yield (upper_edge, mass) pairs; the overflow bucket reports
        ``math.inf`` as its edge."""
        for edge, count in zip(self.edges, self.counts):
            yield edge, count
        yield math.inf, self.counts[-1]


def geometric_edges(start: float, stop: float, per_decade: int = 4) -> list[float]:
    """Geometrically spaced bucket edges from ``start`` to ``stop``.

    The paper's log-scale figures span bytes from ~100 to 10 MB and times
    from 10 ms to days; geometric buckets give uniform resolution on the
    log axis.
    """
    if start <= 0 or stop <= start:
        raise ValueError(f"need 0 < start < stop, got {start}, {stop}")
    if per_decade <= 0:
        raise ValueError(f"per_decade must be positive, got {per_decade}")
    ratio = 10.0 ** (1.0 / per_decade)
    edges = [start]
    while edges[-1] < stop:
        edges.append(edges[-1] * ratio)
    return edges


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of no data")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight
