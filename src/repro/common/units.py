"""Physical constants and unit helpers for the measured system.

These are the numbers the paper states about the Sprite cluster and its
caching policies.  Everything that models Sprite behaviour imports its
constants from here, so an ablation (say, a 60-second delayed write) can
be expressed by overriding a config field rather than editing policy code.
"""

from __future__ import annotations

# --- byte units -----------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Sprite caches file data in 4-Kbyte blocks on both clients and servers.
BLOCK_SIZE = 4 * KB

# --- time units (simulated seconds) ---------------------------------------

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR

#: Delay before dirty data is written from a client cache to the server.
DELAYED_WRITE_SECONDS = 30.0

#: The writeback daemon scans the cache for 30-second-old dirty data
#: every 5 seconds.
WRITEBACK_SCAN_INTERVAL = 5.0

#: A physical page used by the virtual memory system cannot be taken by
#: the file cache unless it has been unreferenced for at least 20 minutes.
VM_PREFERENCE_SECONDS = 20 * MINUTE

#: The paper reports on 10-minute steady-state and 10-second burst windows.
TEN_MINUTES = 10 * MINUTE
TEN_SECONDS = 10 * SECOND

# --- cluster parameters from Section 2 ------------------------------------

#: ~40 diskless client workstations.
DEFAULT_CLIENT_COUNT = 40

#: Four file servers; most traffic handled by one Sun 4.
DEFAULT_SERVER_COUNT = 4

#: Most clients had 24 to 32 Mbytes of memory.
DEFAULT_CLIENT_MEMORY = 24 * MB

#: The main file server had 128 Mbytes of memory.
DEFAULT_SERVER_MEMORY = 128 * MB

#: ~30 day-to-day users plus ~40 occasional users.
DEFAULT_REGULAR_USERS = 30
DEFAULT_OCCASIONAL_USERS = 40

# --- latency model parameters from Section 5.3 ----------------------------

#: Fetching a 4-Kbyte page from a server's cache over Ethernet: 6-7 ms.
REMOTE_PAGE_FETCH_SECONDS = 6.5e-3

#: Typical disk access time at the time of the study: 20-30 ms.
DISK_ACCESS_SECONDS = 25e-3

#: Raw bandwidth of the study's Ethernet (10 Mbit/s) in bytes/second.
ETHERNET_BANDWIDTH = 10 * 1000 * 1000 / 8


def bytes_to_kbytes(n: float) -> float:
    """Convert a byte count to Kbytes (the unit most tables report)."""
    return n / KB


def bytes_to_mbytes(n: float) -> float:
    """Convert a byte count to Mbytes (the unit Table 1 reports)."""
    return n / MB


def blocks_for(nbytes: int, block_size: int = BLOCK_SIZE) -> int:
    """Number of cache blocks needed to hold ``nbytes`` of file data."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return (nbytes + block_size - 1) // block_size


def block_of(offset: int, block_size: int = BLOCK_SIZE) -> int:
    """Block index containing byte ``offset``."""
    if offset < 0:
        raise ValueError(f"negative offset: {offset}")
    return offset // block_size


def block_range(offset: int, length: int, block_size: int = BLOCK_SIZE) -> range:
    """Blocks touched by a transfer of ``length`` bytes at ``offset``.

    A zero-length transfer touches no blocks.
    """
    if length < 0:
        raise ValueError(f"negative length: {length}")
    if length == 0:
        return range(0)
    first = block_of(offset, block_size)
    last = block_of(offset + length - 1, block_size)
    return range(first, last + 1)
