"""Exception hierarchy for the reproduction library.

Everything raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine bugs (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class TraceError(ReproError):
    """A trace file or trace record stream violates the trace grammar."""


class TraceOrderError(TraceError):
    """Records presented out of timestamp order where order is required."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an impossible state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a finished engine."""


class CacheError(SimulationError):
    """A cache invariant was violated (double insert, missing block, ...)."""


class ConsistencyError(SimulationError):
    """A cache-consistency protocol invariant was violated."""


class AnalysisError(ReproError):
    """An analysis was asked to process data it cannot interpret."""
