"""Deterministic, forkable random streams.

Reproducibility is a requirement for a measurement reproduction: the same
seed must yield the same eight traces, the same simulator run, and hence
the same tables.  The workload generator forks one independent stream per
user, per application, and per trace so that adding a new consumer of
randomness does not perturb every other stream.

Streams are thin wrappers over :class:`random.Random` with a stable
string-keyed forking scheme (SHA-256 of the parent key and child name).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(parent_key: str, name: str) -> int:
    digest = hashlib.sha256(f"{parent_key}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named, seeded random stream that can fork child streams.

    >>> root = RngStream.root(42)
    >>> a = root.fork("user-1")
    >>> b = root.fork("user-2")
    >>> a.uniform(0, 1) != b.uniform(0, 1)
    True
    """

    def __init__(self, key: str, seed: int) -> None:
        self.key = key
        self._random = random.Random(seed)

    @classmethod
    def root(cls, seed: int) -> "RngStream":
        """Create the root stream for a whole run."""
        return cls(key=f"root:{seed}", seed=seed)

    def fork(self, name: str) -> "RngStream":
        """Derive an independent child stream.

        Forking is a pure function of the parent *key* and the child name;
        it does not consume state from the parent, so fork order does not
        matter.
        """
        child_key = f"{self.key}/{name}"
        return RngStream(key=child_key, seed=_derive_seed(self.key, name))

    # --- primitive draws ---------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randoms(self, count: int) -> list[float]:
        """``count`` uniform floats in [0, 1), drawn in sequence.

        Batch form of :meth:`random`: the returned list is exactly what
        ``[self.random() for _ in range(count)]`` would produce, so a
        consumer that uses the values *in order* is byte-identical to
        one drawing them one at a time.  The point is amortization --
        one bound-method lookup for the whole batch -- on vectorized
        paths like the workload generator's rejection sampler.
        """
        draw = self._random.random
        return [draw() for _ in range(count)]

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice weighted by non-negative weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items."""
        return self._random.sample(seq, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    # --- distributions ------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Lognormal variate; ``mu``/``sigma`` parameterize the log."""
        return self._random.lognormvariate(mu, sigma)

    def pareto(self, alpha: float, minimum: float = 1.0) -> float:
        """Pareto variate with shape ``alpha`` and scale ``minimum``."""
        if alpha <= 0:
            raise ValueError(f"pareto shape must be positive, got {alpha}")
        if minimum <= 0:
            raise ValueError(f"pareto minimum must be positive, got {minimum}")
        return minimum * (1.0 + self._random.paretovariate(alpha) - 1.0)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian variate."""
        return self._random.gauss(mean, stddev)

    def poisson(self, mean: float) -> int:
        """Poisson variate (Knuth's method for small means, normal approx
        for large ones)."""
        if mean < 0:
            raise ValueError(f"poisson mean must be >= 0, got {mean}")
        if mean == 0:
            return 0
        if mean > 100:
            return max(0, round(self.normal(mean, math.sqrt(mean))))
        limit = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > limit:
            count += 1
            product *= self._random.random()
        return count

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        return self._random.random() < p

    def zipf_rank(self, n: int, s: float = 1.0) -> int:
        """Zipf-distributed rank in [0, n), computed by inversion.

        Rank 0 is the most popular item.  ``s`` is the skew exponent.
        """
        if n <= 0:
            raise ValueError(f"zipf needs a positive population, got {n}")
        # Harmonic normalization; cached per (n, s) to keep draws O(log n).
        weights = self._zipf_weights(n, s)
        u = self._random.random() * weights[-1]
        # binary search over the cumulative weights
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if weights[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    _zipf_cache: dict[tuple[int, float], list[float]] = {}

    @classmethod
    def _zipf_weights(cls, n: int, s: float) -> list[float]:
        key = (n, s)
        cached = cls._zipf_cache.get(key)
        if cached is None:
            total = 0.0
            cumulative = []
            for rank in range(1, n + 1):
                total += 1.0 / rank**s
                cumulative.append(total)
            # Bound the cache so long-running processes don't accumulate
            # one entry per distinct population size forever.
            if len(cls._zipf_cache) > 128:
                cls._zipf_cache.clear()
            cls._zipf_cache[key] = cumulative
            cached = cumulative
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(key={self.key!r})"
