"""Table 6: client cache effectiveness.

Five measures, each a per-machine-day ratio averaged across machine
days, with a second column restricted to accesses made by migrated
processes:

* read misses -- percent of cache read operations not satisfied;
* read miss traffic -- bytes fetched from the server over bytes read
  by applications through the cache;
* writeback traffic -- bytes written to the server over bytes written
  to the cache (could exceed 100% thanks to whole-prefix block
  writebacks of appended data);
* write fetches -- percent of cache write operations that had to fetch
  the block first;
* paging read misses -- miss percent for cacheable page faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching.aggregate import MachineDay, ratio
from repro.common.render import format_with_spread, render_table
from repro.common.stats import RunningStat


@dataclass
class EffectivenessResult:
    """Table 6's two columns."""

    read_miss: RunningStat = field(default_factory=RunningStat)
    read_miss_traffic: RunningStat = field(default_factory=RunningStat)
    writeback_traffic: RunningStat = field(default_factory=RunningStat)
    write_fetches: RunningStat = field(default_factory=RunningStat)
    paging_read_miss: RunningStat = field(default_factory=RunningStat)

    migrated_read_miss: RunningStat = field(default_factory=RunningStat)
    migrated_read_miss_traffic: RunningStat = field(default_factory=RunningStat)
    migrated_write_fetches: RunningStat = field(default_factory=RunningStat)

    #: Fraction of newly written bytes absorbed before writeback
    #: (deleted or overwritten within the 30-second window).
    write_absorption: RunningStat = field(default_factory=RunningStat)

    def render(self) -> str:
        def cell(stat: RunningStat) -> str:
            return format_with_spread(100 * stat.mean, 100 * stat.stddev, 1)

        rows = [
            ["File read misses (%)", cell(self.read_miss), cell(self.migrated_read_miss)],
            [
                "File read miss traffic (%)",
                cell(self.read_miss_traffic),
                cell(self.migrated_read_miss_traffic),
            ],
            ["Writeback traffic (%)", cell(self.writeback_traffic), "NA"],
            [
                "Write fetches (%)",
                cell(self.write_fetches),
                cell(self.migrated_write_fetches),
            ],
            ["Paging read misses (%)", cell(self.paging_read_miss), "NA"],
            ["New bytes absorbed before writeback (%)", cell(self.write_absorption), "NA"],
        ]
        return render_table(
            "Table 6. Client cache effectiveness",
            ["Measure", "Total", "Client migrated"],
            rows,
            note=(
                "Paper: read misses 41.4 (26.9) / migrated 22.2 (20.4); "
                "read miss traffic 37.1 (27.8); writeback traffic 88.4 "
                "(455.4); write fetches 1.2 (6.8); paging read misses "
                "28.7 (23.6)."
            ),
        )


def compute_effectiveness(days: list[MachineDay]) -> EffectivenessResult:
    """Compute Table 6 over a set of machine-days."""
    result = EffectivenessResult()
    for day in days:
        c = day.counters
        pairs = [
            (result.read_miss, ratio(c.cache_read_misses, c.cache_read_ops)),
            (
                result.read_miss_traffic,
                ratio(
                    c.cache_read_miss_bytes,
                    c.file_bytes_read + c.paging_code_bytes + c.paging_data_bytes,
                ),
            ),
            (
                result.writeback_traffic,
                ratio(c.bytes_written_to_server, c.cache_write_bytes),
            ),
            (result.write_fetches, ratio(c.write_fetch_ops, c.cache_write_ops)),
            (
                result.paging_read_miss,
                ratio(c.paging_read_misses, c.paging_read_ops),
            ),
            (
                result.migrated_read_miss,
                ratio(c.migrated_read_misses, c.migrated_read_ops),
            ),
            (
                result.migrated_read_miss_traffic,
                ratio(c.migrated_read_miss_bytes, c.migrated_read_bytes),
            ),
            (
                result.migrated_write_fetches,
                ratio(c.migrated_write_fetch_ops, c.migrated_write_ops),
            ),
            (
                result.write_absorption,
                ratio(
                    c.dirty_bytes_discarded,
                    c.cache_write_bytes,
                ),
            ),
        ]
        for stat, value in pairs:
            if value is not None:
                stat.add(value)
    return result
