"""Table 5: sources of raw traffic presented to the client OS.

Each entry is a percent of all raw traffic (before any caching), split
into cacheable file traffic, cacheable paging (code and initialized
data), and the uncacheable remainder (write-shared files, directories,
backing files).  Percentages are computed per machine-day and averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching.aggregate import MachineDay, ratio
from repro.common.render import format_with_spread, render_table
from repro.common.stats import RunningStat


_ROWS: tuple[tuple[str, str], ...] = (
    ("Cached file reads", "cached_file_reads"),
    ("Cached file writes", "cached_file_writes"),
    ("Cached paging (code)", "paging_code"),
    ("Cached paging (data)", "paging_data"),
    ("Uncacheable paging (backing files)", "paging_backing"),
    ("Uncacheable write-shared", "write_shared"),
    ("Uncacheable directory reads", "directories"),
)


@dataclass
class TrafficResult:
    """Table 5's per-source shares (percent of raw bytes)."""

    shares: dict[str, RunningStat] = field(
        default_factory=lambda: {name: RunningStat() for _, name in _ROWS}
    )
    #: Convenience aggregates.
    paging_share: RunningStat = field(default_factory=RunningStat)
    uncacheable_share: RunningStat = field(default_factory=RunningStat)

    def render(self) -> str:
        rows = []
        for label, name in _ROWS:
            stat = self.shares[name]
            rows.append(
                [label, format_with_spread(100 * stat.mean, 100 * stat.stddev, 1)]
            )
        rows.append(
            [
                "All paging",
                format_with_spread(
                    100 * self.paging_share.mean, 100 * self.paging_share.stddev, 1
                ),
            ]
        )
        rows.append(
            [
                "All uncacheable",
                format_with_spread(
                    100 * self.uncacheable_share.mean,
                    100 * self.uncacheable_share.stddev,
                    1,
                ),
            ]
        )
        return render_table(
            "Table 5. Traffic sources (percent of raw bytes)",
            ["Source", "Share (std dev)"],
            rows,
            note=(
                "Paper: ~20% of raw traffic is uncacheable, mostly paging; "
                "paging is ~35% of bytes; write-shared traffic is under 1%."
            ),
        )


def compute_traffic_sources(days: list[MachineDay]) -> TrafficResult:
    """Compute Table 5 over a set of machine-days."""
    result = TrafficResult()
    for day in days:
        c = day.counters
        total = c.raw_total_bytes
        if total <= 0:
            continue
        values = {
            "cached_file_reads": c.file_bytes_read,
            "cached_file_writes": c.file_bytes_written,
            "paging_code": c.paging_code_bytes,
            "paging_data": c.paging_data_bytes,
            "paging_backing": (
                c.paging_backing_bytes_read + c.paging_backing_bytes_written
            ),
            "write_shared": c.shared_bytes_read + c.shared_bytes_written,
            "directories": c.directory_bytes_read,
        }
        for name, value in values.items():
            share = ratio(value, total)
            if share is not None:
                result.shares[name].add(share)
        result.paging_share.add(c.raw_paging_bytes / total)
        result.uncacheable_share.add(c.uncacheable_bytes / total)
    return result
