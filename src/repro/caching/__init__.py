"""Section 5 post-processing: from counter snapshots to Tables 4-9.

The paper's tables report *averages of per-machine daily values*: "The
numbers in parentheses are the standard deviations of the daily
averages for individual machines relative to the overall long-term
average across all machines and days."  Every module here therefore
computes its ratios per machine-day first (one client in one replayed
trace) and then averages across machine-days, exactly as the authors
post-processed their counter files.
"""

from repro.caching.aggregate import MachineDay, machine_days
from repro.caching.cache_sizes import CacheSizeResult, compute_cache_sizes
from repro.caching.traffic import TrafficResult, compute_traffic_sources
from repro.caching.effectiveness import (
    EffectivenessResult,
    compute_effectiveness,
)
from repro.caching.server_traffic import (
    ServerTrafficResult,
    compute_server_traffic,
)
from repro.caching.replacement import ReplacementResult, compute_replacement
from repro.caching.cleaning import CleaningResult, compute_cleaning

__all__ = [
    "MachineDay",
    "machine_days",
    "CacheSizeResult",
    "compute_cache_sizes",
    "TrafficResult",
    "compute_traffic_sources",
    "EffectivenessResult",
    "compute_effectiveness",
    "ServerTrafficResult",
    "compute_server_traffic",
    "ReplacementResult",
    "compute_replacement",
    "CleaningResult",
    "compute_cleaning",
]
