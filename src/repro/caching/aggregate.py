"""Machine-day extraction from cluster results.

A *machine-day* is one client over one replayed trace: the unit the
paper averages over.  Idle machines (too few operations to have
meaningful ratios) are screened out, mirroring the paper's screening of
inactive intervals and counter-file artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.cluster import ClusterResult
from repro.fs.counters import ClientCounters, CounterSnapshot


@dataclass
class MachineDay:
    """One client's counters over one trace day."""

    client_id: int
    trace_index: int
    counters: ClientCounters
    snapshots: list[CounterSnapshot]

    @property
    def active(self) -> bool:
        """Did this machine see enough work for its ratios to mean
        anything?  (A handful of opens is noise.)"""
        return self.counters.file_open_ops >= 20


def machine_days(
    results: list[ClusterResult], only_active: bool = True
) -> list[MachineDay]:
    """Split cluster results into per-machine-day summaries."""
    days: list[MachineDay] = []
    for trace_index, result in enumerate(results):
        for client_id, counters in result.final_counters.items():
            day = MachineDay(
                client_id=client_id,
                trace_index=trace_index,
                counters=counters,
                snapshots=result.snapshots.get(client_id, []),
            )
            if only_active and not day.active:
                continue
            days.append(day)
    return days


def ratio(numerator: float, denominator: float) -> float | None:
    """A guarded ratio: None when the denominator is empty, so empty
    machine-days don't contribute fake zeros to the averages."""
    if denominator <= 0:
        return None
    return numerator / denominator
