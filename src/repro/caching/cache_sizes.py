"""Table 4: client cache sizes.

Average size, and size *change* (max minus min) over 15-minute and
60-minute windows -- restricted, as in the paper, to windows in which
the machine was actually in use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching.aggregate import MachineDay
from repro.common.render import format_with_spread, render_table
from repro.common.stats import RunningStat
from repro.common.units import KB


@dataclass
class CacheSizeResult:
    """Table 4's measurements."""

    size: RunningStat = field(default_factory=RunningStat)
    change_15min: RunningStat = field(default_factory=RunningStat)
    change_60min: RunningStat = field(default_factory=RunningStat)
    change_15min_max: float = 0.0
    change_60min_max: float = 0.0

    @property
    def average_size_kb(self) -> float:
        return self.size.mean / KB

    def render(self) -> str:
        rows = [
            [
                "Cache size (Kbytes)",
                format_with_spread(self.size.mean / KB, self.size.stddev / KB, 0),
            ],
            [
                "Cache size change over 15-min intervals (Kbytes)",
                format_with_spread(
                    self.change_15min.mean / KB, self.change_15min.stddev / KB, 0
                ),
            ],
            [
                "  maximum 15-min change (Kbytes)",
                f"{self.change_15min_max / KB:.0f}",
            ],
            [
                "Cache size change over 60-min intervals (Kbytes)",
                format_with_spread(
                    self.change_60min.mean / KB, self.change_60min.stddev / KB, 0
                ),
            ],
            [
                "  maximum 60-min change (Kbytes)",
                f"{self.change_60min_max / KB:.0f}",
            ],
        ]
        return render_table(
            "Table 4. Client cache sizes",
            ["Measurement", "Average (std dev)"],
            rows,
            note=(
                "Paper: average 1705 KB std 1964 over all machines; the "
                "active-machine average cache was about 7 Mbytes of 24; "
                "15-min changes averaged 493 KB (max ~22 MB)."
            ),
        )


def _window_changes(
    day: MachineDay, width: float
) -> list[float]:
    """Max-minus-min cache size per active window of the given width."""
    windows: dict[int, list[int]] = {}
    activity: dict[int, bool] = {}
    previous_opens = 0
    for snap in day.snapshots:
        index = int(snap.time // width)
        windows.setdefault(index, []).append(snap.counters.cache_size_bytes)
        opened = snap.counters.file_open_ops > previous_opens
        previous_opens = snap.counters.file_open_ops
        activity[index] = activity.get(index, False) or opened
    changes = []
    for index, sizes in windows.items():
        if len(sizes) < 2 or not activity.get(index, False):
            continue
        changes.append(float(max(sizes) - min(sizes)))
    return changes


def compute_cache_sizes(days: list[MachineDay]) -> CacheSizeResult:
    """Compute Table 4 over a set of machine-days."""
    result = CacheSizeResult()
    for day in days:
        previous_opens = 0
        for snap in day.snapshots:
            # Only sample sizes while the machine is in use, like the
            # paper's screening of idle intervals and reboots.
            if snap.counters.file_open_ops > previous_opens:
                result.size.add(float(snap.counters.cache_size_bytes))
            previous_opens = snap.counters.file_open_ops
        for change in _window_changes(day, 15 * 60.0):
            result.change_15min.add(change)
            result.change_15min_max = max(result.change_15min_max, change)
        for change in _window_changes(day, 60 * 60.0):
            result.change_60min.add(change)
            result.change_60min_max = max(result.change_60min_max, change)
    return result
