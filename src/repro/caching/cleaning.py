"""Table 9: dirty block cleaning.

Why dirty blocks were written to the server -- the 30-second delay, an
application fsync, a server recall, or the page being needed elsewhere
(given to VM / reused under pressure) -- plus the average time between
the block's last write and its writeback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching.aggregate import MachineDay, ratio
from repro.common.render import format_with_spread, render_table
from repro.common.stats import RunningStat

_REASONS: tuple[tuple[str, str, str], ...] = (
    ("30-second delay", "blocks_cleaned_delay", "clean_age_sum_delay"),
    ("Write-through requested (fsync)", "blocks_cleaned_fsync", "clean_age_sum_fsync"),
    ("Server recall", "blocks_cleaned_recall", "clean_age_sum_recall"),
    ("Given to virtual memory", "blocks_cleaned_vm", "clean_age_sum_vm"),
)


@dataclass
class CleaningResult:
    """Table 9's shares and ages by reason."""

    shares: dict[str, RunningStat] = field(
        default_factory=lambda: {label: RunningStat() for label, _, _ in _REASONS}
    )
    ages: dict[str, RunningStat] = field(
        default_factory=lambda: {label: RunningStat() for label, _, _ in _REASONS}
    )

    def render(self) -> str:
        rows = []
        for label, _, _ in _REASONS:
            share = self.shares[label]
            age = self.ages[label]
            rows.append(
                [
                    label,
                    format_with_spread(100 * share.mean, 100 * share.stddev, 1),
                    format_with_spread(age.mean, age.stddev, 1),
                ]
            )
        return render_table(
            "Table 9. Dirty block cleaning",
            ["Reason", "Blocks written (%)", "Age (seconds)"],
            rows,
            note=(
                "Paper: ~3/4 of cleanings from the 30-second delay "
                "(age ~48 s); roughly half of the rest from fsync and "
                "the rest from recalls; pages given to VM are rare."
            ),
        )


def compute_cleaning(days: list[MachineDay]) -> CleaningResult:
    """Compute Table 9 over a set of machine-days."""
    result = CleaningResult()
    for day in days:
        c = day.counters
        total = sum(getattr(c, count_attr) for _, count_attr, _ in _REASONS)
        if total <= 0:
            continue
        for label, count_attr, age_attr in _REASONS:
            count = getattr(c, count_attr)
            result.shares[label].add(count / total)
            age = ratio(getattr(c, age_attr), count)
            if age is not None:
                result.ages[label].add(age)
    return result
