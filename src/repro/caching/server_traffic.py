"""Table 7: traffic between clients and the server.

The same byte streams as Table 5, but *after* the client caches have
filtered them: read-miss fetches, writebacks, write fetches, paging,
write-shared passthrough, and directory reads.  Shares are per
machine-day percentages of that machine's server traffic, averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching.aggregate import MachineDay, ratio
from repro.common.render import format_with_spread, render_table
from repro.common.stats import RunningStat

_ROWS: tuple[tuple[str, str], ...] = (
    ("File reads (cache misses + write fetches)", "file_reads"),
    ("File writes (writebacks)", "file_writes"),
    ("Paging (backing + code/data misses)", "paging"),
    ("Write-shared passthrough", "write_shared"),
    ("Directory reads", "directories"),
)


@dataclass
class ServerTrafficResult:
    """Table 7's shares plus the headline filter ratio."""

    shares: dict[str, RunningStat] = field(
        default_factory=lambda: {name: RunningStat() for _, name in _ROWS}
    )
    #: server bytes / raw bytes -- the "caches filter 50%" headline.
    #: Per-machine-day distribution; the paper's single number is the
    #: *global* ratio, reported separately below.
    filter_ratio: RunningStat = field(default_factory=RunningStat)
    global_server_bytes: int = 0
    global_raw_bytes: int = 0
    #: reads:writes at the server (non-paging), paper ~2:1.
    read_write_ratio: RunningStat = field(default_factory=RunningStat)

    def render(self) -> str:
        rows = []
        for label, name in _ROWS:
            stat = self.shares[name]
            rows.append(
                [label, format_with_spread(100 * stat.mean, 100 * stat.stddev, 1)]
            )
        rows.append(
            [
                "Server traffic / raw traffic (per machine)",
                format_with_spread(
                    100 * self.filter_ratio.mean, 100 * self.filter_ratio.stddev, 1
                ),
            ]
        )
        global_ratio = (
            self.global_server_bytes / self.global_raw_bytes
            if self.global_raw_bytes
            else 0.0
        )
        rows.append(
            ["Server traffic / raw traffic (overall)", f"{100 * global_ratio:.1f}"]
        )
        rows.append(
            [
                "Non-paging read:write ratio",
                format_with_spread(
                    self.read_write_ratio.mean, self.read_write_ratio.stddev, 2
                ),
            ]
        )
        return render_table(
            "Table 7. Server traffic (percent of server bytes)",
            ["Type", "Share (std dev)"],
            rows,
            note=(
                "Paper: paging ~35% of server bytes; write-shared ~1%; "
                "client caches filter out ~50% of raw traffic; non-paging "
                "reads:writes ~2:1."
            ),
        )


def compute_server_traffic(days: list[MachineDay]) -> ServerTrafficResult:
    """Compute Table 7 over a set of machine-days."""
    result = ServerTrafficResult()
    for day in days:
        c = day.counters
        total = c.server_bytes
        if total <= 0:
            continue
        paging = (
            c.paging_backing_bytes_read
            + c.paging_backing_bytes_written
            + c.paging_read_miss_bytes
        )
        file_reads = (
            c.cache_read_miss_bytes - c.paging_read_miss_bytes
        ) + c.write_fetch_bytes
        values = {
            "file_reads": file_reads,
            "file_writes": c.bytes_written_to_server,
            "paging": paging,
            "write_shared": c.shared_bytes_read + c.shared_bytes_written,
            "directories": c.directory_bytes_read,
        }
        for name, value in values.items():
            share = ratio(value, total)
            if share is not None:
                result.shares[name].add(share)
        if c.raw_total_bytes > 0:
            result.filter_ratio.add(total / c.raw_total_bytes)
        result.global_server_bytes += total
        result.global_raw_bytes += c.raw_total_bytes
        server_reads = file_reads + c.shared_bytes_read + c.directory_bytes_read
        server_writes = c.bytes_written_to_server + c.shared_bytes_written
        rw = ratio(server_reads, server_writes)
        if rw is not None:
            result.read_write_ratio.add(rw)
    return result
