"""Table 8: cache block replacement.

For each machine-day: what fraction of replaced blocks made room for
another file block versus being handed to the virtual memory system,
and how long replaced blocks had gone unreferenced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching.aggregate import MachineDay, ratio
from repro.common.render import format_with_spread, render_table
from repro.common.stats import RunningStat


@dataclass
class ReplacementResult:
    """Table 8's shares and ages."""

    for_file_share: RunningStat = field(default_factory=RunningStat)
    for_vm_share: RunningStat = field(default_factory=RunningStat)
    age_file_minutes: RunningStat = field(default_factory=RunningStat)
    age_vm_minutes: RunningStat = field(default_factory=RunningStat)

    def render(self) -> str:
        rows = [
            [
                "Another file block",
                format_with_spread(
                    100 * self.for_file_share.mean,
                    100 * self.for_file_share.stddev,
                    1,
                ),
                format_with_spread(
                    self.age_file_minutes.mean, self.age_file_minutes.stddev, 1
                ),
            ],
            [
                "Virtual memory page",
                format_with_spread(
                    100 * self.for_vm_share.mean, 100 * self.for_vm_share.stddev, 1
                ),
                format_with_spread(
                    self.age_vm_minutes.mean, self.age_vm_minutes.stddev, 1
                ),
            ],
        ]
        return render_table(
            "Table 8. Cache block replacement",
            ["New contents", "Blocks replaced (%)", "Age (minutes)"],
            rows,
            note=(
                "Paper: 79.4% replaced for file blocks (age ~67 min), "
                "20.6% for virtual memory (age ~48 min)."
            ),
        )


def compute_replacement(days: list[MachineDay]) -> ReplacementResult:
    """Compute Table 8 over a set of machine-days."""
    result = ReplacementResult()
    for day in days:
        c = day.counters
        total = c.blocks_replaced_for_file + c.blocks_replaced_for_vm
        if total <= 0:
            continue
        result.for_file_share.add(c.blocks_replaced_for_file / total)
        result.for_vm_share.add(c.blocks_replaced_for_vm / total)
        age_file = ratio(c.replace_age_sum_file, c.blocks_replaced_for_file)
        if age_file is not None:
            result.age_file_minutes.add(age_file / 60.0)
        age_vm = ratio(c.replace_age_sum_vm, c.blocks_replaced_for_vm)
        if age_vm is not None:
            result.age_vm_minutes.add(age_vm / 60.0)
    return result
