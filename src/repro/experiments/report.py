"""Full-paper report generation.

``write_report`` runs every experiment plus the cross-cutting analyses
(the BSD then-vs-now comparison and the Section 5.3 latency analysis)
and writes a single self-contained text report -- the reproduction's
equivalent of the paper's results sections.
"""

from __future__ import annotations

import os

from repro.analysis.bsd_comparison import (
    build_comparisons,
    render_then_vs_now,
    throughput_vs_compute_gap,
)
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    ExperimentContext,
    run_experiment,
)
from repro.fs.latency import analyze_paging_latency

_HEADER = """\
Reproduction report: Measurements of a Distributed File System
(Baker, Hartman, Kupfer, Shirriff, Ousterhout -- SOSP 1991)

Synthetic substrate at scale {scale} (seed {seed}); see DESIGN.md for
the substitutions and EXPERIMENTS.md for the committed shape bands.
"""


def build_report(context: ExperimentContext, observation=None) -> str:
    """Run everything and return the report text.

    ``observation`` (a :class:`repro.obs.Observation`, typically from
    :func:`~repro.experiments.registry.run_observed_replay`) appends an
    OBSERVABILITY section; when omitted the report text is unchanged.
    """
    sections = [
        _HEADER.format(scale=context.scale, seed=context.seed),
    ]

    results = {
        experiment_id: run_experiment(experiment_id, context)
        for experiment_id in EXPERIMENT_IDS
    }

    sections.append("=" * 72)
    sections.append("SECTION 4 -- THE BSD STUDY REVISITED")
    sections.append("=" * 72)
    for experiment_id in ("table1", "table2", "table3",
                          "figure1", "figure2", "figure3", "figure4"):
        result = results[experiment_id]
        sections.append(result.rendered)
        sections.append(f"Paper: {result.paper_expectation}")
        sections.append("")

    sections.append("=" * 72)
    sections.append("SECTION 5 -- FILE CACHE MEASUREMENTS")
    sections.append("=" * 72)
    for experiment_id in ("table4", "table5", "table6", "table7",
                          "table8", "table9"):
        result = results[experiment_id]
        sections.append(result.rendered)
        sections.append(f"Paper: {result.paper_expectation}")
        sections.append("")

    sections.append(analyze_paging_latency(context.cluster_results()).render())
    sections.append("")

    sections.append("=" * 72)
    sections.append("SECTIONS 5.5-5.6 -- CACHE CONSISTENCY")
    sections.append("=" * 72)
    for experiment_id in ("table10", "table11", "table12"):
        result = results[experiment_id]
        sections.append(result.rendered)
        sections.append(f"Paper: {result.paper_expectation}")
        sections.append("")

    sections.append("=" * 72)
    sections.append("BEYOND THE PAPER -- CRASHES AND THE DELAYED-WRITE RISK")
    sections.append("=" * 72)
    for experiment_id in ("faults", "rpc_loss"):
        result = results[experiment_id]
        sections.append(result.rendered)
        sections.append(f"Paper: {result.paper_expectation}")
        sections.append("")

    sections.append("=" * 72)
    sections.append("THEN VS NOW -- AGAINST THE 1985 BSD STUDY")
    sections.append("=" * 72)
    table2 = results["table2"].metrics
    comparisons = build_comparisons(
        throughput_10min_kbs=table2["avg_user_throughput_10min_kbs"],
        throughput_10s_kbs=table2["avg_user_throughput_10s_kbs"],
        opens_below_quarter_second=results["figure3"].metrics[
            "opens_below_quarter_second"
        ],
        whole_file_read_fraction=results["table3"].metrics[
            "ro_whole_file_share"
        ],
        sequential_bytes_fraction=results["table3"].metrics[
            "sequential_bytes_fraction"
        ],
        read_miss_ratio=results["table6"].metrics["read_miss_ratio"],
    )
    sections.append(render_then_vs_now(comparisons))
    gap = throughput_vs_compute_gap(table2["avg_user_throughput_10min_kbs"])
    sections.append(
        f"\nCompute power grew {gap:.0f}x faster than file throughput."
    )
    if observation is not None:
        sections.append("")
        sections.append("=" * 72)
        sections.append("OBSERVABILITY -- COUNTER TIMESERIES, TRACE, LATENCIES")
        sections.append("=" * 72)
        sections.append(observation.render_summary())
    return "\n".join(sections)


def write_report(
    path: str | os.PathLike[str],
    context: ExperimentContext | None = None,
    observation=None,
) -> str:
    """Build the report and write it to ``path``; returns the text."""
    text = build_report(context or ExperimentContext(), observation=observation)
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def export_figure_data(
    directory: str | os.PathLike[str],
    context: ExperimentContext | None = None,
) -> list[str]:
    """Write the four figures' CDF data as CSV files for replotting.

    Produces ``figure1.csv`` ... ``figure4.csv`` in ``directory`` (one
    long-form file per figure: curve, value, fraction) and returns the
    paths written.
    """
    from repro.analysis import (
        compute_file_sizes,
        compute_lifetimes,
        compute_open_times,
        compute_run_lengths,
        write_cdf_csv,
    )

    context = context or ExperimentContext()
    accesses = context.accesses()
    run_lengths = compute_run_lengths(accesses)
    file_sizes = compute_file_sizes(accesses)
    open_times = compute_open_times(accesses)
    lifetimes = compute_lifetimes(
        record for trace in context.traces() for record in trace.records
    )
    figures = {
        "figure1.csv": {
            "by_runs": run_lengths.by_runs,
            "by_bytes": run_lengths.by_bytes,
        },
        "figure2.csv": {
            "by_accesses": file_sizes.by_accesses,
            "by_bytes": file_sizes.by_bytes,
        },
        "figure3.csv": {"by_opens": open_times.by_opens},
        "figure4.csv": {
            "by_files": lifetimes.by_files,
            "by_bytes": lifetimes.by_bytes,
        },
    }
    os.makedirs(os.fspath(directory), exist_ok=True)
    written = []
    for name, curves in figures.items():
        path = os.path.join(os.fspath(directory), name)
        write_cdf_csv(path, curves)
        written.append(path)
    return written
