"""The experiment registry and shared context.

A :class:`ExperimentContext` owns the expensive inputs -- the eight
synthetic traces and the cluster replays -- and builds them lazily
through :mod:`repro.pipeline`, so running several experiments in one
process (the bench suite, the quickstart) generates each input once,
repeat runs load it from the artifact cache, and multi-core machines
fan the generation out across worker processes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from hashlib import sha256
from typing import Callable

from repro.analysis import (
    FileSizeResult,
    LifetimeResult,
    OpenTimeResult,
    RunLengthResult,
    assemble_accesses,
    compute_access_patterns,
    compute_activity,
    compute_table1,
)
from repro.analysis.access_patterns import (
    AccessType,
    Sequentiality,
    merge_pattern_results,
    render_table3,
)
from repro.analysis.table1 import render_table1
from repro.analysis.sharded import (
    render_table1_per_server,
    render_table2_per_server,
    render_table7_per_server,
)
from repro.caching import (
    compute_cache_sizes,
    compute_cleaning,
    compute_effectiveness,
    compute_replacement,
    compute_server_traffic,
    compute_traffic_sources,
    machine_days,
)
from repro.common.errors import ConfigError
from repro.common.units import KB, MB
from repro.consistency import (
    compute_actions,
    compute_recovery_study,
    extract_shared_activity,
    simulate_polling,
    simulate_schemes,
)
from repro.consistency.actions import render_table10
from repro.consistency.lossy import (
    LossRateCell,
    LossStudyResult,
    loss_models_for,
)
from repro.consistency.polling import render_table11
from repro.consistency.schemes import render_table12
from repro.experiments.expectations import PAPER_EXPECTATIONS
from repro.common.rng import RngStream
from repro.fs import (
    ClusterConfig,
    FaultConfig,
    Placement,
    ProtocolOracle,
    compute_integrity_study,
    compute_replication_study,
)
from repro.fs.cluster import ClusterResult, run_cluster_on_trace
from repro.pipeline import (
    ArtifactCache,
    PipelineReport,
    build_accesses,
    build_cluster_results,
    build_traces,
    resolve_cache,
)
from repro.pipeline.runner import run_stage, trace_tasks
from repro.pipeline.tasks import ReplayTask
from repro.workload import STANDARD_PROFILES, SyntheticTrace


@dataclass
class ExperimentResult:
    """What an experiment hands back."""

    experiment_id: str
    title: str
    rendered: str
    metrics: dict[str, float]
    paper_expectation: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.rendered}\n\nPaper expectation: {self.paper_expectation}"
        )


@dataclass
class ExperimentContext:
    """Shared, lazily built inputs for the experiments.

    ``scale`` shrinks the user population (and the simulated client
    count for the Section 5 experiments) so the full suite runs in
    seconds at 0.05 and in minutes at 0.25+.

    ``workers`` fans trace generation, access assembly, and cluster
    replays out across that many worker processes (0 = one per core,
    1 = serial).  Output is identical regardless of worker count.

    ``cache`` controls the content-addressed artifact cache: ``True``
    uses ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), ``False``
    disables caching, a path selects a directory, and an
    :class:`~repro.pipeline.ArtifactCache` is used as-is.

    ``num_servers`` shards the replayed cluster across that many file
    servers (the paper's cluster had four); with more than one, Tables
    1, 2, and 7 gain a per-server breakdown.  Ignored when an explicit
    ``cluster_config`` is supplied (its own ``num_servers`` wins).
    """

    scale: float = 0.1
    seed: int = 1991
    num_servers: int = 1
    #: Copies of every file (see repro.fs.replication).  1 = the
    #: paper's single-copy world; r > 1 places each file on r servers
    #: and serves reads from any live replica.  Ignored when an
    #: explicit ``cluster_config`` is supplied.
    replication_factor: int = 1
    #: Traces replayed through the cluster for Tables 4-9.  The paper's
    #: two-week counter collection reflects normal operation, so the
    #: default picks the non-simulation-dominated traces.
    cluster_trace_indexes: tuple[int, ...] = (0, 5, 6)
    #: Seeded silent-disk-fault rate (bit rot, events per server-hour;
    #: see repro.fs.integrity).  0 = no disk faults, no integrity layer.
    #: Ignored when an explicit ``cluster_config`` is supplied.
    disk_corruption_rate: float = 0.0
    #: Background scrub period in seconds; 0 = scrubbing off.  Ignored
    #: when an explicit ``cluster_config`` is supplied.
    scrub_interval: float = 0.0
    cluster_config: ClusterConfig | None = None
    workers: int = 1
    cache: ArtifactCache | bool | str | os.PathLike | None = True
    pipeline_report: PipelineReport = field(
        default_factory=PipelineReport, repr=False, compare=False
    )
    _traces: list[SyntheticTrace] | None = field(default=None, repr=False)
    _cluster_results: list[ClusterResult] | None = field(default=None, repr=False)
    _accesses: list | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.num_servers < 1:
            raise ConfigError(
                f"num_servers must be >= 1, got {self.num_servers}"
            )
        if self.replication_factor < 1:
            raise ConfigError(
                f"replication_factor must be >= 1, "
                f"got {self.replication_factor}"
            )
        if self.disk_corruption_rate < 0:
            raise ConfigError(
                f"disk_corruption_rate must be >= 0 events per "
                f"server-hour, got {self.disk_corruption_rate}"
            )
        if self.scrub_interval < 0:
            raise ConfigError(
                f"scrub_interval must be >= 0 seconds (0 = scrubbing "
                f"off), got {self.scrub_interval}"
            )
        self._artifact_cache = resolve_cache(self.cache)

    @property
    def client_count(self) -> int:
        """Clients shrink with scale so per-client load stays realistic."""
        return max(4, round(40 * self.scale))

    def base_cluster_config(self) -> ClusterConfig:
        """The cluster config every Section 5 replay starts from."""
        if self.cluster_config is not None:
            return self.cluster_config
        config = ClusterConfig(
            client_count=self.client_count,
            num_servers=self.num_servers,
            replication_factor=self.replication_factor,
        )
        if self.disk_corruption_rate > 0 or self.scrub_interval > 0:
            # Only replaced when asked for, so default contexts keep the
            # exact config (and artifact-cache keys) they always had.
            config = replace(
                config,
                scrub_interval=self.scrub_interval,
                faults=FaultConfig(
                    disk_corruption_rate=self.disk_corruption_rate
                ),
            )
        return config

    def placement(self) -> Placement:
        """The file->server placement the replays shard by."""
        config = self.base_cluster_config()
        return Placement(config.num_servers, config.placement_seed)

    def _trace_tasks(self):
        return trace_tasks(self.scale, self.seed, self.client_count)

    def traces(self) -> list[SyntheticTrace]:
        if self._traces is None:
            self._traces = build_traces(
                self.scale,
                self.seed,
                self.client_count,
                workers=self.workers,
                cache=self._artifact_cache,
                report=self.pipeline_report,
            )
        return self._traces

    def accesses(self):
        """All completed accesses, pooled across the eight traces."""
        if self._accesses is None:
            self._accesses = build_accesses(
                self.traces(),
                self._trace_tasks(),
                workers=self.workers,
                cache=self._artifact_cache,
                report=self.pipeline_report,
            )
        return self._accesses

    def cluster_results(self) -> list[ClusterResult]:
        if self._cluster_results is None:
            config = self.base_cluster_config()
            self._cluster_results = build_cluster_results(
                self.traces(),
                self._trace_tasks(),
                self.cluster_trace_indexes,
                config,
                self.seed,
                workers=self.workers,
                cache=self._artifact_cache,
                report=self.pipeline_report,
            )
        return self._cluster_results


# --------------------------------------------------------------------------
# the experiments
# --------------------------------------------------------------------------


def _table1(ctx: ExperimentContext) -> ExperimentResult:
    stats = [
        compute_table1(t.name, t.records, t.duration) for t in ctx.traces()
    ]
    total_opens = sum(s.open_events for s in stats)
    total_read = sum(s.mbytes_read for s in stats)
    rendered = render_table1(stats)
    placement = ctx.placement()
    if placement.num_servers > 1:
        rendered += "\n\n" + render_table1_per_server(ctx.traces(), placement)
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: overall trace statistics",
        rendered=rendered,
        metrics={
            "total_opens": float(total_opens),
            "total_mbytes_read": total_read,
            "max_trace_mbytes_read": max(s.mbytes_read for s in stats),
            "min_users": float(min(s.different_users for s in stats)),
            "max_users": float(max(s.different_users for s in stats)),
        },
        paper_expectation=PAPER_EXPECTATIONS["table1"],
    )


def _table2(ctx: ExperimentContext) -> ExperimentResult:
    result = compute_activity(
        (t.records, t.duration) for t in ctx.traces()
    )
    rendered = result.render()
    placement = ctx.placement()
    if placement.num_servers > 1:
        rendered += "\n\n" + render_table2_per_server(ctx.traces(), placement)
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: user activity",
        rendered=rendered,
        metrics={
            "avg_user_throughput_10min_kbs": result.ten_minute_all.average_throughput_kbs,
            "avg_user_throughput_10s_kbs": result.ten_second_all.average_throughput_kbs,
            "migrated_throughput_10min_kbs": result.ten_minute_migrated.average_throughput_kbs,
            "migration_burst_factor": result.migration_burst_factor,
            "peak_user_10s_kbs": result.ten_second_all.peak_user_throughput_kbs,
        },
        paper_expectation=PAPER_EXPECTATIONS["table2"],
    )


def _table3(ctx: ExperimentContext) -> ExperimentResult:
    per_trace = [
        compute_access_patterns(assemble_accesses(t.records))
        for t in ctx.traces()
    ]
    pooled = merge_pattern_results(per_trace)
    return ExperimentResult(
        experiment_id="table3",
        title="Table 3: file access patterns",
        rendered=render_table3(pooled, per_trace),
        metrics={
            "read_only_access_share": pooled.type_share(AccessType.READ_ONLY),
            "write_only_access_share": pooled.type_share(AccessType.WRITE_ONLY),
            "read_write_access_share": pooled.type_share(AccessType.READ_WRITE),
            "ro_whole_file_share": pooled.sequentiality_share(
                AccessType.READ_ONLY, Sequentiality.WHOLE_FILE
            ),
            "sequential_bytes_fraction": pooled.sequential_bytes_fraction,
        },
        paper_expectation=PAPER_EXPECTATIONS["table3"],
    )


def _figure1(ctx: ExperimentContext) -> ExperimentResult:
    result = RunLengthResult()
    for access in ctx.accesses():
        result.add(access)
    return ExperimentResult(
        experiment_id="figure1",
        title="Figure 1: sequential run lengths",
        rendered=result.render(),
        metrics={
            "runs_below_10kb": result.fraction_of_runs_below_10kb,
            "bytes_in_runs_over_1mb": result.fraction_of_bytes_in_runs_over_1mb,
            "median_run_bytes": result.by_runs.median(),
        },
        paper_expectation=PAPER_EXPECTATIONS["figure1"],
    )


def _figure2(ctx: ExperimentContext) -> ExperimentResult:
    result = FileSizeResult()
    for access in ctx.accesses():
        result.add(access)
    return ExperimentResult(
        experiment_id="figure2",
        title="Figure 2: file sizes",
        rendered=result.render(),
        metrics={
            "accesses_below_10kb": result.fraction_of_accesses_below_10kb,
            "bytes_from_files_over_1mb": result.fraction_of_bytes_from_files_over_1mb,
            "median_file_bytes": result.by_accesses.median(),
        },
        paper_expectation=PAPER_EXPECTATIONS["figure2"],
    )


def _figure3(ctx: ExperimentContext) -> ExperimentResult:
    result = OpenTimeResult()
    for access in ctx.accesses():
        result.add(access)
    return ExperimentResult(
        experiment_id="figure3",
        title="Figure 3: file open times",
        rendered=result.render(),
        metrics={
            "opens_below_quarter_second": result.fraction_below_quarter_second,
            "median_open_seconds": result.median_open_seconds,
        },
        paper_expectation=PAPER_EXPECTATIONS["figure3"],
    )


def _figure4(ctx: ExperimentContext) -> ExperimentResult:
    result = LifetimeResult()
    for trace in ctx.traces():
        partial = LifetimeResult()
        from repro.analysis.lifetime import compute_lifetimes

        partial = compute_lifetimes(trace.records)
        result.by_files._samples.extend(partial.by_files._samples)
        result.by_bytes._samples.extend(partial.by_bytes._samples)
        result.unknown_lifetime_deletes += partial.unknown_lifetime_deletes
    result.by_files._values = None
    result.by_bytes._values = None
    return ExperimentResult(
        experiment_id="figure4",
        title="Figure 4: file lifetimes",
        rendered=result.render(),
        metrics={
            "files_under_30s": result.fraction_of_files_under_30s,
            "bytes_under_30s": result.fraction_of_bytes_under_30s,
        },
        paper_expectation=PAPER_EXPECTATIONS["figure4"],
    )


def _table4(ctx: ExperimentContext) -> ExperimentResult:
    days = machine_days(ctx.cluster_results())
    result = compute_cache_sizes(days)
    return ExperimentResult(
        experiment_id="table4",
        title="Table 4: client cache sizes",
        rendered=result.render(),
        metrics={
            "avg_cache_mb": result.size.mean / MB,
            "avg_15min_change_kb": result.change_15min.mean / KB,
            "max_15min_change_kb": result.change_15min_max / KB,
        },
        paper_expectation=PAPER_EXPECTATIONS["table4"],
    )


def _table5(ctx: ExperimentContext) -> ExperimentResult:
    days = machine_days(ctx.cluster_results())
    result = compute_traffic_sources(days)
    return ExperimentResult(
        experiment_id="table5",
        title="Table 5: traffic sources",
        rendered=result.render(),
        metrics={
            "paging_share": result.paging_share.mean,
            "uncacheable_share": result.uncacheable_share.mean,
            "write_shared_share": result.shares["write_shared"].mean,
        },
        paper_expectation=PAPER_EXPECTATIONS["table5"],
    )


def _table6(ctx: ExperimentContext) -> ExperimentResult:
    days = machine_days(ctx.cluster_results())
    result = compute_effectiveness(days)
    return ExperimentResult(
        experiment_id="table6",
        title="Table 6: client cache effectiveness",
        rendered=result.render(),
        metrics={
            "read_miss_ratio": result.read_miss.mean,
            "migrated_read_miss_ratio": result.migrated_read_miss.mean,
            "writeback_traffic_ratio": result.writeback_traffic.mean,
            "write_fetch_ratio": result.write_fetches.mean,
            "paging_read_miss_ratio": result.paging_read_miss.mean,
            "write_absorption": result.write_absorption.mean,
        },
        paper_expectation=PAPER_EXPECTATIONS["table6"],
    )


def _table7(ctx: ExperimentContext) -> ExperimentResult:
    days = machine_days(ctx.cluster_results())
    result = compute_server_traffic(days)
    global_filter = (
        result.global_server_bytes / result.global_raw_bytes
        if result.global_raw_bytes
        else 0.0
    )
    rendered = result.render()
    replays = ctx.cluster_results()
    if replays and len(replays[0].per_server_counters) > 1:
        rendered += "\n\n" + render_table7_per_server(replays)
    return ExperimentResult(
        experiment_id="table7",
        title="Table 7: server traffic",
        rendered=rendered,
        metrics={
            "paging_share": result.shares["paging"].mean,
            "write_shared_share": result.shares["write_shared"].mean,
            "global_filter_ratio": global_filter,
            "read_write_ratio": result.read_write_ratio.mean,
        },
        paper_expectation=PAPER_EXPECTATIONS["table7"],
    )


def _table8(ctx: ExperimentContext) -> ExperimentResult:
    days = machine_days(ctx.cluster_results())
    result = compute_replacement(days)
    return ExperimentResult(
        experiment_id="table8",
        title="Table 8: cache block replacement",
        rendered=result.render(),
        metrics={
            "for_file_share": result.for_file_share.mean,
            "for_vm_share": result.for_vm_share.mean,
            "age_file_minutes": result.age_file_minutes.mean,
            "age_vm_minutes": result.age_vm_minutes.mean,
        },
        paper_expectation=PAPER_EXPECTATIONS["table8"],
    )


def _table9(ctx: ExperimentContext) -> ExperimentResult:
    days = machine_days(ctx.cluster_results())
    result = compute_cleaning(days)
    return ExperimentResult(
        experiment_id="table9",
        title="Table 9: dirty block cleaning",
        rendered=result.render(),
        metrics={
            "delay_share": result.shares["30-second delay"].mean,
            "fsync_share": result.shares["Write-through requested (fsync)"].mean,
            "recall_share": result.shares["Server recall"].mean,
            "vm_share": result.shares["Given to virtual memory"].mean,
            "delay_age_seconds": result.ages["30-second delay"].mean,
        },
        paper_expectation=PAPER_EXPECTATIONS["table9"],
    )


def _table10(ctx: ExperimentContext) -> ExperimentResult:
    per_trace = [compute_actions(t.records) for t in ctx.traces()]
    opens = sum(r.opens for r in per_trace)
    sharing = sum(r.write_sharing_opens for r in per_trace)
    recalls = sum(r.recall_opens for r in per_trace)
    return ExperimentResult(
        experiment_id="table10",
        title="Table 10: consistency action frequency",
        rendered=render_table10(per_trace),
        metrics={
            "write_sharing_fraction": sharing / opens if opens else 0.0,
            "recall_fraction": recalls / opens if opens else 0.0,
        },
        paper_expectation=PAPER_EXPECTATIONS["table10"],
    )


def _table11(ctx: ExperimentContext) -> ExperimentResult:
    results_60 = [
        simulate_polling(t.records, 60.0, t.duration) for t in ctx.traces()
    ]
    results_3 = [
        simulate_polling(t.records, 3.0, t.duration) for t in ctx.traces()
    ]
    errors_60 = sum(r.errors for r in results_60)
    errors_3 = sum(r.errors for r in results_3)
    return ExperimentResult(
        experiment_id="table11",
        title="Table 11: stale data errors under polling",
        rendered=render_table11(results_60, results_3),
        metrics={
            "errors_per_hour_60s": sum(r.errors_per_hour for r in results_60)
            / len(results_60),
            "errors_per_hour_3s": sum(r.errors_per_hour for r in results_3)
            / len(results_3),
            "error_reduction_factor": errors_60 / errors_3 if errors_3 else float("inf"),
            "users_affected_60s": sum(
                r.fraction_users_affected for r in results_60
            )
            / len(results_60),
            "users_affected_3s": sum(r.fraction_users_affected for r in results_3)
            / len(results_3),
        },
        paper_expectation=PAPER_EXPECTATIONS["table11"],
    )


def _table12(ctx: ExperimentContext) -> ExperimentResult:
    comparisons = [
        simulate_schemes(extract_shared_activity(t.records))
        for t in ctx.traces()
    ]
    total = {
        key: (
            sum(getattr(c, key).bytes_transferred for c in comparisons),
            sum(getattr(c, key).bytes_requested for c in comparisons),
            sum(getattr(c, key).rpcs for c in comparisons),
            sum(getattr(c, key).requests for c in comparisons),
        )
        for key in ("sprite", "modified", "token")
    }

    def byte_ratio(key: str) -> float:
        moved, requested, _, _ = total[key]
        return moved / requested if requested else 0.0

    def rpc_ratio(key: str) -> float:
        _, _, rpcs, requests = total[key]
        return rpcs / requests if requests else 0.0

    return ExperimentResult(
        experiment_id="table12",
        title="Table 12: cache consistency overhead",
        rendered=render_table12(comparisons),
        metrics={
            "sprite_byte_ratio": byte_ratio("sprite"),
            "modified_byte_ratio": byte_ratio("modified"),
            "token_byte_ratio": byte_ratio("token"),
            "sprite_rpc_ratio": rpc_ratio("sprite"),
            "token_rpc_ratio": rpc_ratio("token"),
        },
        paper_expectation=PAPER_EXPECTATIONS["table12"],
    )


#: Writeback ages swept by the faults experiment; 0 means write-through.
FAULT_SWEEP_AGES: tuple[float, ...] = (0.0, 5.0, 15.0, 30.0, 60.0)

#: Fault load for the Table R study.  Real machines crash every few
#: weeks; these rates (a client crash every half hour, a server crash
#: every four hours) are deliberately absurd so a one-day replay sees
#: hundreds of events -- the study measures loss *per crash*, and the
#: crash count must be large enough for dirty-window hits to show.
FAULT_STUDY_KNOBS = FaultConfig(
    server_crash_rate=0.25,
    server_downtime=120.0,
    client_crash_rate=2.0,
    client_downtime=60.0,
    partition_rate=1.0,
    partition_duration=60.0,
)


def _faults(ctx: ExperimentContext) -> ExperimentResult:
    """Table R: sweep the writeback age under one fixed fault timeline.

    Every replay shares the trace, the replay seed, and the fault knobs,
    so the injected crash schedule is identical column to column (the
    schedule is drawn from its own forked stream); only the delayed-
    write policy changes.  Age 0 runs write-through -- the ablation the
    paper's Section 5.2 reliability caveat argues against on traffic
    grounds.
    """
    trace_index = ctx.cluster_trace_indexes[0]
    trace = ctx.traces()[trace_index]
    trace_fields = ctx._trace_tasks()[trace_index].key_fields()
    base = ctx.base_cluster_config()

    labels: list[str] = []
    tasks: list[ReplayTask] = []
    for age in FAULT_SWEEP_AGES:
        config = replace(
            base,
            write_through=age == 0.0,
            writeback_delay=age,
            faults=FAULT_STUDY_KNOBS,
        )
        labels.append("0 (write-thru)" if age == 0.0 else f"{age:g} s")
        tasks.append(
            ReplayTask(
                trace_fields=trace_fields,
                records=trace.records,
                duration=trace.duration,
                config=config,
                seed=ctx.seed + 4099,
            )
        )
    results = run_stage(
        "fault-replays",
        tasks,
        workers=ctx.workers,
        cache=ctx._artifact_cache,
        report=ctx.pipeline_report,
    )
    study = compute_recovery_study(list(zip(labels, results)))

    metrics: dict[str, float] = {}
    for age, cell in zip(FAULT_SWEEP_AGES, study.cells):
        metrics[f"lost_kbytes_age_{age:g}"] = cell.lost_kbytes
    sprite = study.cells[FAULT_SWEEP_AGES.index(30.0)]
    write_through = study.cells[0]
    metrics["reopen_rpcs_age_30"] = float(sprite.reopen_rpcs)
    metrics["revalidate_rpcs_age_30"] = float(sprite.revalidate_rpcs)
    metrics["stall_seconds_age_30"] = sprite.stall_seconds
    metrics["writeback_kbytes_age_0"] = write_through.writeback_kbytes
    metrics["writeback_kbytes_age_30"] = sprite.writeback_kbytes
    return ExperimentResult(
        experiment_id="faults",
        title="Table R: crash data loss vs. writeback age",
        rendered=study.render(),
        metrics=metrics,
        paper_expectation=PAPER_EXPECTATIONS["faults"],
    )


#: Message-loss rates swept by the rpc_loss experiment.
LOSS_SWEEP_RATES: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10)


def _rpc_loss(ctx: ExperimentContext) -> ExperimentResult:
    """Table S: consistency and transport cost under message loss.

    Two legs per swept rate.  The scheme leg replays every trace's
    write-shared request stream through the three Table 12 consistency
    algorithms with a Bernoulli loss model on their invalidation
    messages, counting reads served stale.  The transport leg replays
    one full cluster trace through the at-most-once RPC channel at the
    same loss rate (plus proportional duplicate/reorder/delay rates)
    with the protocol-invariant oracle attached -- message loss must
    cost retransmissions and stall, never correctness, so the oracle
    column has to read 0 violations in every row.
    """
    activities = []
    for trace in ctx.traces():
        activities.extend(extract_shared_activity(trace.records))
    trace_index = ctx.cluster_trace_indexes[0]
    cluster_trace = ctx.traces()[trace_index]
    base = ctx.base_cluster_config()
    study_seed = ctx.seed + 8191
    rng = RngStream.root(study_seed).fork("rpc-loss")

    cells: list[LossRateCell] = []
    for rate in LOSS_SWEEP_RATES:
        models = loss_models_for(rate, rng.fork(f"rate-{rate:g}"))
        comparison = simulate_schemes(activities, models)
        config = replace(
            base,
            faults=FaultConfig(
                message_loss_rate=rate,
                message_duplicate_rate=rate / 2,
                message_reorder_rate=rate / 2,
                message_delay_rate=rate,
            ),
        )
        oracle = ProtocolOracle(seed=study_seed, raise_on_violation=False)
        result = run_cluster_on_trace(
            cluster_trace.records,
            cluster_trace.duration,
            config,
            seed=study_seed,
            oracle=oracle,
        )
        clients = result.final_counters.values()
        server = result.server_counters
        cells.append(
            LossRateCell(
                rate=rate,
                comparison=comparison,
                messages_sent=sum(c.rpc_messages_sent for c in clients),
                retransmissions=sum(c.rpc_retransmissions for c in clients),
                replies_lost=sum(c.rpc_replies_lost for c in clients),
                duplicates_suppressed=server.duplicate_rpcs_suppressed,
                replies_replayed=server.rpc_replies_replayed,
                stale_rpcs_dropped=server.stale_rpcs_dropped,
                # stall_seconds already contains rpc_delay_seconds;
                # never add the two (see ClientCounters.backoff_stall_seconds).
                stall_seconds=sum(c.stall_seconds for c in clients),
                oracle_checks=oracle.checks_run,
                oracle_violations=len(oracle.violations),
            )
        )
    study = LossStudyResult(cells)

    metrics: dict[str, float] = {
        "oracle_violations_total": float(
            sum(cell.oracle_violations for cell in cells)
        ),
    }
    for cell in cells:
        tag = f"{cell.rate:g}"
        metrics[f"sprite_stale_fraction_{tag}"] = cell.stale_fraction("sprite")
        metrics[f"modified_stale_fraction_{tag}"] = cell.stale_fraction(
            "modified"
        )
        metrics[f"token_stale_fraction_{tag}"] = cell.stale_fraction("token")
    worst = cells[-1]
    metrics["retransmission_rate_0.1"] = worst.retransmission_rate
    metrics["replies_lost_0.1"] = float(worst.replies_lost)
    metrics["duplicates_suppressed_0.1"] = float(worst.duplicates_suppressed)
    metrics["messages_sent_0"] = float(cells[0].messages_sent)
    return ExperimentResult(
        experiment_id="rpc_loss",
        title="Table S: consistency under a lossy network",
        rendered=study.render(),
        metrics=metrics,
        paper_expectation=PAPER_EXPECTATIONS["rpc_loss"],
    )


#: Replication factors swept by the replication experiment.
REPLICATION_SWEEP: tuple[int, ...] = (1, 2, 3)

#: Servers the replication sweep shards across (the paper's cluster
#: size, and enough room for three copies plus a re-replication target).
REPLICATION_STUDY_SERVERS = 4

#: Fault load for the Table A study: the Table R timeline's crash mix
#: with the server-crash knobs raised until server outages overlap.  A
#: second copy already absorbs isolated crashes, so the difference
#: between r=2 and r=3 only shows when two servers are down at once --
#: at this rate each server is down ~8% of the time, so double outages
#: recur.  Partitions are left out: a partitioned client can reach *no*
#: server, so partition stall is identical in every column and would
#: only dilute the availability signal.
REPLICATION_STUDY_KNOBS = FaultConfig(
    server_crash_rate=4.0,
    server_downtime=300.0,
    client_crash_rate=2.0,
    client_downtime=60.0,
)


def _replication(ctx: ExperimentContext) -> ExperimentResult:
    """Table A: availability and data loss vs. replication factor.

    One cluster trace is replayed at r = 1, 2, 3 copies per file over
    four servers.  Every column shares the trace, the replay seed, and
    the fault knobs, so the injected crash schedule is identical cell
    to cell; only the replication factor varies.  Paging is disabled
    for this sweep -- backing-store pages are pinned to one server by
    design (a paging stall cannot fail over), and removing them leaves
    exactly the traffic replication can help.  The protocol-invariant
    oracle rides along in collection mode: failover must never trade
    correctness for availability, so the violations row has to read 0
    in every column.
    """
    trace_index = ctx.cluster_trace_indexes[0]
    trace = ctx.traces()[trace_index]
    base = ctx.base_cluster_config()
    study_seed = ctx.seed + 16383

    labelled = []
    for factor in REPLICATION_SWEEP:
        config = replace(
            base,
            num_servers=REPLICATION_STUDY_SERVERS,
            replication_factor=factor,
            paging_intensity=0.0,
            faults=REPLICATION_STUDY_KNOBS,
        )
        oracle = ProtocolOracle(seed=study_seed, raise_on_violation=False)
        result = run_cluster_on_trace(
            trace.records,
            trace.duration,
            config,
            seed=study_seed,
            oracle=oracle,
        )
        label = "r=1 (no replication)" if factor == 1 else f"r={factor}"
        labelled.append((label, result, oracle))
    study = compute_replication_study(labelled)

    metrics: dict[str, float] = {
        "oracle_violations_total": float(
            sum(cell.oracle_violations for cell in study.cells)
        ),
        "server_crashes": float(study.cells[0].server_crashes),
        "server_downtime_seconds": study.cells[0].downtime_seconds,
    }
    for factor, cell in zip(REPLICATION_SWEEP, study.cells):
        metrics[f"stall_seconds_r{factor}"] = cell.stall_seconds
        metrics[f"lost_kbytes_r{factor}"] = cell.lost_kbytes
        metrics[f"failover_reads_r{factor}"] = float(cell.failover_reads)
        metrics[f"rereplicated_files_r{factor}"] = float(
            cell.rereplicated_files
        )
        metrics[f"failure_detections_r{factor}"] = float(
            cell.failure_detections
        )
    return ExperimentResult(
        experiment_id="replication",
        title="Table A: availability vs. replication factor",
        rendered=study.render(),
        metrics=metrics,
        paper_expectation=PAPER_EXPECTATIONS["replication"],
    )


#: (replication factor, scrub interval seconds) cells of the Table C
#: sweep: the exposed baseline, scrubbing without replicas, and two
#: fully repaired configurations.
INTEGRITY_SWEEP: tuple[tuple[int, float], ...] = (
    (1, 0.0),
    (1, 60.0),
    (2, 60.0),
    (3, 30.0),
)

#: Servers the integrity sweep shards across (matching Table A).
INTEGRITY_STUDY_SERVERS = 4

#: Disk-fault load for the Table C study: heavy enough that hundreds of
#: blocks rot, tear, and vanish per replay.  Server crashes are left
#: out deliberately -- a crash-induced outage makes a replica
#: *legitimately* stale, which is a different (Table A) story; here
#: every generation mismatch the scrubber finds is a real lost write,
#: so the r >= 2 zero-exposure pin is exact.
INTEGRITY_STUDY_KNOBS = FaultConfig(
    disk_corruption_rate=6.0,
    disk_torn_write_rate=2.0,
    disk_lost_write_rate=2.0,
)


def _integrity(ctx: ExperimentContext) -> ExperimentResult:
    """Table C: silent corruption vs. scrub interval and replication.

    One cluster trace is replayed under an identical seeded disk-fault
    timeline (bit rot, torn writes, lost writes) while the defences
    vary: no defence (r=1, no scrub), checksum scrubbing alone (r=1),
    and scrubbing plus replicas (r=2, r=3).  Paging is disabled as in
    Table A so the sweep measures exactly the durable-block traffic the
    integrity layer protects.  The oracle's end-state sweep rides along
    in collection mode; its silent-corruption count *is* the exposure
    row, so the repaired columns must read 0 -- and the undefended
    column must not, or the whole table is measuring a fault load too
    gentle to matter.
    """
    trace_index = ctx.cluster_trace_indexes[0]
    trace = ctx.traces()[trace_index]
    base = ctx.base_cluster_config()
    study_seed = ctx.seed + 32749

    labelled = []
    for factor, scrub in INTEGRITY_SWEEP:
        config = replace(
            base,
            num_servers=INTEGRITY_STUDY_SERVERS,
            replication_factor=factor,
            paging_intensity=0.0,
            scrub_interval=scrub,
            faults=INTEGRITY_STUDY_KNOBS,
        )
        oracle = ProtocolOracle(seed=study_seed, raise_on_violation=False)
        result = run_cluster_on_trace(
            trace.records,
            trace.duration,
            config,
            seed=study_seed,
            oracle=oracle,
        )
        scrub_label = "no scrub" if scrub == 0 else f"scrub {scrub:g}s"
        labelled.append((f"r={factor}, {scrub_label}", result, oracle))
    study = compute_integrity_study(labelled)

    metrics: dict[str, float] = {
        "disk_faults_injected": float(study.cells[0].disk_faults_injected),
    }
    for (factor, scrub), cell in zip(INTEGRITY_SWEEP, study.cells):
        tag = f"r{factor}_scrub{scrub:g}"
        metrics[f"detected_{tag}"] = float(cell.corruption_detected)
        metrics[f"repaired_{tag}"] = float(cell.blocks_repaired)
        metrics[f"declared_lost_{tag}"] = float(cell.blocks_declared_lost)
        metrics[f"exposed_{tag}"] = float(cell.corruption_exposed)
        metrics[f"oracle_violations_{tag}"] = float(cell.oracle_violations)
    return ExperimentResult(
        experiment_id="integrity",
        title="Table C: silent corruption vs. scrub interval and "
        "replication factor",
        rendered=study.render(),
        metrics=metrics,
        paper_expectation=PAPER_EXPECTATIONS["integrity"],
    )


#: Population blocks of the scale-out identity study (Table D).  Four
#: groups keeps the study fast at golden scale while still exercising
#: multi-group merge order, and divides evenly into the 1/2/4-shard
#: sweep below.
SCALE_OUT_GROUPS = 4
SCALE_OUT_SHARD_SWEEP: tuple[int, ...] = (1, 2, 4)

#: The grouped faulty/replicated identity leg of Table D: per-group
#: fault timelines, a 2-wide replica chain confined to each group's
#: server slice, and background scrubbing -- all of which must still
#: merge byte-identically from owned-only shards.
SCALE_OUT_FAULTY_GROUPS = 2
SCALE_OUT_FAULTY_SERVERS_PER_GROUP = 2
SCALE_OUT_FAULTY_SCRUB_INTERVAL = 3600.0
SCALE_OUT_FAULTS = FaultConfig(
    server_crash_rate=0.5,
    server_downtime=40.0,
    client_crash_rate=0.2,
    partition_rate=0.2,
    partition_duration=20.0,
    disk_corruption_rate=0.4,
    disk_torn_write_rate=0.2,
    disk_lost_write_rate=0.2,
)


def _scale_out(ctx: ExperimentContext) -> ExperimentResult:
    """Table D: partitioned replay pinned against the unpartitioned one.

    The same grouped population (four independently generated,
    id-strided groups) is replayed two ways: the whole merged trace
    through one cluster, and group shards through independent clusters
    merged by :func:`repro.fs.cluster.merge_cluster_results`.  Every
    client's counters, every server's row, the aggregate, and the
    snapshot series must be byte-identical (SHA-256 of exact values)
    at every shard count -- the property that makes replaying
    thousands of clients across a worker pool trustworthy.
    """
    from repro.pipeline.scaleout import (
        ScaleOutPlan,
        build_group_traces,
        run_partitioned_replay,
        run_unpartitioned_replay,
    )

    plan = ScaleOutPlan(
        profile=STANDARD_PROFILES[0],
        seed=ctx.seed,
        scale=ctx.scale,
        groups=SCALE_OUT_GROUPS,
        replay_seed=ctx.seed,
    )
    traces = build_group_traces(
        plan,
        workers=ctx.workers,
        cache=ctx._artifact_cache,
        report=ctx.pipeline_report,
    )
    reference = run_unpartitioned_replay(plan, traces)

    def digests(result: ClusterResult) -> tuple[str, str, str]:
        clients = sha256(
            "".join(
                result.final_counters[c].digest()
                for c in sorted(result.final_counters)
            ).encode("ascii")
        ).hexdigest()
        servers = sha256(
            "".join(
                row.digest() for row in result.per_server_counters
            ).encode("ascii")
        ).hexdigest()
        return clients, servers, result.server_counters.digest()

    ref_digests = digests(reference)
    lines = [
        "Table D.  Partitioned replay identity "
        f"(trace1, groups={plan.groups}, clients={plan.client_count}, "
        f"servers={plan.num_servers}, records={reference.records_replayed})",
        "",
        f"{'shards':>8} {'clients':>10} {'servers':>10} "
        f"{'aggregate':>10} {'records':>9}",
    ]
    metrics: dict[str, float] = {
        "groups": float(plan.groups),
        "clients": float(plan.client_count),
        "records_replayed": float(reference.records_replayed),
    }
    for shards in SCALE_OUT_SHARD_SWEEP:
        part = run_partitioned_replay(
            plan,
            traces,
            shards=shards,
            workers=ctx.workers,
            cache=ctx._artifact_cache,
            report=ctx.pipeline_report,
        )
        part_digests = digests(part)
        flags = [
            "identical" if a == b else "DIVERGED"
            for a, b in zip(part_digests, ref_digests)
        ]
        lines.append(
            f"{shards:>8} {flags[0]:>10} {flags[1]:>10} {flags[2]:>10} "
            f"{part.records_replayed:>9}"
        )
        metrics[f"identical_shards_{shards}"] = float(
            part_digests == ref_digests
            and part.records_replayed == reference.records_replayed
        )
    lines.append("")
    lines.append(f"aggregate digest: {ref_digests[2][:16]}")

    # The faulty/replicated leg: per-group fault timelines, a replica
    # chain confined to each group's server slice, and background
    # scrubbing must still merge byte-identically from owned-only
    # shards.
    faulty_plan = ScaleOutPlan(
        profile=STANDARD_PROFILES[0],
        seed=ctx.seed,
        scale=ctx.scale,
        groups=SCALE_OUT_FAULTY_GROUPS,
        servers_per_group=SCALE_OUT_FAULTY_SERVERS_PER_GROUP,
        replay_seed=ctx.seed,
        replication_factor=2,
        scrub_interval=SCALE_OUT_FAULTY_SCRUB_INTERVAL,
        faults=SCALE_OUT_FAULTS,
    )
    faulty_traces = build_group_traces(
        faulty_plan,
        workers=ctx.workers,
        cache=ctx._artifact_cache,
        report=ctx.pipeline_report,
    )
    faulty_reference = run_unpartitioned_replay(faulty_plan, faulty_traces)
    faulty_ref_digests = digests(faulty_reference)
    faulty_part = run_partitioned_replay(
        faulty_plan,
        faulty_traces,
        shards=SCALE_OUT_FAULTY_GROUPS,
        workers=ctx.workers,
        cache=ctx._artifact_cache,
        report=ctx.pipeline_report,
    )
    faulty_part_digests = digests(faulty_part)
    faulty_identical = (
        faulty_part_digests == faulty_ref_digests
        and faulty_part.records_replayed == faulty_reference.records_replayed
    )
    metrics["identical_faulty_shards_2"] = float(faulty_identical)
    lines.append("")
    lines.append(
        f"faulty leg (groups={faulty_plan.groups}, r=2, "
        f"scrub={SCALE_OUT_FAULTY_SCRUB_INTERVAL:g}s, "
        f"servers={faulty_plan.num_servers}): "
        + ("identical" if faulty_identical else "DIVERGED")
    )
    lines.append(f"faulty aggregate digest: {faulty_ref_digests[2][:16]}")
    return ExperimentResult(
        experiment_id="scale_out",
        title="Table D: partitioned replay vs unpartitioned reference",
        rendered="\n".join(lines),
        metrics=metrics,
        paper_expectation=PAPER_EXPECTATIONS["scale_out"],
    )


_REGISTRY: dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "figure1": _figure1,
    "figure2": _figure2,
    "figure3": _figure3,
    "figure4": _figure4,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "table8": _table8,
    "table9": _table9,
    "table10": _table10,
    "table11": _table11,
    "table12": _table12,
    "faults": _faults,
    "rpc_loss": _rpc_loss,
    "replication": _replication,
    "integrity": _integrity,
    "scale_out": _scale_out,
}

EXPERIMENT_IDS: tuple[str, ...] = tuple(_REGISTRY)


def run_experiment(
    experiment_id: str, context: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment, building inputs as needed."""
    runner = _REGISTRY.get(experiment_id)
    if runner is None:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"valid ids: {', '.join(EXPERIMENT_IDS)}"
        )
    return runner(context or ExperimentContext())


# --------------------------------------------------------------------------
# observed replays (repro.obs)
# --------------------------------------------------------------------------


@dataclass
class ObservedReplay:
    """One cluster replay run with the observability layer attached."""

    trace_name: str
    result: ClusterResult
    observation: "object"  # repro.obs.Observation (kept untyped: lazy import)


def run_observed_replay(
    context: ExperimentContext | None = None,
    sample_interval: float = 60.0,
    trace_index: int | None = None,
    max_trace_events: int = 1_000_000,
) -> ObservedReplay:
    """Replay one cluster trace with ``repro.obs`` attached.

    This is the observed twin of the Table 4-9 replays: same trace,
    config, and seed as ``context.cluster_results()`` uses for the
    chosen trace, so the final counters match those replays exactly --
    plus a counter timeseries, an event trace, and latency histograms.
    It bypasses the artifact cache (the observation is the point; the
    cached result would not carry one).
    """
    context = context or ExperimentContext()
    index = context.cluster_trace_indexes[0] if trace_index is None else trace_index
    trace = context.traces()[index]
    config = context.base_cluster_config()
    # Match the replay-seed scheme of ``build_cluster_results``
    # (``seed + 101 * offset``) so the observed run's final counters are
    # byte-for-byte those of the corresponding table replay.
    try:
        offset = context.cluster_trace_indexes.index(index)
    except ValueError:
        offset = 0
    from repro.obs import Observation, ObsConfig

    observation = Observation(ObsConfig(
        sample_interval=sample_interval, max_trace_events=max_trace_events,
    ))
    result = run_cluster_on_trace(
        trace.records, trace.duration, config,
        seed=context.seed + 101 * offset,
        obs=observation,
    )
    return ObservedReplay(
        trace_name=trace.profile.name,
        result=result,
        observation=observation,
    )
