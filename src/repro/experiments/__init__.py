"""One runnable reproduction per table and figure.

The registry maps experiment ids (``table1`` ... ``table12``,
``figure1`` ... ``figure4``) to functions that generate (or accept)
synthetic traces, run the relevant analyses or simulations, and return
an :class:`ExperimentResult` carrying rendered text, a metrics dict,
and the paper's expected values for side-by-side comparison.
"""

from repro.experiments.registry import (
    EXPERIMENT_IDS,
    ExperimentContext,
    ExperimentResult,
    ObservedReplay,
    run_experiment,
    run_observed_replay,
)
from repro.experiments.expectations import PAPER_EXPECTATIONS

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentContext",
    "ExperimentResult",
    "ObservedReplay",
    "run_experiment",
    "run_observed_replay",
    "PAPER_EXPECTATIONS",
]
