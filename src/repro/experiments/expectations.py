"""The paper's reported values, one summary per experiment.

These are the comparison targets recorded in EXPERIMENTS.md; the tests
assert the *shape* claims (who wins, rough factors, crossover bands),
not exact equality -- our substrate is a simulator, not the 1991
Berkeley cluster.
"""

PAPER_EXPECTATIONS: dict[str, str] = {
    "table1": (
        "Eight 24-hour traces; 33-50 users each, 6-15 using migration; "
        "0.8-17.8 Gbytes read and 0.5-5.5 Gbytes written per trace; "
        "traces 3-4 dominated by two users' 20-Mbyte simulation inputs."
    ),
    "table2": (
        "8.0 KB/s per active user over 10-minute intervals (20x the BSD "
        "study's 0.4), 47 KB/s over 10-second intervals; users with "
        "migrated processes ~6-7x higher (50.7 / 316 KB/s); peak user "
        "burst 9.87 MB/s."
    ),
    "table3": (
        "88% of accesses read-only, 11% write-only, ~1% read/write. "
        "78% of read-only accesses are whole-file sequential (89% of "
        "their bytes); >90% of all bytes move sequentially."
    ),
    "figure1": (
        "~80% of sequential runs under 10 KB, yet >=10% of all bytes "
        "move in runs longer than 1 MB (runs up to tens of MB in the "
        "simulation traces)."
    ),
    "figure2": (
        "Most accesses are to small files (~80% under 10 KB) but most "
        "bytes come from big ones (~40%+ of bytes from files >= 1 MB); "
        "large files are 10x larger than in 1985."
    ),
    "figure3": (
        "~75% of opens last under 0.25 s (BSD study: under 0.5 s); "
        "machines are 10x faster but network opens cost 4-5x local."
    ),
    "figure4": (
        "65-80% of deleted files live under 30 s, but those files are "
        "small: only 4-27% of deleted bytes die within 30 s."
    ),
    "table4": (
        "Client caches average ~7 MB of 24 MB (vs the 10% of RAM in "
        "contemporary UNIX); sizes change by hundreds of KB over "
        "minutes (15-min change avg 493 KB, max ~22 MB)."
    ),
    "table5": (
        "~20% of raw traffic is uncacheable, mostly paging; paging is "
        "~35% of all bytes; write-shared traffic under 1%."
    ),
    "table6": (
        "Read miss ratio 41.4% (paper predicted 10% in 1985 -- large "
        "files hurt); migrated processes do *better* (22.2%); writeback "
        "traffic 88.4% (only ~10% of new bytes absorbed); write fetches "
        "rare (1.2%); paging read misses 28.7%."
    ),
    "table7": (
        "Client caches filter ~50% of raw traffic; paging is ~35% of "
        "server bytes; non-paging reads:writes ~2:1; write-shared ~1%."
    ),
    "table8": (
        "~79% of replacements make room for another file block, ~21% "
        "hand the page to virtual memory; replaced blocks sat "
        "unreferenced for the better part of an hour."
    ),
    "table9": (
        "~3/4 of dirty-block cleanings from the 30-second delay; of the "
        "rest, about half fsync and half server recalls; blocks given "
        "to VM almost never dirty."
    ),
    "table10": (
        "Concurrent write-sharing on 0.34% of opens (0.18-0.56); server "
        "recalls on at most 1.7% (0.79-3.35)."
    ),
    "table11": (
        "60-s polling: 18 stale-data errors/hour, ~half the users hit "
        "per day; 3-s polling: 0.59 errors/hour, ~7% of users -- still "
        "large next to undetected network/disk error rates."
    ),
    "table12": (
        "All three schemes have comparable overhead; only the token "
        "scheme improves on Sprite, by ~2% of bytes and ~20% of RPCs, "
        "and it is the most sensitive to the application mix."
    ),
    "faults": (
        "Not measured by the paper -- Section 5.2 only notes that a "
        "30-second delay 'means that data may be lost in a server or "
        "workstation crash'.  Expected shape: dirty bytes lost per "
        "crash grow with the writeback age and vanish at age 0 "
        "(write-through), which in exchange pays the full write "
        "traffic that Table 6 shows delayed writes avoiding."
    ),
    "rpc_loss": (
        "Not measured by the paper -- the Sprite RPC layer hid the "
        "network, and the consistency study assumed every invalidation "
        "arrived.  Expected shape: scheme-level stale reads grow with "
        "the message-loss rate (the token scheme, whose invalidations "
        "ride on every token grant, is exposed most often), while the "
        "full cluster over at-most-once RPC converts the same loss "
        "into retransmissions and stall time with zero protocol-"
        "invariant violations at every rate."
    ),
    "replication": (
        "Not measured by the paper -- Sprite kept exactly one copy of "
        "every file, and Section 8 simply reports the resulting "
        "outages (server crashes blacked out their files for tens of "
        "minutes).  Expected shape: process stall time drops sharply "
        "from one copy to two (isolated crashes turn into failover "
        "reads) and again from two to three (only overlapping double "
        "outages still stall); re-replication restores redundancy "
        "within a few heartbeats of each crash; dirty bytes lost to "
        "client crashes shrink as well -- not because replicas guard "
        "client caches, but because writebacks keep draining to live "
        "replicas instead of piling up behind a crashed server until a "
        "client dies holding them; and the protocol oracle reports zero "
        "violations in every column -- availability must never come "
        "at the price of correctness."
    ),
    "integrity": (
        "Not measured by the paper -- its data-loss story (Section "
        "5.2) is about crash loss bounded by the 30-second writeback "
        "delay, with disks assumed to return what they stored.  "
        "Expected shape: with no defence (one copy, no scrubbing) "
        "every injected bit-rot, torn write, and lost write that "
        "survives to end of replay is exposed as silent corruption; "
        "scrubbing alone detects everything -- checksums catch the "
        "rot and torn writes, the generation ledger catches the lost "
        "writes that verify cleanly -- but with one copy each "
        "detection is only a declared loss (data gone, but "
        "accountably gone); with replicas the same detections become "
        "repairs from the freshest live copy, and exposed corruption "
        "-- and the oracle's violation count -- drops to exactly "
        "zero."
    ),
    "scale_out": (
        "Not measured by the paper -- its cluster topped out at a few "
        "dozen active clients, counted by one kernel per machine.  "
        "Expected shape: a population built as independent id-strided "
        "groups replays to exactly the same counters whether the whole "
        "merged trace runs through one simulated cluster or each "
        "group's records run through their own shard and the machine "
        "states are merged -- every client digest, every per-server "
        "row, and the aggregate identical at every shard count.  Any "
        "divergence means groups can observe each other and the "
        "scaled-up replays (hundreds to thousands of clients) cannot "
        "be trusted."
    ),
}
