"""Command-line entry point: ``repro-experiment <id> [--scale S]``.

Runs one experiment (or ``all``) and prints the rendered table or
figure next to the paper's expectation.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import (
    EXPERIMENT_IDS,
    ExperimentContext,
    run_experiment,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Reproduce a table or figure from Baker et al., "
            "'Measurements of a Distributed File System' (SOSP 1991)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=list(EXPERIMENT_IDS) + ["all"],
        help="which table/figure to reproduce (or 'all')",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="population scale factor (1.0 = the paper's cluster; "
        "default 0.1 for quick runs)",
    )
    parser.add_argument(
        "--seed", type=int, default=1991, help="random seed (default 1991)"
    )
    parser.add_argument(
        "--num-servers",
        type=int,
        default=1,
        metavar="N",
        help="shard the simulated cluster across N file servers (the "
        "paper's cluster had 4); with N > 1, Tables 1/2/7 gain a "
        "per-server breakdown (default 1)",
    )
    parser.add_argument(
        "--replication-factor",
        type=int,
        default=1,
        metavar="R",
        help="keep R copies of every file on distinct servers and serve "
        "reads from any live replica (requires --num-servers >= R; "
        "default 1, no replication)",
    )
    parser.add_argument(
        "--disk-corruption-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="inject seeded silent disk corruption (bit rot) at RATE "
        "events per server-hour into every cluster replay (default 0, "
        "no disk faults)",
    )
    parser.add_argument(
        "--scrub-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="checksum-scrub each server's durable blocks in the "
        "background every SECONDS of simulated time, repairing from "
        "replicas where possible (default 0, scrubbing off)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for trace generation and cluster replay "
        "(0 = one per CPU core; default 1, serial)",
    )
    parser.add_argument(
        "--scale-out",
        type=int,
        default=0,
        metavar="GROUPS",
        help="instead of an experiment table, run a partitioned scale-out "
        "replay (repro.pipeline.scaleout): GROUPS independent client "
        "groups generated at --scale, replayed shard-by-shard across "
        "--workers processes and merged byte-identically; prints merged "
        "totals and the aggregate digest (the experiment positional is "
        "ignored)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="replay shards for --scale-out (default: one per group); "
        "any N in [1, GROUPS] merges to the identical result",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="rebuild everything; do not read or write the artifact cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="artifact cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="write a full reproduction report (all experiments plus the "
        "then-vs-now and latency analyses) to FILE instead of printing",
    )
    parser.add_argument(
        "--figures-dir",
        metavar="DIR",
        help="also export figure1..figure4 CDF data as CSV into DIR",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="replay one cluster trace with the observability layer "
        "(repro.obs) attached: counter timeseries, Chrome-trace events, "
        "latency histograms; writes BENCH_obs.json and prints a summary",
    )
    parser.add_argument(
        "--obs-sample-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated seconds between counter samples (default 60; "
        "requires --obs)",
    )
    parser.add_argument(
        "--obs-trace-out",
        metavar="FILE",
        help="write the Chrome trace-event JSON to FILE (open it at "
        "ui.perfetto.dev; requires --obs)",
    )
    return parser


def _run_scale_out(args, context: ExperimentContext) -> int:
    """The ``--scale-out`` mode: partitioned generate + replay + merge."""
    from repro.pipeline.scaleout import (
        ScaleOutPlan,
        build_group_traces,
        run_partitioned_replay,
    )
    from repro.workload.profiles import STANDARD_PROFILES

    plan = ScaleOutPlan(
        profile=STANDARD_PROFILES[0],
        seed=args.seed,
        scale=args.scale,
        groups=args.scale_out,
        replay_seed=args.seed,
    )
    shards = args.shards or plan.groups
    report = context.pipeline_report
    traces = build_group_traces(
        plan,
        workers=args.workers,
        cache=context._artifact_cache,
        report=report,
    )
    records = sum(trace.record_count for trace in traces)
    print(
        f"scale-out plan: scale={plan.scale:g} groups={plan.groups} "
        f"shards={shards} clients={plan.client_count} "
        f"servers={plan.num_servers} records={records}"
    )
    result = run_partitioned_replay(
        plan,
        traces,
        shards=shards,
        workers=args.workers,
        cache=context._artifact_cache,
        report=report,
    )
    print(
        f"replayed {result.records_replayed} records; "
        f"aggregate digest {result.server_counters.digest()[:16]}"
    )
    for stage in report.stages:
        print(
            f"  {stage.stage}: {stage.seconds:.1f}s "
            f"(tasks={stage.tasks}, workers={stage.workers}, "
            f"effective={stage.workers_effective}, "
            f"hits={stage.cache_hits}, misses={stage.cache_misses})"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.num_servers < 1:
        parser.error(f"--num-servers must be >= 1, got {args.num_servers}")
    if args.replication_factor < 1:
        parser.error(
            f"--replication-factor must be >= 1, got {args.replication_factor}"
        )
    if args.replication_factor > args.num_servers:
        parser.error(
            f"--replication-factor {args.replication_factor} needs at least "
            f"that many servers (--num-servers {args.num_servers})"
        )
    if args.disk_corruption_rate < 0:
        parser.error(
            f"--disk-corruption-rate must be >= 0, "
            f"got {args.disk_corruption_rate}"
        )
    if args.scrub_interval < 0:
        parser.error(
            f"--scrub-interval must be >= 0, got {args.scrub_interval}"
        )
    if args.scale_out < 0:
        parser.error(f"--scale-out must be >= 1 groups, got {args.scale_out}")
    if args.shards:
        if not args.scale_out:
            parser.error("--shards requires --scale-out")
        if not 1 <= args.shards <= args.scale_out:
            parser.error(
                f"--shards must be in [1, --scale-out={args.scale_out}], "
                f"got {args.shards}"
            )
    if not args.obs:
        if args.obs_sample_interval is not None:
            parser.error("--obs-sample-interval requires --obs")
        if args.obs_trace_out:
            parser.error("--obs-trace-out requires --obs")
    if args.obs_sample_interval is not None and args.obs_sample_interval <= 0:
        parser.error(
            f"--obs-sample-interval must be > 0, got {args.obs_sample_interval}"
        )
    if args.no_cache:
        cache: bool | str = False
    else:
        cache = args.cache_dir if args.cache_dir else True
    context = ExperimentContext(
        scale=args.scale,
        seed=args.seed,
        num_servers=args.num_servers,
        replication_factor=args.replication_factor,
        disk_corruption_rate=args.disk_corruption_rate,
        scrub_interval=args.scrub_interval,
        workers=args.workers,
        cache=cache,
    )
    if args.scale_out:
        return _run_scale_out(args, context)
    if args.figures_dir:
        from repro.experiments.report import export_figure_data

        for path in export_figure_data(args.figures_dir, context):
            print(f"wrote {path}")
    observation = None
    if args.obs:
        import os

        from repro.experiments.registry import run_observed_replay

        interval = (
            60.0 if args.obs_sample_interval is None
            else args.obs_sample_interval
        )
        observed = run_observed_replay(context, sample_interval=interval)
        observation = observed.observation
        if args.obs_trace_out:
            observation.write_trace(args.obs_trace_out)
            print(f"wrote trace to {args.obs_trace_out}")
            bench_path = os.path.join(
                os.path.dirname(os.path.abspath(args.obs_trace_out)),
                "BENCH_obs.json",
            )
        else:
            bench_path = "BENCH_obs.json"
        observation.write_bench(bench_path)
        print(f"wrote {bench_path}")
        print(f"observed replay of trace {observed.trace_name!r}:")
        print(observation.render_summary())
        print()
    if args.report:
        from repro.experiments.report import write_report

        write_report(args.report, context, observation=observation)
        print(f"wrote report to {args.report}")
        return 0
    ids = EXPERIMENT_IDS if args.experiment == "all" else (args.experiment,)
    for experiment_id in ids:
        result = run_experiment(experiment_id, context)
        print(result.rendered)
        print()
        print(f"Paper expectation: {result.paper_expectation}")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
