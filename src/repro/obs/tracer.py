"""Structured event tracing with Chrome-trace-event export.

The paper's authors watched their cluster through counters sampled "at
regular intervals"; for debugging the reproduction itself we also want
the *events between* the samples -- each RPC send/retransmit/reply,
block fetch/writeback/evict, fault arm/fire/recover, and oracle check.
:class:`TraceRecorder` buffers those as plain tuples and exports them in
the Chrome trace-event JSON format, which loads directly into Perfetto
(https://ui.perfetto.dev) for a zoomable per-machine timeline.

Only the JSON-object form with a top-level ``traceEvents`` array is
emitted, and only four phases are used:

* ``i`` -- instant events (a retransmission, an oracle check);
* ``X`` -- complete events with a duration (an RPC round-trip, a stall,
  a fault's injected outage);
* ``C`` -- counter events (sampled gauges, drawn as area charts);
* ``M`` -- metadata naming the per-machine "processes".

Timestamps are simulated seconds converted to integer microseconds (the
unit the format requires).  Machines map to trace "pids": the server is
pid 0 and client ``k`` is pid ``k + 1``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

#: pid assigned to the server's timeline (server 0 in a sharded cluster).
SERVER_PID = 0


def client_pid(client_id: int) -> int:
    """The trace pid for a client machine (server holds pid 0)."""
    return client_id + 1


def server_pid(server_id: int) -> int:
    """The trace pid for a server shard.

    Shard 0 keeps the historical pid 0; extra shards take the negative
    pids, which clients (pids >= 1) can never collide with.
    """
    return -server_id


def _us(seconds: float) -> int:
    """Simulated seconds -> integer microseconds (trace-event unit)."""
    return round(seconds * 1_000_000)


@dataclass(slots=True)
class TraceEvent:
    """One trace-event row, already in Chrome trace-event field names."""

    name: str
    ph: str
    ts: int  # microseconds
    pid: int
    cat: str
    dur: int = 0  # microseconds; X events only
    args: dict[str, Any] = field(default_factory=dict)

    def as_json_obj(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": 0,
            "cat": self.cat,
        }
        if self.ph == "X":
            obj["dur"] = self.dur
        if self.ph == "i":
            obj["s"] = "t"  # instant scope: thread
        if self.args:
            obj["args"] = self.args
        return obj


class TraceRecorder:
    """Bounded buffer of trace events with Chrome-JSON export.

    The buffer is capped (``max_events``) so a long chaos replay cannot
    exhaust memory; once full, further events are *counted* in
    :attr:`dropped` but not stored -- the export reports the drop count
    rather than silently truncating.
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive: {max_events}")
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        #: pids that appeared, for process_name metadata on export.
        self._machines: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self.events)

    def name_machine(self, pid: int, name: str) -> None:
        self._machines[pid] = name

    def _push(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def instant(
        self, now: float, pid: int, cat: str, name: str,
        args: dict[str, Any] | None = None,
    ) -> None:
        """An instantaneous event (phase ``i``)."""
        self._push(TraceEvent(
            name=name, ph="i", ts=_us(now), pid=pid, cat=cat,
            args=args or {},
        ))

    def span(
        self, start: float, duration: float, pid: int, cat: str, name: str,
        args: dict[str, Any] | None = None,
    ) -> None:
        """A complete event with a duration (phase ``X``)."""
        self._push(TraceEvent(
            name=name, ph="X", ts=_us(start), pid=pid, cat=cat,
            dur=max(0, _us(duration)), args=args or {},
        ))

    def counter(
        self, now: float, pid: int, name: str, values: dict[str, float],
    ) -> None:
        """A counter sample (phase ``C``; Perfetto draws an area chart)."""
        self._push(TraceEvent(
            name=name, ph="C", ts=_us(now), pid=pid, cat="counter",
            args=dict(values),
        ))

    # --- export -----------------------------------------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object."""
        rows: list[dict[str, Any]] = [
            {
                "name": "process_name", "ph": "M", "ts": 0,
                "pid": pid, "tid": 0,
                "args": {"name": name},
            }
            for pid, name in sorted(self._machines.items())
        ]
        rows.extend(event.as_json_obj() for event in self.events)
        return {
            "traceEvents": rows,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs",
                "clock": "simulated seconds (exported as microseconds)",
                "events_recorded": len(self.events),
                "events_dropped": self.dropped,
            },
        }

    def write(self, path: str | os.PathLike[str]) -> None:
        """Write the trace as JSON; openable at https://ui.perfetto.dev."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, separators=(",", ":"))


_VALID_PHASES = frozenset("BEXiICPnbesfNODMVvRcaAt(){}")


def validate_chrome_trace(trace: dict[str, Any]) -> list[str]:
    """Check a trace object against the Chrome trace-event JSON schema.

    Returns a list of problems (empty = valid).  Checks the JSON-object
    format: a ``traceEvents`` array whose rows carry the required
    ``name``/``ph``/``ts``/``pid``/``tid`` fields with the right types,
    ``dur`` on complete events, and known phase codes.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' must be a list"]
    for i, row in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = row.get("ph")
        if not isinstance(ph, str) or ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
        if not isinstance(row.get("name"), str):
            problems.append(f"{where}: 'name' must be a string")
        if not isinstance(row.get("ts", 0), (int, float)):
            problems.append(f"{where}: 'ts' must be numeric")
        elif ph != "M" and "ts" not in row:
            problems.append(f"{where}: missing 'ts'")
        for key in ("pid", "tid"):
            if not isinstance(row.get(key), int):
                problems.append(f"{where}: '{key}' must be an integer")
        if ph == "X" and not isinstance(row.get("dur"), (int, float)):
            problems.append(f"{where}: complete event missing numeric 'dur'")
        if ph == "C" and not isinstance(row.get("args"), dict):
            problems.append(f"{where}: counter event missing 'args'")
    return problems
