"""The observation hub: one object wiring sampler, tracer, histograms.

An :class:`Observation` is attached to a cluster before replay; every
instrumented component (engine, clients, server, RPC transports, fault
injector, oracle) then mirrors its activity into the three sinks:

* the :class:`~repro.obs.sampler.CounterSampler` timeseries,
* the :class:`~repro.obs.tracer.TraceRecorder` event trace,
* the :class:`~repro.obs.histograms.LatencyHistograms`.

**Inert-by-default contract.**  Every hook in the instrumented modules
is guarded by ``if obs is not None`` (or an equivalent attribute check)
and the obs layer itself never draws randomness and never writes any
simulation counter.  With obs off nothing changes; with obs on the
replay's final counters are identical to an unobserved run -- the layer
reads, it never steers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.fs.faults import FaultKind
from repro.obs.histograms import LatencyHistograms
from repro.obs.sampler import CounterSampler, CounterTimeseries
from repro.obs.tracer import SERVER_PID, TraceRecorder, client_pid, server_pid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.cluster import Cluster
    from repro.fs.faults import FaultEvent


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs (the CLI's ``--obs*`` flags)."""

    #: Simulated seconds between counter samples (the paper's
    #: "regular intervals"; its sampler ran on the order of minutes).
    sample_interval: float = 60.0
    #: Trace-event buffer cap; past it, events are counted as dropped.
    max_trace_events: int = 1_000_000


class Observation:
    """All observability state for one replay."""

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config or ObsConfig()
        self.tracer = TraceRecorder(self.config.max_trace_events)
        self.latencies = LatencyHistograms()
        self.sampler = CounterSampler(
            self.config.sample_interval, on_sample=self._trace_sample
        )
        self.engine_events_fired = 0
        self.oracle_checks: dict[str, int] = {}
        self.oracle_violations = 0
        self._attached = False
        self._finalized_at: float | None = None
        self._engine = None  # set at attach; clock for unstamped hooks

    @property
    def timeseries(self) -> CounterTimeseries:
        return self.sampler.timeseries

    # --- wiring -----------------------------------------------------------

    def attach(self, cluster: "Cluster") -> None:
        """Hook every instrumented component of ``cluster``."""
        if self._attached:
            raise RuntimeError("observation already attached to a cluster")
        self._attached = True
        self._engine = cluster.engine
        cluster.engine.attach_observer(self)
        servers = list(getattr(cluster, "servers", None) or [cluster.server])
        # Name servers by the *cluster's* server count, not by how many
        # this instance holds: an owned-only shard with one server of a
        # multi-server cluster must still sample "server-<id>", so its
        # series merge against the unpartitioned reference by name.
        config = getattr(cluster, "config", None)
        total_servers = getattr(config, "num_servers", len(servers))
        if total_servers == 1:
            self.tracer.name_machine(SERVER_PID, "server")
            server_names = ["server"]
        else:
            server_names = []
            for server in servers:
                name = f"server-{server.server_id}"
                self.tracer.name_machine(server_pid(server.server_id), name)
                server_names.append(name)
        for server in servers:
            server.obs = self
        for client in cluster.clients:
            self.tracer.name_machine(
                client_pid(client.client_id), f"client-{client.client_id}"
            )
            client.obs = self
            # getattr's default would evaluate client.transport eagerly,
            # which indexes transports[0] -- not owned by every shard.
            transports = getattr(client, "transports", None)
            if transports is None:
                transports = [client.transport]
            for transport in transports:
                transport.obs = self
        if cluster.oracle is not None:
            cluster.oracle.obs = self
        replication = getattr(cluster, "replication", None)
        if replication is not None:
            replication.obs = self
        integrity = getattr(cluster, "integrity", None)
        if integrity is not None:
            integrity.obs = self
        shared_ticker = getattr(cluster, "shared_ticker", None)
        self.sampler.attach(
            cluster.engine, cluster.clients, servers,
            ticker=(
                shared_ticker(self.config.sample_interval)
                if shared_ticker is not None else None
            ),
            server_names=server_names,
        )

    def finalize(self, now: float) -> None:
        """Close the run: take the final counter sample."""
        self.sampler.finalize(now)
        self._finalized_at = now

    # --- engine -------------------------------------------------------------

    def on_engine_event(self, time: float) -> None:
        self.engine_events_fired += 1

    def _trace_sample(self, now: float) -> None:
        """Mirror key gauges of each sample into counter trace events."""
        for series in self.timeseries.client_series():
            client_id = int(series.machine.split("-", 1)[1])
            row = series.rows[-1]
            self.tracer.counter(
                now, client_pid(client_id), "cache", {
                    "cache_bytes": row[series.fields.index("cache_size_bytes")],
                    "dirty_blocks": row[
                        series.fields.index("dirty_blocks_resident")
                    ],
                },
            )
        for series in self.timeseries.server_series():
            if series.machine == "server":
                pid = SERVER_PID
            else:
                pid = server_pid(int(series.machine.split("-", 1)[1]))
            self.tracer.counter(
                now, pid, "rpc", {
                    "rpc_count": series.rows[-1][
                        series.fields.index("rpc_count")
                    ],
                },
            )

    # --- RPC ----------------------------------------------------------------

    def on_rpc_call(
        self, now: float, client_id: int, op: str,
        round_trip: float, retransmits: int,
    ) -> None:
        self.latencies.add("rpc_round_trip_seconds", round_trip)
        self.tracer.span(
            now, round_trip, client_pid(client_id), "rpc", f"rpc:{op}",
            args={"retransmits": retransmits} if retransmits else None,
        )

    def on_rpc_retransmit(
        self, now: float, client_id: int, op: str, attempt: int
    ) -> None:
        self.tracer.instant(
            now, client_pid(client_id), "rpc", f"retransmit:{op}",
            args={"attempt": attempt},
        )

    def on_rpc_reply_lost(self, now: float, client_id: int, op: str) -> None:
        self.tracer.instant(
            now, client_pid(client_id), "rpc", f"reply_lost:{op}"
        )

    # --- cache --------------------------------------------------------------

    def on_block_fetch(
        self, now: float, client_id: int, file_id: int, index: int,
        nbytes: int,
    ) -> None:
        self.tracer.instant(
            now, client_pid(client_id), "cache", "block_fetch",
            args={"file": file_id, "block": index, "bytes": nbytes},
        )

    def on_writeback(
        self, now: float, client_id: int, reason: str, age: float,
        nbytes: int,
    ) -> None:
        self.latencies.add("writeback_age_seconds", age)
        self.tracer.instant(
            now, client_pid(client_id), "cache", f"writeback:{reason}",
            args={"age_s": round(age, 6), "bytes": nbytes},
        )

    def on_evict(
        self, now: float, client_id: int, reason: str, age: float
    ) -> None:
        self.tracer.instant(
            now, client_pid(client_id), "cache", f"evict:{reason}",
            args={"age_s": round(age, 6)},
        )

    # --- consistency ----------------------------------------------------------

    def on_recall(
        self, now: float, writer_id: int, file_id: int, opener_id: int
    ) -> None:
        self.tracer.instant(
            now, SERVER_PID, "consistency", "recall",
            args={"writer": writer_id, "file": file_id, "opener": opener_id},
        )

    def on_cacheability_change(self, file_id: int, cacheable: bool) -> None:
        # The server's cacheability switch carries no timestamp; read
        # the engine clock (the hub never runs detached from one).
        now = self._engine.now if self._engine is not None else 0.0
        self.tracer.instant(
            now, SERVER_PID, "consistency",
            "cache_enable" if cacheable else "cache_disable",
            args={"file": file_id},
        )

    # --- faults ---------------------------------------------------------------

    def on_stall(
        self, now: float, client_id: int, seconds: float, why: str
    ) -> None:
        self.latencies.add("recovery_stall_seconds", seconds)
        self.tracer.span(
            now, seconds, client_pid(client_id), "fault", f"stall:{why}"
        )

    def _fault_pid(self, event: "FaultEvent") -> int:
        # Keyed on the kind, not the sign of the target: a server crash
        # in a sharded cluster legitimately targets a server id >= 0,
        # which must not be mistaken for a client.
        if event.kind is FaultKind.SERVER_CRASH:
            return server_pid(0 if event.target < 0 else event.target)
        return client_pid(event.target)

    def on_fault_armed(self, event: "FaultEvent") -> None:
        self.tracer.instant(
            event.time, self._fault_pid(event), "fault",
            f"armed:{event.kind.value}",
            args={"duration_s": event.duration},
        )

    def on_fault_fired(self, now: float, event: "FaultEvent") -> None:
        self.tracer.span(
            now, event.duration, self._fault_pid(event), "fault",
            f"outage:{event.kind.value}",
        )

    def on_fault_recovered(self, now: float, kind: str, target: int) -> None:
        if kind == "server_crash":
            # The cluster encodes the recovered shard as -1 - server_id
            # (so a classic single-server cluster still reports -1).
            pid = server_pid(-1 - target if target < 0 else target)
        else:
            pid = client_pid(target)
        self.tracer.instant(now, pid, "fault", f"recovered:{kind}")

    # --- replication -------------------------------------------------------------

    def on_failure_detected(
        self, now: float, server_id: int, missed_beats: int
    ) -> None:
        self.tracer.instant(
            now, server_pid(server_id), "replication", "declared-dead",
            args={"missed_beats": missed_beats},
        )

    def on_rereplication(
        self, now: float, dead_id: int, target_id: int,
        file_id: int, blocks: int,
    ) -> None:
        self.tracer.instant(
            now, server_pid(target_id), "replication", "rereplicated",
            args={"from_dead": dead_id, "file": file_id, "blocks": blocks},
        )

    # --- integrity --------------------------------------------------------------

    def on_disk_fault(self, now: float, server_id: int, kind: str) -> None:
        self.tracer.instant(
            now, server_pid(server_id), "integrity", f"disk-fault:{kind}"
        )

    def on_checksum_failure(
        self, now: float, server_id: int, file_id: int, index: int, where: str
    ) -> None:
        self.tracer.instant(
            now, server_pid(server_id), "integrity", "checksum-failure",
            args={"file": file_id, "block": index, "where": where},
        )

    def on_integrity_repair(
        self, now: float, server_id: int, file_id: int,
        index: int, source_id: int,
    ) -> None:
        self.tracer.instant(
            now, server_pid(server_id), "integrity", "repaired",
            args={"file": file_id, "block": index, "from": source_id},
        )

    def on_block_declared_lost(
        self, now: float, server_id: int, file_id: int, index: int
    ) -> None:
        self.tracer.instant(
            now, server_pid(server_id), "integrity", "declared-lost",
            args={"file": file_id, "block": index},
        )

    def on_scrub(
        self, now: float, server_id: int, checked: int, detected: int
    ) -> None:
        self.tracer.instant(
            now, server_pid(server_id), "integrity", "scrub",
            args={"checked": checked, "detected": detected},
        )

    # --- oracle -----------------------------------------------------------------

    def on_oracle_check(
        self, now: float, kind: str, client_id: int, what: str
    ) -> None:
        self.oracle_checks[kind] = self.oracle_checks.get(kind, 0) + 1
        self.tracer.instant(
            now, client_pid(client_id), "oracle", f"check:{kind}",
            args={"what": what},
        )

    def on_oracle_violation(
        self, now: float, invariant: str, details: str
    ) -> None:
        self.oracle_violations += 1
        self.tracer.instant(
            now, SERVER_PID, "oracle", f"violation:{invariant}",
            args={"details": details},
        )

    # --- outputs ------------------------------------------------------------

    def bench_payload(self) -> dict[str, Any]:
        """The ``BENCH_obs.json`` artifact body."""
        server_list = self.timeseries.server_series()
        server = server_list[0] if server_list else None
        return {
            "schema": "repro-obs-bench-v1",
            "sample_interval": self.config.sample_interval,
            "samples_per_machine": len(server.times) if server else 0,
            "machines": sorted(self.timeseries.machines),
            "finalized_at": self._finalized_at,
            "engine_events_fired": self.engine_events_fired,
            "trace_events_recorded": len(self.tracer),
            "trace_events_dropped": self.tracer.dropped,
            "oracle_checks": dict(sorted(self.oracle_checks.items())),
            "oracle_violations": self.oracle_violations,
            "latency_histograms": self.latencies.as_dict(),
        }

    def write_bench(self, path: str | os.PathLike[str]) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(self.bench_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def write_trace(self, path: str | os.PathLike[str]) -> None:
        self.tracer.write(path)

    def render_summary(self) -> str:
        """A text block for the experiment report / CLI output."""
        machines = len(self.timeseries.machines)
        server_list = self.timeseries.server_series()
        samples = len(server_list[0].times) if server_list else 0
        lines = [
            "Observability (repro.obs)",
            f"  counter timeseries : {machines} machines x {samples} samples "
            f"(every {self.config.sample_interval:g}s simulated)",
            f"  trace events       : {len(self.tracer)} recorded, "
            f"{self.tracer.dropped} dropped (cap "
            f"{self.tracer.max_events})",
            f"  engine events fired: {self.engine_events_fired}",
        ]
        if self.oracle_checks:
            checks = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.oracle_checks.items())
            )
            lines.append(
                f"  oracle             : {checks}; "
                f"violations={self.oracle_violations}"
            )
        lines.append(self.latencies.render())
        return "\n".join(lines)
