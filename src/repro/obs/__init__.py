"""Observability for the reproduction: counter timeseries, event
tracing, and latency histograms.

The layer is opt-in and inert by default -- see
:mod:`repro.obs.observer` for the contract.
"""

from repro.obs.histograms import LatencyHistograms
from repro.obs.observer import Observation, ObsConfig
from repro.obs.sampler import (
    CounterSampler,
    CounterTimeseries,
    MachineSeries,
    verify_integration,
)
from repro.obs.tracer import TraceRecorder, validate_chrome_trace

__all__ = [
    "CounterSampler",
    "CounterTimeseries",
    "LatencyHistograms",
    "MachineSeries",
    "ObsConfig",
    "Observation",
    "TraceRecorder",
    "validate_chrome_trace",
    "verify_integration",
]
