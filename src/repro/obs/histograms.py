"""Latency histograms for the observability layer.

Three latency populations matter to the reproduction's "beyond the
paper" studies and get a histogram each (reusing
:class:`repro.common.stats.Histogram` over geometric bucket edges, the
same shape as the paper's log-scale figures):

* **RPC round-trips** -- wall-clock from a transport ``call`` to its
  reply, as seen by the calling client (zero on the inert fast path, so
  only lossy runs populate it);
* **write-back ages** -- how old dirty data was when it reached the
  server (the paper's 30-second-delay policy bounds this near 35 s for
  the delay daemon; fsyncs and recalls land younger);
* **recovery stalls** -- process-seconds a client spent waiting out a
  server outage or retransmission backoff.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.stats import Histogram, RunningStat, geometric_edges


class LatencyHistograms:
    """The three latency histograms plus summary stats for each."""

    #: name -> (edge_start, edge_stop, per_decade)
    SPECS: dict[str, tuple[float, float, int]] = {
        # 1 ms to 60 s: channel delays are ~tens of ms, backoff caps at
        # seconds, the eventually-reliable floor bounds the tail.
        "rpc_round_trip_seconds": (1e-3, 60.0, 4),
        # 1 s to 2 h: the 30-s daemon dominates; recovery replays of
        # blocks dirtied before a long outage form the tail.
        "writeback_age_seconds": (1.0, 7200.0, 4),
        # 10 ms to ~3 h: a single backoff wait up to whole outages.
        "recovery_stall_seconds": (1e-2, 10_000.0, 4),
    }

    def __init__(self) -> None:
        self.histograms: dict[str, Histogram] = {
            name: Histogram(edges=geometric_edges(start, stop, per_decade))
            for name, (start, stop, per_decade) in self.SPECS.items()
        }
        self.stats: dict[str, RunningStat] = {
            name: RunningStat() for name in self.SPECS
        }

    def add(self, name: str, value: float) -> None:
        """Record one latency sample (negative values are clamped: they
        can only come from float error in a time subtraction)."""
        value = max(0.0, value)
        self.histograms[name].add(value)
        self.stats[name].add(value)

    def items(self) -> Iterator[tuple[str, Histogram]]:
        return iter(self.histograms.items())

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form for the ``BENCH_obs.json`` artifact."""
        out: dict[str, Any] = {}
        for name, histogram in self.histograms.items():
            stat = self.stats[name]
            out[name] = {
                "count": stat.count,
                "mean": stat.mean,
                "stddev": stat.stddev,
                "min": stat.minimum if stat.count else None,
                "max": stat.maximum if stat.count else None,
                "edges": list(histogram.edges),
                "counts": list(histogram.counts),
            }
        return out

    def render(self) -> str:
        """A compact text block for the experiment report."""
        lines = ["Latency histograms (repro.obs)"]
        for name, histogram in self.histograms.items():
            stat = self.stats[name]
            if stat.count == 0:
                lines.append(f"  {name}: no samples")
                continue
            lines.append(
                f"  {name}: n={stat.count} mean={stat.mean:.4g}s "
                f"sd={stat.stddev:.4g}s min={stat.minimum:.4g}s "
                f"max={stat.maximum:.4g}s"
            )
            # The occupied buckets only; a full geometric grid is noise.
            for edge, mass in histogram.buckets():
                if mass:
                    lines.append(f"    <= {edge:10.4g}s  {int(mass)}")
        return "\n".join(lines)
