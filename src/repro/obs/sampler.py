"""Periodic counter sampling into per-machine timeseries.

Section 3 of the paper: "a user-level process read the counters at
regular intervals."  :class:`CounterSampler` is that process for the
reproduction: an engine timer snapshots every client's
:class:`~repro.fs.counters.ClientCounters` (and the server's) every N
simulated seconds into a :class:`CounterTimeseries` -- the two-week
diurnal curves of the paper, per machine, for any counter.

The series supports the derivations the paper's post-processing used
(deltas per interval, rates per second) plus the acceptance check this
layer is built around: **integrating any counter's deltas over the full
run reproduces the end-of-run aggregate exactly** (the sampler reads
the same objects the Table 4-9 pipeline reads, so sum-of-deltas =
last - first = final counter, with no float drift for the integer
counters).

Timeseries dump/load goes through :mod:`repro.pipeline.codec` (tag
``O``): per-machine row tables serialized with :mod:`marshal`, the same
compact columnar trick the artifact cache uses for replays.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.common.errors import SimulationError
from repro.fs.counters import ClientCounters, ServerCounters
from repro.sim.timers import RecurringTimer, SharedTicker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.client import ClientKernel
    from repro.fs.server import Server
    from repro.sim.engine import Engine

CLIENT_FIELDS: tuple[str, ...] = ClientCounters.FIELDS
SERVER_FIELDS: tuple[str, ...] = ServerCounters.FIELDS

#: Instantaneous gauges (re-written at every snapshot) rather than
#: cumulative counters: for these the end-of-run value is the *last*
#: sample, not the sum of deltas (the baseline sample is non-zero).
GAUGE_FIELDS: frozenset[str] = frozenset({
    "cache_size_bytes", "vm_resident_bytes", "dirty_blocks_resident",
})


@dataclass
class MachineSeries:
    """Sampled counter rows for one machine.

    ``rows[i]`` is a tuple aligned with ``fields``, read at
    ``times[i]``.  Counters are cumulative, so consumers usually want
    :meth:`deltas` or :meth:`rates`; gauges (``cache_size_bytes``,
    ``vm_resident_bytes``, ``dirty_blocks_resident``) are meaningful
    directly via :meth:`column`.
    """

    machine: str
    fields: tuple[str, ...]
    times: list[float]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.times)

    def _col(self, name: str) -> int:
        try:
            return self.fields.index(name)
        except ValueError:
            raise KeyError(f"{self.machine} has no counter {name!r}") from None

    def column(self, name: str) -> list[float]:
        """The sampled values of one counter, cumulative."""
        col = self._col(name)
        return [row[col] for row in self.rows]

    def deltas(self, name: str) -> list[float]:
        """Per-interval increments (one shorter than ``times``)."""
        values = self.column(name)
        return [b - a for a, b in zip(values, values[1:])]

    def rates(self, name: str) -> list[float]:
        """Per-second rates over each interval (zero-width intervals,
        which only arise from a finalize landing on a sample boundary,
        rate as 0)."""
        values = self.column(name)
        out = []
        for (t0, v0), (t1, v1) in zip(
            zip(self.times, values), zip(self.times[1:], values[1:])
        ):
            width = t1 - t0
            out.append((v1 - v0) / width if width > 0 else 0.0)
        return out

    def integrate(self, name: str) -> float:
        """Sum of all deltas == last sample - first sample.

        With a zero baseline sample at attach time this is exactly the
        end-of-run aggregate the Table 4-9 pipeline computes.
        """
        values = self.column(name)
        if not values:
            raise SimulationError(f"{self.machine}: no samples to integrate")
        return values[-1] - values[0]


class CounterTimeseries:
    """All machines' sampled series for one replay."""

    def __init__(self, sample_interval: float) -> None:
        self.sample_interval = sample_interval
        self.machines: dict[str, MachineSeries] = {}

    def series(self, machine: str) -> MachineSeries:
        try:
            return self.machines[machine]
        except KeyError:
            raise KeyError(
                f"no series for {machine!r}; have {sorted(self.machines)}"
            ) from None

    def client_series(self) -> list[MachineSeries]:
        return [
            series for name, series in sorted(self.machines.items())
            if name.startswith("client-")
        ]

    def server_series(self) -> list[MachineSeries]:
        """Per-shard server series, in shard order.

        A single-server replay has one series named ``"server"``; a
        sharded replay has ``"server-0"`` .. ``"server-N-1"`` (and no
        plain ``"server"``).
        """
        if "server" in self.machines:
            return [self.machines["server"]]
        return [
            series for name, series in sorted(self.machines.items())
            if name.startswith("server-")
        ]

    # --- columnar persistence (codec tag O) -------------------------------

    def to_payload(self) -> tuple:
        """A marshal-safe tuple for :mod:`repro.pipeline.codec`."""
        return (
            self.sample_interval,
            [
                (s.machine, s.fields, tuple(s.times), tuple(s.rows))
                for s in self.machines.values()
            ],
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "CounterTimeseries":
        sample_interval, tables = payload
        out = cls(sample_interval)
        for machine, field_names, times, rows in tables:
            out.machines[machine] = MachineSeries(
                machine=machine,
                fields=tuple(field_names),
                times=list(times),
                rows=list(rows),
            )
        return out

    def dump(self, path: str | os.PathLike[str]) -> None:
        """Write the compact columnar form to ``path``."""
        from repro.pipeline.codec import encode_artifact

        with open(os.fspath(path), "wb") as handle:
            handle.write(encode_artifact(self))

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "CounterTimeseries":
        from repro.pipeline.codec import decode_artifact

        with open(os.fspath(path), "rb") as handle:
            loaded = decode_artifact(handle.read())
        if not isinstance(loaded, cls):
            raise SimulationError(f"{path} is not a counter timeseries")
        return loaded


class CounterSampler:
    """The simulated "user-level process" reading the counters.

    :meth:`attach` takes a zero-time baseline sample and starts a
    recurring engine timer; :meth:`finalize` takes the closing sample
    (skipped if the timer already sampled at exactly that instant).
    ``on_sample`` is called after each sample with the current time --
    the observation hub uses it to mirror key gauges into the event
    trace as counter events.
    """

    def __init__(
        self,
        sample_interval: float,
        on_sample: Callable[[float], None] | None = None,
    ) -> None:
        if sample_interval <= 0:
            raise SimulationError(
                f"sample interval must be positive: {sample_interval}"
            )
        self.timeseries = CounterTimeseries(sample_interval)
        self.on_sample = on_sample
        self._engine: "Engine | None" = None
        self._clients: Sequence["ClientKernel"] = ()
        self._servers: list["Server"] = []
        #: Parallel to ``_servers``: each shard's machine name.  A lone
        #: server keeps the historical ``"server"``; shards are
        #: ``"server-<id>"``.
        self._server_names: list[str] = []
        #: Either a private RecurringTimer or a shared-tick subscription
        #: (both expose ``stop()``).
        self._timer = None

    def attach(
        self,
        engine: "Engine",
        clients: Sequence["ClientKernel"],
        server: "Server | Sequence[Server]",
        ticker: SharedTicker | None = None,
        server_names: Sequence[str] | None = None,
    ) -> None:
        """Start sampling.  ``ticker`` shares a cluster's coalesced tick
        (one heap event per interval cluster-wide); without one the
        sampler runs its own private timer.

        ``server_names`` overrides the per-server machine names.  The
        default infers them from the list handed in -- one server means
        the historical ``"server"`` -- which is right for direct
        callers but wrong for an owned-only shard holding one server
        *of a larger cluster*; such callers (the observer) pass the
        cluster-aware names explicitly.
        """
        if self._engine is not None:
            raise SimulationError("sampler already attached")
        self._engine = engine
        self._clients = list(clients)
        servers = [server] if not isinstance(server, (list, tuple)) else list(server)
        self._servers = servers
        if server_names is not None:
            if len(server_names) != len(servers):
                raise SimulationError(
                    f"got {len(server_names)} server names for "
                    f"{len(servers)} servers"
                )
            self._server_names = list(server_names)
        elif len(servers) == 1:
            self._server_names = ["server"]
        else:
            self._server_names = [f"server-{s.server_id}" for s in servers]
        for client in self._clients:
            self.timeseries.machines[f"client-{client.client_id}"] = (
                MachineSeries(
                    machine=f"client-{client.client_id}",
                    fields=CLIENT_FIELDS, times=[], rows=[],
                )
            )
        for name in self._server_names:
            self.timeseries.machines[name] = MachineSeries(
                machine=name, fields=SERVER_FIELDS, times=[], rows=[],
            )
        self.sample()  # the baseline: integration starts from here
        if ticker is not None:
            self._timer = ticker.subscribe(self.sample)
        else:
            self._timer = RecurringTimer(
                engine, self.timeseries.sample_interval, self.sample
            )
            self._timer.start()

    def sample(self) -> None:
        """Read every machine's counters at the current simulated time."""
        assert self._engine is not None and self._servers
        now = self._engine.now
        for client in self._clients:
            client.snapshot_sizes()  # refresh gauges, as snapshots do
            series = self.timeseries.machines[f"client-{client.client_id}"]
            series.times.append(now)
            series.rows.append(client.counters.as_row())
        for server, name in zip(self._servers, self._server_names):
            series = self.timeseries.machines[name]
            series.times.append(now)
            series.rows.append(server.counters.as_row())
        if self.on_sample is not None:
            self.on_sample(now)

    def finalize(self, now: float) -> None:
        """Take the closing sample (idempotent per timestamp)."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        if self._engine is None:
            return
        server_times = self.timeseries.machines[self._server_names[0]].times
        if not server_times or server_times[-1] < now:
            self.sample()


def verify_integration(
    timeseries: CounterTimeseries,
    final_counters: dict[int, ClientCounters],
    server_counters: ServerCounters,
    per_server_counters: Sequence[ServerCounters] | None = None,
    server_ids: Sequence[int] | None = None,
) -> list[str]:
    """Check sum-of-deltas == end-of-run aggregate for every counter.

    Returns a list of mismatches (empty = the timeseries integrates to
    exactly the Table 4-9 inputs).  Used by the obs test suite and handy
    for ad-hoc sanity checks on saved timeseries.

    A sharded replay samples ``server-0`` .. ``server-N-1`` instead of
    ``server``; pass the result's ``per_server_counters`` and each
    shard's series is checked against its own final counters (the
    aggregate ``server_counters`` is then implied, being the field-wise
    sum of the shards).  An owned-only shard's ``per_server_counters``
    rows are its *owned* servers, not ``0..N-1``; pass the result's
    ``server_ids`` so each row is matched to the right series.
    """
    problems: list[str] = []

    def check(series: MachineSeries, names: Sequence[str], counters) -> None:
        for name in names:
            if name in GAUGE_FIELDS:
                # Gauges overwrite, they don't accumulate: the run's
                # final value is the closing sample itself.
                got = series.column(name)[-1]
                how = "last sample"
            else:
                got = series.integrate(name)
                how = "integrated"
            expected = getattr(counters, name)
            if got != expected:
                problems.append(
                    f"{series.machine}.{name}: {how} {got!r} "
                    f"!= final {expected!r}"
                )

    for client_id, counters in sorted(final_counters.items()):
        check(timeseries.series(f"client-{client_id}"), CLIENT_FIELDS, counters)
    if "server" in timeseries.machines:
        check(timeseries.series("server"), SERVER_FIELDS, server_counters)
    elif per_server_counters is not None:
        ids = (
            list(server_ids) if server_ids
            else list(range(len(per_server_counters)))
        )
        if len(ids) != len(per_server_counters):
            problems.append(
                f"{len(ids)} server ids for "
                f"{len(per_server_counters)} per-server counter rows"
            )
            return problems
        for server_id, counters in zip(ids, per_server_counters):
            check(
                timeseries.series(f"server-{server_id}"),
                SERVER_FIELDS, counters,
            )
    else:
        problems.append(
            "no 'server' series and no per_server_counters to check the "
            f"per-shard series against; have {sorted(timeseries.machines)}"
        )
    return problems
