"""Episode assembly: from raw records to accesses and logical runs.

The paper's Section 4 definitions:

* An **access** is "opening a file, reading and/or writing it, then
  closing the file" (Table 3 caption).
* A **sequential run** is "a portion of a file read or written
  sequentially -- a series of data transfers bounded at the start by an
  open or reposition operation and at the end by a close or another
  reposition operation" (Section 4.2).

The trace format stores run *records* that may split one logical run
into contiguous pieces (a simulator reading a 20-Mbyte input in three
back-to-back chunks repositions nowhere, so the paper would count one
run).  The assembler merges contiguous same-kind records back into
logical runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.trace.records import (
    CloseRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    TraceRecord,
    WriteRunRecord,
)


@dataclass(slots=True)
class LogicalRun:
    """One sequential run: contiguous transfer of a single kind."""

    is_write: bool
    offset: int
    length: int
    end_time: float

    @property
    def end_offset(self) -> int:
        return self.offset + self.length


@dataclass(slots=True)
class Access:
    """One complete open..close episode with its logical runs."""

    open_record: OpenRecord
    close_record: CloseRecord
    runs: list[LogicalRun] = field(default_factory=list)
    reposition_count: int = 0

    @property
    def bytes_read(self) -> int:
        return sum(run.length for run in self.runs if not run.is_write)

    @property
    def bytes_written(self) -> int:
        return sum(run.length for run in self.runs if run.is_write)

    @property
    def bytes_transferred(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def duration(self) -> float:
        return self.close_record.time - self.open_record.time

    @property
    def migrated(self) -> bool:
        return self.open_record.migrated

    @property
    def user_id(self) -> int:
        return self.open_record.user_id

    @property
    def file_id(self) -> int:
        return self.open_record.file_id

    @property
    def size_at_close(self) -> int:
        return self.close_record.size_at_close


def assemble_accesses(records: Iterable[TraceRecord]) -> Iterator[Access]:
    """Yield completed accesses from a time-ordered record stream.

    Episodes left open at end of stream (a 24-hour window can split an
    episode) are dropped, exactly as an open/close pairing analysis of
    the original traces would drop them.
    """
    in_progress: dict[int, _PartialAccess] = {}

    for record in records:
        if isinstance(record, OpenRecord):
            in_progress[record.open_id] = _PartialAccess(open_record=record)
        elif isinstance(record, CloseRecord):
            partial = in_progress.pop(record.open_id, None)
            if partial is None:
                continue  # close for an open before the window started
            yield partial.finish(record)
        elif isinstance(record, (ReadRunRecord, WriteRunRecord)):
            partial = in_progress.get(record.open_id)
            if partial is not None:
                partial.add_run(record)
        elif isinstance(record, RepositionRecord):
            partial = in_progress.get(record.open_id)
            if partial is not None:
                partial.reposition_count += 1


@dataclass(slots=True)
class _PartialAccess:
    open_record: OpenRecord
    runs: list[LogicalRun] = field(default_factory=list)
    reposition_count: int = 0

    def add_run(self, record: ReadRunRecord | WriteRunRecord) -> None:
        is_write = isinstance(record, WriteRunRecord)
        if self.runs:
            last = self.runs[-1]
            if last.is_write == is_write and last.end_offset == record.offset:
                # Contiguous continuation of the same logical run.
                last.length += record.length
                last.end_time = record.time
                return
        self.runs.append(
            LogicalRun(
                is_write=is_write,
                offset=record.offset,
                length=record.length,
                end_time=record.time,
            )
        )

    def finish(self, close_record: CloseRecord) -> Access:
        return Access(
            open_record=self.open_record,
            close_record=close_record,
            runs=self.runs,
            reposition_count=self.reposition_count,
        )
