"""Table 3: file access patterns.

Accesses are classified two ways:

* by what actually happened -- read-only, write-only, or read/write
  ("an access is considered read/write only if the file was both read
  and written during the access");
* by sequentiality -- whole-file ("the entire file was transferred
  sequentially from start to finish"), other sequential ("a single
  sequential run ... between open and close"), or random.

Both classifications are reported weighted by accesses and by bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.episodes import Access
from repro.common.render import format_with_range, render_table
from repro.common.stats import MinMax


class AccessType(enum.Enum):
    READ_ONLY = "Read-only"
    WRITE_ONLY = "Write-only"
    READ_WRITE = "Read/write"


class Sequentiality(enum.Enum):
    WHOLE_FILE = "Whole-file"
    OTHER_SEQUENTIAL = "Other sequential"
    RANDOM = "Random"


def classify_access(access: Access) -> tuple[AccessType, Sequentiality] | None:
    """Classify one access; ``None`` for zero-byte accesses (an open and
    close with no transfer carries no pattern information)."""
    bytes_read = access.bytes_read
    bytes_written = access.bytes_written
    if bytes_read == 0 and bytes_written == 0:
        return None
    if bytes_read > 0 and bytes_written > 0:
        access_type = AccessType.READ_WRITE
    elif bytes_read > 0:
        access_type = AccessType.READ_ONLY
    else:
        access_type = AccessType.WRITE_ONLY

    runs = access.runs
    if access_type is AccessType.READ_WRITE:
        # A mixed access with a single run per direction back-to-back in
        # place is still effectively random update behaviour; treat the
        # single-run case as sequential, everything else random.
        sequentiality = (
            Sequentiality.OTHER_SEQUENTIAL if len(runs) == 1 else Sequentiality.RANDOM
        )
    elif len(runs) == 1:
        run = runs[0]
        # Whole-file: one run covering the file start to finish.  For
        # reads the relevant size is the size when reading began; for
        # writes it is the file's size at close.
        file_size = (
            access.open_record.size_at_open
            if access_type is AccessType.READ_ONLY
            else access.size_at_close
        )
        if run.offset == 0 and run.length >= file_size > 0:
            sequentiality = Sequentiality.WHOLE_FILE
        elif run.offset == 0 and access_type is AccessType.WRITE_ONLY and run.length == access.size_at_close:
            sequentiality = Sequentiality.WHOLE_FILE
        else:
            sequentiality = Sequentiality.OTHER_SEQUENTIAL
    else:
        sequentiality = Sequentiality.RANDOM
    return access_type, sequentiality


@dataclass
class PatternCell:
    """Counts for one (type, sequentiality) cell."""

    accesses: int = 0
    bytes: int = 0


@dataclass
class AccessPatternResult:
    """Table 3 for one trace or a pool of traces."""

    cells: dict[tuple[AccessType, Sequentiality], PatternCell] = field(
        default_factory=lambda: {
            (t, s): PatternCell() for t in AccessType for s in Sequentiality
        }
    )
    skipped_zero_byte: int = 0

    def add(self, access: Access) -> None:
        classified = classify_access(access)
        if classified is None:
            self.skipped_zero_byte += 1
            return
        cell = self.cells[classified]
        cell.accesses += 1
        cell.bytes += access.bytes_transferred

    # --- aggregate views ----------------------------------------------------

    def type_totals(self) -> dict[AccessType, PatternCell]:
        totals = {t: PatternCell() for t in AccessType}
        for (access_type, _), cell in self.cells.items():
            totals[access_type].accesses += cell.accesses
            totals[access_type].bytes += cell.bytes
        return totals

    @property
    def total_accesses(self) -> int:
        return sum(cell.accesses for cell in self.cells.values())

    @property
    def total_bytes(self) -> int:
        return sum(cell.bytes for cell in self.cells.values())

    def type_share(self, access_type: AccessType, by_bytes: bool = False) -> float:
        """Fraction of all accesses (or bytes) of the given type."""
        totals = self.type_totals()
        denominator = self.total_bytes if by_bytes else self.total_accesses
        if denominator == 0:
            return 0.0
        cell = totals[access_type]
        return (cell.bytes if by_bytes else cell.accesses) / denominator

    def sequentiality_share(
        self,
        access_type: AccessType,
        sequentiality: Sequentiality,
        by_bytes: bool = False,
    ) -> float:
        """Within one access type, the share of a sequentiality class."""
        totals = self.type_totals()
        denominator = (
            totals[access_type].bytes if by_bytes else totals[access_type].accesses
        )
        if denominator == 0:
            return 0.0
        cell = self.cells[(access_type, sequentiality)]
        return (cell.bytes if by_bytes else cell.accesses) / denominator

    @property
    def sequential_bytes_fraction(self) -> float:
        """Fraction of all bytes moved in non-random accesses (the paper:
        "more than 90% of all data was transferred sequentially")."""
        if self.total_bytes == 0:
            return 0.0
        sequential = sum(
            cell.bytes
            for (_, seq), cell in self.cells.items()
            if seq is not Sequentiality.RANDOM
        )
        return sequential / self.total_bytes


def compute_access_patterns(accesses: Iterable[Access]) -> AccessPatternResult:
    """Classify every access."""
    result = AccessPatternResult()
    for access in accesses:
        result.add(access)
    return result


def merge_pattern_results(
    results: list[AccessPatternResult],
) -> AccessPatternResult:
    """Pool per-trace results into one (for the paper-style aggregate)."""
    merged = AccessPatternResult()
    for result in results:
        merged.skipped_zero_byte += result.skipped_zero_byte
        for key, cell in result.cells.items():
            merged.cells[key].accesses += cell.accesses
            merged.cells[key].bytes += cell.bytes
    return merged


def render_table3(
    pooled: AccessPatternResult, per_trace: list[AccessPatternResult]
) -> str:
    """Render Table 3 with min-max bands across traces, like the paper."""

    def band(getter) -> MinMax:
        values = MinMax()
        for result in per_trace:
            values.add(getter(result))
        return values

    rows = []
    for access_type in AccessType:
        type_access = 100 * pooled.type_share(access_type)
        type_bytes = 100 * pooled.type_share(access_type, by_bytes=True)
        band_a = band(lambda r, t=access_type: 100 * r.type_share(t))
        band_b = band(lambda r, t=access_type: 100 * r.type_share(t, True))
        rows.append(
            [
                access_type.value,
                format_with_range(type_access, *band_a.as_tuple(), 0),
                format_with_range(type_bytes, *band_b.as_tuple(), 0),
                "",
                "",
            ]
        )
        for seq in Sequentiality:
            share_a = 100 * pooled.sequentiality_share(access_type, seq)
            share_b = 100 * pooled.sequentiality_share(access_type, seq, True)
            sband_a = band(
                lambda r, t=access_type, s=seq: 100 * r.sequentiality_share(t, s)
            )
            sband_b = band(
                lambda r, t=access_type, s=seq: 100
                * r.sequentiality_share(t, s, True)
            )
            rows.append(
                [
                    f"  {seq.value}",
                    "",
                    "",
                    format_with_range(share_a, *sband_a.as_tuple(), 0),
                    format_with_range(share_b, *sband_b.as_tuple(), 0),
                ]
            )
    return render_table(
        "Table 3. File access patterns",
        ["File usage", "Accesses (%)", "Bytes (%)", "Seq. Accesses (%)", "Seq. Bytes (%)"],
        rows,
        note=(
            f"Sequentially transferred bytes overall: "
            f"{100 * pooled.sequential_bytes_fraction:.1f}% "
            "(paper: more than 90%)."
        ),
    )
