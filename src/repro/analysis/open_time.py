"""Figure 3: file open times.

The distribution of how long files stay open.  The paper found ~75% of
opens last under a quarter second (the BSD study's figure was half a
second; machines got ~10x faster but network opens cost 4-5x more than
local ones, so open times only halved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.episodes import Access
from repro.common.cdf import Cdf
from repro.common.render import render_cdf_figure, seconds_label

PROBE_VALUES: tuple[float, ...] = (
    0.01,
    0.1,
    0.25,
    0.5,
    1.0,
    10.0,
    100.0,
    1000.0,
)


@dataclass
class OpenTimeResult:
    """Figure 3's CDF."""

    by_opens: Cdf = field(default_factory=Cdf)

    def add(self, access: Access) -> None:
        self.by_opens.add(max(0.0, access.duration))

    @property
    def fraction_below_quarter_second(self) -> float:
        return self.by_opens.fraction_at_or_below(0.25)

    @property
    def median_open_seconds(self) -> float:
        return self.by_opens.median()

    def render(self, name: str = "pooled") -> str:
        return render_cdf_figure(
            f"Figure 3. File open times ({name})",
            {"by opens": self.by_opens},
            xlabel="open duration",
            probe_values=list(PROBE_VALUES),
            value_formatter=seconds_label,
        )


def compute_open_times(accesses: Iterable[Access]) -> OpenTimeResult:
    """Build the open-time CDF from an access stream."""
    result = OpenTimeResult()
    for access in accesses:
        result.add(access)
    return result
