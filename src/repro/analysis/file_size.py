"""Figure 2: dynamic file sizes.

The distribution of file sizes *as accessed*: each completed access
contributes the file's size at close, weighted once per access for the
top curve and by the bytes the access transferred for the bottom curve.
The paper's reading: most accesses touch short files (e.g. 42% of
trace-1 accesses were to files under a kilobyte), while most bytes come
from big ones (40% of trace-1 bytes from files of a megabyte or more).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.episodes import Access
from repro.common.cdf import Cdf
from repro.common.render import byte_label, render_cdf_figure
from repro.common.units import KB, MB

PROBE_VALUES: tuple[float, ...] = (
    100,
    1 * KB,
    10 * KB,
    100 * KB,
    1 * MB,
    10 * MB,
    32 * MB,
)


@dataclass
class FileSizeResult:
    """Figure 2's two CDFs."""

    by_accesses: Cdf = field(default_factory=Cdf)
    by_bytes: Cdf = field(default_factory=Cdf)

    def add(self, access: Access) -> None:
        transferred = access.bytes_transferred
        if transferred == 0:
            return
        size = access.size_at_close
        self.by_accesses.add(size)
        self.by_bytes.add(size, weight=transferred)

    @property
    def fraction_of_accesses_below_10kb(self) -> float:
        return self.by_accesses.fraction_at_or_below(10 * KB)

    @property
    def fraction_of_bytes_from_files_over_1mb(self) -> float:
        return 1.0 - self.by_bytes.fraction_at_or_below(1 * MB)

    def render(self, name: str = "pooled") -> str:
        return render_cdf_figure(
            f"Figure 2. File size ({name})",
            {"by accesses": self.by_accesses, "by bytes": self.by_bytes},
            xlabel="file size",
            probe_values=list(PROBE_VALUES),
            value_formatter=byte_label,
        )


def compute_file_sizes(accesses: Iterable[Access]) -> FileSizeResult:
    """Build the file-size CDFs from an access stream."""
    result = FileSizeResult()
    for access in accesses:
        result.add(access)
    return result
