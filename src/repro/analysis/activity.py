"""Table 2: user activity and file throughput.

Each trace is divided into 10-minute and 10-second intervals.  A user is
active in an interval if any of their trace records falls inside it; the
per-user throughput of an interval is the bytes they transferred during
it divided by the interval width.  The migration column repeats the
computation considering only records produced by migrated processes.

All traces are pooled, as in the paper (Table 2 reports single numbers
across the eight traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.common.render import format_with_spread, render_table
from repro.common.stats import RunningStat
from repro.common.units import KB, TEN_MINUTES, TEN_SECONDS
from repro.trace.records import ReadRunRecord, TraceRecord, WriteRunRecord


@dataclass
class IntervalScaleResult:
    """Table 2's measurements for one interval width and one user class."""

    interval_width: float
    #: Mean/max of the per-interval active-user count (empty intervals in
    #: the trace duration count as zero).
    average_active_users: float = 0.0
    active_users_stddev: float = 0.0
    maximum_active_users: int = 0
    #: Mean/sd over user-intervals of per-user throughput (Kbytes/sec).
    average_throughput_kbs: float = 0.0
    throughput_stddev_kbs: float = 0.0
    #: Largest single user-interval throughput (Kbytes/sec).
    peak_user_throughput_kbs: float = 0.0
    #: Largest whole-interval total throughput (Kbytes/sec).
    peak_total_throughput_kbs: float = 0.0


@dataclass
class ActivityResult:
    """The full Table 2: two interval widths x (all users, migration)."""

    ten_minute_all: IntervalScaleResult = field(
        default_factory=lambda: IntervalScaleResult(TEN_MINUTES)
    )
    ten_minute_migrated: IntervalScaleResult = field(
        default_factory=lambda: IntervalScaleResult(TEN_MINUTES)
    )
    ten_second_all: IntervalScaleResult = field(
        default_factory=lambda: IntervalScaleResult(TEN_SECONDS)
    )
    ten_second_migrated: IntervalScaleResult = field(
        default_factory=lambda: IntervalScaleResult(TEN_SECONDS)
    )

    @property
    def migration_burst_factor(self) -> float:
        """How much higher migration throughput is than overall (the
        paper reports ~6-7x at 10-minute granularity)."""
        if self.ten_minute_all.average_throughput_kbs == 0:
            return 0.0
        return (
            self.ten_minute_migrated.average_throughput_kbs
            / self.ten_minute_all.average_throughput_kbs
        )

    def render(self) -> str:
        rows = []
        for width_label, all_r, mig_r in (
            ("10-minute", self.ten_minute_all, self.ten_minute_migrated),
            ("10-second", self.ten_second_all, self.ten_second_migrated),
        ):
            rows.extend(
                [
                    [
                        f"[{width_label}] Average number of active users",
                        format_with_spread(
                            all_r.average_active_users, all_r.active_users_stddev, 2
                        ),
                        format_with_spread(
                            mig_r.average_active_users, mig_r.active_users_stddev, 2
                        ),
                    ],
                    [
                        f"[{width_label}] Maximum number of active users",
                        str(all_r.maximum_active_users),
                        str(mig_r.maximum_active_users),
                    ],
                    [
                        f"[{width_label}] Avg throughput/active user (KB/s)",
                        format_with_spread(
                            all_r.average_throughput_kbs,
                            all_r.throughput_stddev_kbs,
                            1,
                        ),
                        format_with_spread(
                            mig_r.average_throughput_kbs,
                            mig_r.throughput_stddev_kbs,
                            1,
                        ),
                    ],
                    [
                        f"[{width_label}] Peak user throughput (KB/s)",
                        f"{all_r.peak_user_throughput_kbs:.0f}",
                        f"{mig_r.peak_user_throughput_kbs:.0f}",
                    ],
                    [
                        f"[{width_label}] Peak total throughput (KB/s)",
                        f"{all_r.peak_total_throughput_kbs:.0f}",
                        f"{mig_r.peak_total_throughput_kbs:.0f}",
                    ],
                ]
            )
        return render_table(
            "Table 2. User activity",
            ["Measurement", "All Users", "Users with Migrated Processes"],
            rows,
        )


class _ScaleAccumulator:
    """Pools one interval width + user class across traces."""

    def __init__(self, width: float, migrated_only: bool) -> None:
        self.width = width
        self.migrated_only = migrated_only
        self.active_user_counts = RunningStat()
        self.user_throughput = RunningStat()
        self.peak_user = 0.0
        self.peak_total = 0.0
        self.max_active = 0

    def consume(self, records: Sequence[TraceRecord], duration: float) -> None:
        # user activity flags and byte counts, keyed by interval index.
        active: dict[int, set[int]] = {}
        user_bytes: dict[int, dict[int, int]] = {}
        for record in records:
            if self.migrated_only and not getattr(record, "migrated", False):
                continue
            user = getattr(record, "user_id", None)
            if user is None or user < 0:
                continue
            index = int(record.time // self.width)
            active.setdefault(index, set()).add(user)
            if isinstance(record, (ReadRunRecord, WriteRunRecord)):
                bucket = user_bytes.setdefault(index, {})
                bucket[user] = bucket.get(user, 0) + record.length

        total_intervals = max(1, int(duration // self.width))
        occupied = 0
        for index, users in active.items():
            count = len(users)
            self.active_user_counts.add(float(count))
            self.max_active = max(self.max_active, count)
            occupied += 1
            interval_bytes = 0
            per_user = user_bytes.get(index, {})
            for user in users:
                nbytes = per_user.get(user, 0)
                kbs = nbytes / self.width / KB
                self.user_throughput.add(kbs)
                self.peak_user = max(self.peak_user, kbs)
                interval_bytes += nbytes
            self.peak_total = max(
                self.peak_total, interval_bytes / self.width / KB
            )
        # Intervals with no active user count as zero users.
        for _ in range(max(0, total_intervals - occupied)):
            self.active_user_counts.add(0.0)

    def result(self) -> IntervalScaleResult:
        return IntervalScaleResult(
            interval_width=self.width,
            average_active_users=self.active_user_counts.mean,
            active_users_stddev=self.active_user_counts.stddev,
            maximum_active_users=self.max_active,
            average_throughput_kbs=self.user_throughput.mean,
            throughput_stddev_kbs=self.user_throughput.stddev,
            peak_user_throughput_kbs=self.peak_user,
            peak_total_throughput_kbs=self.peak_total,
        )


def compute_activity(
    traces: Iterable[tuple[Sequence[TraceRecord], float]],
) -> ActivityResult:
    """Compute Table 2 over a pool of (records, duration) traces."""
    accumulators = {
        ("10m", False): _ScaleAccumulator(TEN_MINUTES, migrated_only=False),
        ("10m", True): _ScaleAccumulator(TEN_MINUTES, migrated_only=True),
        ("10s", False): _ScaleAccumulator(TEN_SECONDS, migrated_only=False),
        ("10s", True): _ScaleAccumulator(TEN_SECONDS, migrated_only=True),
    }
    for records, duration in traces:
        records = list(records)
        for accumulator in accumulators.values():
            accumulator.consume(records, duration)

    result = ActivityResult()
    result.ten_minute_all = accumulators[("10m", False)].result()
    result.ten_minute_migrated = accumulators[("10m", True)].result()
    result.ten_second_all = accumulators[("10s", False)].result()
    result.ten_second_migrated = accumulators[("10s", True)].result()
    return result
