"""Section 4 of the paper: the BSD study revisited.

Each module reproduces one table or figure from the trace data:

* :mod:`repro.analysis.table1` -- overall trace statistics.
* :mod:`repro.analysis.activity` -- Table 2, user activity and
  throughput over 10-minute and 10-second intervals.
* :mod:`repro.analysis.access_patterns` -- Table 3, access-type by
  sequentiality classification.
* :mod:`repro.analysis.run_length` -- Figure 1, sequential run lengths.
* :mod:`repro.analysis.file_size` -- Figure 2, dynamic file sizes.
* :mod:`repro.analysis.open_time` -- Figure 3, file open times.
* :mod:`repro.analysis.lifetime` -- Figure 4, file lifetimes.

All analyses consume plain record streams, so they run identically on
synthetic traces and on any real trace converted to the record format.
"""

from repro.analysis.episodes import Access, LogicalRun, assemble_accesses
from repro.analysis.table1 import TraceStatistics, compute_table1
from repro.analysis.activity import ActivityResult, compute_activity
from repro.analysis.access_patterns import (
    AccessPatternResult,
    classify_access,
    compute_access_patterns,
)
from repro.analysis.run_length import RunLengthResult, compute_run_lengths
from repro.analysis.file_size import FileSizeResult, compute_file_sizes
from repro.analysis.open_time import OpenTimeResult, compute_open_times
from repro.analysis.lifetime import LifetimeResult, compute_lifetimes
from repro.analysis.bsd_comparison import (
    BSD_1985,
    build_comparisons,
    render_then_vs_now,
    throughput_vs_compute_gap,
)
from repro.analysis.export import read_cdf_csv, write_cdf_csv

__all__ = [
    "Access",
    "LogicalRun",
    "assemble_accesses",
    "TraceStatistics",
    "compute_table1",
    "ActivityResult",
    "compute_activity",
    "AccessPatternResult",
    "classify_access",
    "compute_access_patterns",
    "RunLengthResult",
    "compute_run_lengths",
    "FileSizeResult",
    "compute_file_sizes",
    "OpenTimeResult",
    "compute_open_times",
    "LifetimeResult",
    "compute_lifetimes",
    "BSD_1985",
    "build_comparisons",
    "render_then_vs_now",
    "throughput_vs_compute_gap",
    "read_cdf_csv",
    "write_cdf_csv",
]
