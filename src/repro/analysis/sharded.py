"""Per-server breakdowns for Tables 1, 2, and 7.

The paper's cluster had **four** file servers, and Tables 1, 2, and 7
report activity and server traffic per server.  With ``num_servers > 1``
the simulator shards the file space across servers by the deterministic
:class:`~repro.fs.sharding.Placement` hash, so the same breakdowns fall
out of the traces and the replay counters:

* **Table 1** -- route every trace record to its file's server and pool
  each server's records across the traces, yielding one Table 1 column
  per server instead of per trace.
* **Table 2** -- run the user-activity computation on each server's
  record stream, yielding per-server throughput columns.
* **Table 7** -- aggregate each shard's :class:`ServerCounters` across
  the replayed traces and report the traffic mix one column per server.

Records that carry no file (``file_id < 0``, e.g. a client picking a
directory) land on server 0, matching the placement function.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.table1 import TraceStatistics, compute_table1, render_table1
from repro.analysis.activity import ActivityResult, compute_activity
from repro.common.render import format_number, render_table
from repro.common.units import MB
from repro.fs.counters import ServerCounters
from repro.fs.sharding import Placement
from repro.trace.records import TraceRecord


def shard_records(
    records: Iterable[TraceRecord], placement: Placement
) -> list[list[TraceRecord]]:
    """Split one trace's records by the server their file lives on.

    Order within each shard is trace order, so every downstream
    computation stays deterministic.
    """
    shards: list[list[TraceRecord]] = [
        [] for _ in range(placement.num_servers)
    ]
    shard_of = placement.shard_of
    for record in records:
        file_id = getattr(record, "file_id", -1)
        shards[shard_of(file_id)].append(record)
    return shards


def per_server_table1(
    traces: Sequence, placement: Placement
) -> list[TraceStatistics]:
    """One pooled Table 1 row-set per server, across all traces."""
    total_duration = sum(trace.duration for trace in traces)
    per_server_records: list[list[TraceRecord]] = [
        [] for _ in range(placement.num_servers)
    ]
    for trace in traces:
        for server_id, records in enumerate(
            shard_records(trace.records, placement)
        ):
            per_server_records[server_id].extend(records)
    return [
        compute_table1(f"server {server_id}", records, total_duration)
        for server_id, records in enumerate(per_server_records)
    ]


def render_table1_per_server(
    traces: Sequence, placement: Placement
) -> str:
    return render_table1(
        per_server_table1(traces, placement),
        title="Table 1a. Overall statistics per server "
        f"(num_servers={placement.num_servers})",
        note=(
            "Each column pools all traces' records routed to one server "
            "by the seeded file placement hash (the paper's cluster had "
            "four servers)."
        ),
    )


def per_server_activity(
    traces: Sequence, placement: Placement
) -> list[ActivityResult]:
    """The Table 2 computation run once per server's record stream."""
    per_server: list[ActivityResult] = []
    shards_by_trace = [shard_records(t.records, placement) for t in traces]
    for server_id in range(placement.num_servers):
        per_server.append(
            compute_activity(
                (shards[server_id], trace.duration)
                for trace, shards in zip(traces, shards_by_trace)
            )
        )
    return per_server


#: Table 2 per-server rows: label plus accessor path into ActivityResult.
_ACTIVITY_ROWS: tuple[tuple[str, str, str], ...] = (
    ("[10-minute] Average active users", "ten_minute_all", "average_active_users"),
    ("[10-minute] Avg user throughput (KB/s)", "ten_minute_all", "average_throughput_kbs"),
    ("[10-second] Average active users", "ten_second_all", "average_active_users"),
    ("[10-second] Avg user throughput (KB/s)", "ten_second_all", "average_throughput_kbs"),
    ("[10-second] Peak user throughput (KB/s)", "ten_second_all", "peak_user_throughput_kbs"),
    ("[10-second] Peak total throughput (KB/s)", "ten_second_all", "peak_total_throughput_kbs"),
)


def render_table2_per_server(
    traces: Sequence, placement: Placement
) -> str:
    per_server = per_server_activity(traces, placement)
    headers = ["Measure"] + [
        f"server {server_id}" for server_id in range(placement.num_servers)
    ]
    rows = []
    for label, scale_attr, value_attr in _ACTIVITY_ROWS:
        row = [label]
        for result in per_server:
            value = getattr(getattr(result, scale_attr), value_attr)
            row.append(format_number(float(value), 1))
        rows.append(row)
    return render_table(
        "Table 2a. User activity per server "
        f"(num_servers={placement.num_servers})",
        headers,
        rows,
        note=(
            "A user is active on a server in an interval if any of their "
            "records routed to that server falls inside it."
        ),
    )


#: Table 7 per-server rows: label plus a value function of ServerCounters.
_TRAFFIC_ROWS: tuple[tuple[str, str], ...] = (
    ("RPCs handled", "rpc_count"),
    ("Open RPCs", "open_rpcs"),
    ("Block reads (Mbytes)", "block_read_bytes"),
    ("Block writes (Mbytes)", "block_write_bytes"),
    ("Passthrough (Mbytes)", "_passthrough_bytes"),
    ("Paging (Mbytes)", "paging_bytes"),
    ("Recalls issued", "recalls_issued"),
    ("Cache disables", "cache_disables"),
    ("Crashes", "crashes"),
    ("Downtime (seconds)", "downtime_seconds"),
)

_MBYTE_ATTRS = frozenset(
    {"block_read_bytes", "block_write_bytes", "_passthrough_bytes",
     "paging_bytes"}
)


def _traffic_value(counters: ServerCounters, attr: str) -> float:
    if attr == "_passthrough_bytes":
        value: float = (
            counters.passthrough_read_bytes + counters.passthrough_write_bytes
        )
    else:
        value = getattr(counters, attr)
    if attr in _MBYTE_ATTRS:
        value /= MB
    return float(value)


def aggregate_per_server(
    results: Sequence,
) -> list[ServerCounters]:
    """Sum each shard's counters across a set of cluster replays."""
    num_servers = len(results[0].per_server_counters)
    return [
        ServerCounters.aggregate(
            result.per_server_counters[server_id] for result in results
        )
        for server_id in range(num_servers)
    ]


def render_table7_per_server(results: Sequence) -> str:
    per_server = aggregate_per_server(results)
    headers = ["Type"] + [
        f"server {server_id}" for server_id in range(len(per_server))
    ]
    rows = []
    for label, attr in _TRAFFIC_ROWS:
        row = [label]
        for counters in per_server:
            row.append(format_number(_traffic_value(counters, attr), 1))
        rows.append(row)
    return render_table(
        "Table 7a. Server traffic per server "
        f"(num_servers={len(per_server)})",
        headers,
        rows,
        note=(
            "Counters summed over the replayed traces; byte columns are "
            "Mbytes at the server, after client caches filtered the "
            "traffic."
        ),
    )
