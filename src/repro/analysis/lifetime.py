"""Figure 4: file lifetimes.

Lifetimes are measured when files are deleted (truncation to zero counts
as deletion) and estimated from the ages of the file's oldest and newest
bytes, exactly as in Section 4.3:

* per-file (top graph): the lifetime is the average of the oldest and
  newest byte ages;
* per-byte (bottom graph): the file is assumed to have been written
  sequentially, so byte age varies linearly from the newest-byte age to
  the oldest-byte age across the file; each deleted file contributes its
  size in byte-weight spread uniformly over that age span.

The paper's headline numbers: 65-80% of deleted files lived under
30 seconds (Sprite's write-back delay), but those files are small --
only 4-27% of deleted *bytes* were under 30 seconds old.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.cdf import Cdf
from repro.common.render import render_cdf_figure, seconds_label
from repro.common.units import DAY
from repro.trace.records import DeleteRecord, TraceRecord, TruncateRecord

PROBE_VALUES: tuple[float, ...] = (
    1.0,
    10.0,
    30.0,
    100.0,
    360.0,
    1000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)

#: How many evenly spaced samples approximate the linear byte-age span
#: of one deleted file in the per-byte CDF.
_BYTE_SPAN_SAMPLES = 8


@dataclass
class LifetimeResult:
    """Figure 4's two CDFs."""

    by_files: Cdf = field(default_factory=Cdf)
    by_bytes: Cdf = field(default_factory=Cdf)
    #: Deleted files never written during the trace: their byte ages are
    #: unknown, so they cannot contribute a lifetime estimate.
    unknown_lifetime_deletes: int = 0

    def add(self, record: DeleteRecord | TruncateRecord) -> None:
        if record.oldest_byte_time < 0 or record.size <= 0:
            self.unknown_lifetime_deletes += 1
            return
        oldest_age = record.time - record.oldest_byte_time
        newest_age = record.time - record.newest_byte_time
        if oldest_age < 0 or newest_age < 0:
            self.unknown_lifetime_deletes += 1
            return
        self.by_files.add((oldest_age + newest_age) / 2.0)
        # Byte ages run linearly from newest (end of file) to oldest
        # (start of file) under the sequential-write assumption.
        if oldest_age == newest_age:
            self.by_bytes.add(oldest_age, weight=record.size)
        else:
            step_weight = record.size / _BYTE_SPAN_SAMPLES
            for step in range(_BYTE_SPAN_SAMPLES):
                fraction = (step + 0.5) / _BYTE_SPAN_SAMPLES
                age = newest_age + fraction * (oldest_age - newest_age)
                self.by_bytes.add(age, weight=step_weight)

    @property
    def fraction_of_files_under_30s(self) -> float:
        return self.by_files.fraction_at_or_below(30.0)

    @property
    def fraction_of_bytes_under_30s(self) -> float:
        return self.by_bytes.fraction_at_or_below(30.0)

    def render(self, name: str = "pooled") -> str:
        return render_cdf_figure(
            f"Figure 4. File lifetimes ({name})",
            {"by files": self.by_files, "by bytes": self.by_bytes},
            xlabel="lifetime",
            probe_values=[p for p in PROBE_VALUES if p <= 2 * DAY],
            value_formatter=seconds_label,
        )


def compute_lifetimes(records: Iterable[TraceRecord]) -> LifetimeResult:
    """Build the lifetime CDFs from a raw record stream."""
    result = LifetimeResult()
    for record in records:
        if isinstance(record, (DeleteRecord, TruncateRecord)):
            result.add(record)
    return result
