"""CSV export of figure data.

The paper's figures are CDF families; anyone replotting them (gnuplot,
matplotlib, a spreadsheet) wants the underlying (value, fraction)
points.  ``write_cdf_csv`` dumps any named family of CDFs in long form:
``curve,value,fraction``.
"""

from __future__ import annotations

import csv
import os

from repro.common.cdf import Cdf
from repro.common.errors import AnalysisError


def write_cdf_csv(
    path: str | os.PathLike[str],
    curves: dict[str, Cdf],
    max_points: int = 500,
) -> int:
    """Write a family of CDFs to ``path`` in long form.

    Returns the number of data rows written.  Empty curves are skipped
    (a CDF with no samples has no curve to plot); an entirely empty
    family is an error, since it almost certainly means the caller fed
    the wrong records in.
    """
    if not curves:
        raise AnalysisError("no curves to export")
    rows = 0
    with open(os.fspath(path), "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["curve", "value", "fraction"])
        for name, cdf in curves.items():
            if cdf.count == 0:
                continue
            for point in cdf.points(max_points=max_points):
                writer.writerow([name, repr(point.value), repr(point.fraction)])
                rows += 1
    if rows == 0:
        raise AnalysisError("every curve in the family was empty")
    return rows


def read_cdf_csv(path: str | os.PathLike[str]) -> dict[str, list[tuple[float, float]]]:
    """Read back a file written by :func:`write_cdf_csv` (round-trip
    helper, mostly for tests and notebooks)."""
    curves: dict[str, list[tuple[float, float]]] = {}
    with open(os.fspath(path), "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["curve", "value", "fraction"]:
            raise AnalysisError(f"{path} is not a CDF export (header {header})")
        for name, value, fraction in reader:
            curves.setdefault(name, []).append((float(value), float(fraction)))
    return curves
