"""The 1985 BSD study, and the paper's "then vs now" comparisons.

The whole paper is structured as a re-run of Ousterhout et al.'s 1985
"A Trace-Driven Analysis of the UNIX 4.2 BSD File System": every result
is presented against what the BSD study measured or predicted.  This
module encodes the BSD study's published numbers and derives the same
comparisons from our measured results:

* throughput per active user grew ~20x (0.4 -> 8.0 KB/s) while compute
  power per user grew 200-500x;
* 75% of opens shortened only from 0.5 s to 0.25 s despite 10x faster
  machines (network opens cost 4-5x local ones);
* the biggest files grew by an order of magnitude;
* the BSD study predicted ~10% misses for 4-MB caches; Sprite measured
  ~4x that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.render import render_table


@dataclass(frozen=True)
class BsdStudyBaseline:
    """The 1985 numbers the paper compares against (its Table 2 "BSD
    Study" column and scattered prose)."""

    #: Average active users per 10-minute interval.
    active_users_10min: float = 12.0
    #: Maximum active users in a 10-minute interval.
    max_active_users_10min: int = 27
    #: KB/s per active user over 10-minute intervals.
    throughput_10min_kbs: float = 0.4
    #: KB/s per active user over 10-second intervals.
    throughput_10s_kbs: float = 1.5
    #: Fraction of opens shorter than half a second.
    opens_below_half_second: float = 0.75
    #: Fraction of read-only accesses that were whole-file sequential.
    whole_file_read_fraction: float = 0.70
    #: Fraction of bytes moved sequentially.
    sequential_bytes_fraction: float = 0.70
    #: Fraction of bytes in sequential runs longer than 100 KB.
    bytes_in_runs_over_100kb: float = 0.10
    #: Predicted miss ratio for a 4-Mbyte client cache.
    predicted_miss_ratio_4mb: float = 0.10
    #: Raw file traffic measured per second (KB/s, whole system).
    raw_file_kbs: float = 4.0
    #: Paging traffic alongside it (Nelson & Duffy), KB/s.
    paging_kbs: float = 3.0
    #: MIPS per user: 20-50 users shared a 1-MIPS VAX.
    mips_per_user: float = 1.0 / 35.0

    @property
    def paging_share(self) -> float:
        """Paging as a share of all I/O traffic (~43% in 1985)."""
        return self.paging_kbs / (self.paging_kbs + self.raw_file_kbs)


#: The baseline instance used throughout.
BSD_1985 = BsdStudyBaseline()

#: 1991: each user had a personal 10-MIPS workstation.
SPRITE_MIPS_PER_USER = 10.0


@dataclass
class ThenVsNow:
    """One comparison row: 1985 vs the reproduction's measurement."""

    quantity: str
    then_value: float
    now_value: float
    paper_factor: str

    @property
    def factor(self) -> float:
        if self.then_value == 0:
            return float("inf")
        return self.now_value / self.then_value


def build_comparisons(
    throughput_10min_kbs: float,
    throughput_10s_kbs: float,
    opens_below_quarter_second: float,
    whole_file_read_fraction: float,
    sequential_bytes_fraction: float,
    read_miss_ratio: float,
    median_large_file_bytes: float | None = None,
) -> list[ThenVsNow]:
    """Derive the paper's headline then-vs-now rows from measured
    values (typically the metrics of table2/table3/figure3/table6)."""
    rows = [
        ThenVsNow(
            quantity="Throughput per active user, 10-min (KB/s)",
            then_value=BSD_1985.throughput_10min_kbs,
            now_value=throughput_10min_kbs,
            paper_factor="~20x",
        ),
        ThenVsNow(
            quantity="Throughput per active user, 10-s (KB/s)",
            then_value=BSD_1985.throughput_10s_kbs,
            now_value=throughput_10s_kbs,
            paper_factor="~30x",
        ),
        ThenVsNow(
            quantity="Compute power per user (MIPS)",
            then_value=BSD_1985.mips_per_user,
            now_value=SPRITE_MIPS_PER_USER,
            paper_factor="200-500x",
        ),
        ThenVsNow(
            quantity="Whole-file sequential reads (fraction)",
            then_value=BSD_1985.whole_file_read_fraction,
            now_value=whole_file_read_fraction,
            paper_factor="0.70 -> 0.78",
        ),
        ThenVsNow(
            quantity="Bytes moved sequentially (fraction)",
            then_value=BSD_1985.sequential_bytes_fraction,
            now_value=sequential_bytes_fraction,
            paper_factor="<0.70 -> >0.90",
        ),
        ThenVsNow(
            quantity="Cache miss ratio (vs 1985's 10% prediction)",
            then_value=BSD_1985.predicted_miss_ratio_4mb,
            now_value=read_miss_ratio,
            paper_factor="~4x the prediction",
        ),
        ThenVsNow(
            quantity="Opens finishing fast (fraction; 0.5s then, 0.25s now)",
            then_value=BSD_1985.opens_below_half_second,
            now_value=opens_below_quarter_second,
            paper_factor="times halved, not 10x",
        ),
    ]
    if median_large_file_bytes is not None:
        rows.append(
            ThenVsNow(
                quantity="Typical 'large' file (bytes)",
                then_value=median_large_file_bytes / 10.0,
                now_value=median_large_file_bytes,
                paper_factor="~10x",
            )
        )
    return rows


def throughput_vs_compute_gap(throughput_10min_kbs: float) -> float:
    """The paper's Section 4.1 observation: compute power per user grew
    hundreds-fold but throughput only ~20x.  Returns the ratio of the
    compute growth factor to the throughput growth factor (>1 means
    users spent the cycles on latency, not volume)."""
    compute_factor = SPRITE_MIPS_PER_USER / BSD_1985.mips_per_user
    throughput_factor = throughput_10min_kbs / BSD_1985.throughput_10min_kbs
    if throughput_factor <= 0:
        return float("inf")
    return compute_factor / throughput_factor


def render_then_vs_now(rows: list[ThenVsNow]) -> str:
    """Render the comparison table."""
    table_rows = [
        [
            row.quantity,
            f"{row.then_value:.3g}",
            f"{row.now_value:.3g}",
            f"{row.factor:.1f}x",
            row.paper_factor,
        ]
        for row in rows
    ]
    return render_table(
        "Then (BSD study, 1985) vs now (Sprite, 1991 reproduction)",
        ["Quantity", "1985", "Measured", "Factor", "Paper said"],
        table_rows,
        note=(
            "Users spent their extra compute on latency, not volume: "
            "throughput grew an order of magnitude less than MIPS."
        ),
    )
