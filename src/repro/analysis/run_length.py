"""Figure 1: sequential run lengths.

Two cumulative distributions over logical runs: one weighted by the
number of runs, one by the bytes the runs carry.  The paper's headline
reading: ~80% of runs move under 10 Kbytes, yet at least 10% of all
bytes move in runs longer than a megabyte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.episodes import Access
from repro.common.cdf import Cdf
from repro.common.render import byte_label, render_cdf_figure
from repro.common.units import KB, MB


#: The x positions at which the figure's companion table is probed.
PROBE_VALUES: tuple[float, ...] = (
    100,
    1 * KB,
    10 * KB,
    100 * KB,
    1 * MB,
    10 * MB,
    32 * MB,
)


@dataclass
class RunLengthResult:
    """Figure 1's two CDFs."""

    by_runs: Cdf = field(default_factory=Cdf)
    by_bytes: Cdf = field(default_factory=Cdf)

    def add(self, access: Access) -> None:
        for run in access.runs:
            if run.length <= 0:
                continue
            self.by_runs.add(run.length)
            self.by_bytes.add(run.length, weight=run.length)

    @property
    def fraction_of_runs_below_10kb(self) -> float:
        return self.by_runs.fraction_at_or_below(10 * KB)

    @property
    def fraction_of_bytes_in_runs_over_1mb(self) -> float:
        return 1.0 - self.by_bytes.fraction_at_or_below(1 * MB)

    def render(self, name: str = "pooled") -> str:
        return render_cdf_figure(
            f"Figure 1. Sequential run length ({name})",
            {"by runs": self.by_runs, "by bytes": self.by_bytes},
            xlabel="run length",
            probe_values=list(PROBE_VALUES),
            value_formatter=byte_label,
        )


def compute_run_lengths(accesses: Iterable[Access]) -> RunLengthResult:
    """Build the run-length CDFs from an access stream."""
    result = RunLengthResult()
    for access in accesses:
        result.add(access)
    return result
