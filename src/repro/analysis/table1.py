"""Table 1: overall trace statistics.

One row of counters per trace: users, Mbytes moved, and event counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.render import format_number, render_table
from repro.common.units import HOUR, bytes_to_mbytes
from repro.trace.records import (
    CloseRecord,
    DeleteRecord,
    DirectoryReadRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    TruncateRecord,
    WriteRunRecord,
)


@dataclass
class TraceStatistics:
    """The Table 1 row for one trace."""

    name: str = ""
    duration_hours: float = 0.0
    users: set[int] = field(default_factory=set)
    migration_users: set[int] = field(default_factory=set)
    bytes_read: int = 0
    bytes_written: int = 0
    directory_bytes_read: int = 0
    open_events: int = 0
    close_events: int = 0
    reposition_events: int = 0
    delete_events: int = 0
    truncate_events: int = 0
    shared_read_events: int = 0
    shared_write_events: int = 0

    @property
    def different_users(self) -> int:
        return len(self.users)

    @property
    def users_of_migration(self) -> int:
        return len(self.migration_users)

    @property
    def mbytes_read(self) -> float:
        return bytes_to_mbytes(self.bytes_read)

    @property
    def mbytes_written(self) -> float:
        return bytes_to_mbytes(self.bytes_written)

    @property
    def mbytes_read_from_directories(self) -> float:
        return bytes_to_mbytes(self.directory_bytes_read)


def compute_table1(
    name: str, records: Iterable[TraceRecord], duration: float
) -> TraceStatistics:
    """Scan one trace and produce its Table 1 row."""
    stats = TraceStatistics(name=name, duration_hours=duration / HOUR)
    for record in records:
        user = getattr(record, "user_id", None)
        if user is not None and user >= 0:
            stats.users.add(user)
            if getattr(record, "migrated", False):
                stats.migration_users.add(user)
        if isinstance(record, OpenRecord):
            stats.open_events += 1
        elif isinstance(record, CloseRecord):
            stats.close_events += 1
        elif isinstance(record, ReadRunRecord):
            stats.bytes_read += record.length
        elif isinstance(record, WriteRunRecord):
            stats.bytes_written += record.length
        elif isinstance(record, RepositionRecord):
            stats.reposition_events += 1
        elif isinstance(record, DeleteRecord):
            stats.delete_events += 1
        elif isinstance(record, TruncateRecord):
            stats.truncate_events += 1
        elif isinstance(record, SharedReadRecord):
            stats.shared_read_events += 1
        elif isinstance(record, SharedWriteRecord):
            stats.shared_write_events += 1
        elif isinstance(record, DirectoryReadRecord):
            stats.directory_bytes_read += record.length
    return stats


#: Table 1 row labels, in the paper's order, with accessor names.
_ROWS: tuple[tuple[str, str], ...] = (
    ("Trace duration (hours)", "duration_hours"),
    ("Different users", "different_users"),
    ("Users of migration", "users_of_migration"),
    ("Mbytes read from files", "mbytes_read"),
    ("Mbytes written to files", "mbytes_written"),
    ("Mbytes read from directories", "mbytes_read_from_directories"),
    ("Open events", "open_events"),
    ("Close events", "close_events"),
    ("Reposition events", "reposition_events"),
    ("Delete events", "delete_events"),
    ("Truncate events", "truncate_events"),
    ("Shared Read events", "shared_read_events"),
    ("Shared Write events", "shared_write_events"),
)


def render_table1(
    per_trace: list[TraceStatistics],
    title: str = "Table 1. Overall trace statistics",
    note: str | None = (
        "Synthetic traces; totals scale with the generation `scale` "
        "factor (multiply by 1/scale to compare with the paper)."
    ),
) -> str:
    """Render all traces side by side, like the paper's Table 1.

    The per-server breakdown reuses the same renderer with one
    *server's* pooled statistics per column instead of one trace's.
    """
    headers = ["Statistic"] + [stats.name for stats in per_trace]
    rows = []
    for label, attr in _ROWS:
        row = [label]
        for stats in per_trace:
            value = getattr(stats, attr)
            row.append(format_number(float(value), 1))
        rows.append(row)
    return render_table(title, headers, rows, note=note)
