"""At-most-once RPC over a lossy message channel.

Every client<->server interaction -- opens, closes and other naming
operations, block fetches, writebacks, recovery RPCs, and the server's
recall/cache-disable callbacks -- is a :class:`Message` carried through
a seeded :class:`Channel` that can drop, duplicate, hold back
(reorder), and delay packets at the rates in
:class:`~repro.fs.faults.FaultConfig`.  On top of the channel sits a
classic at-most-once RPC layer:

* **sequence numbers** -- each client stamps requests from a private
  counter; retransmissions reuse the original stamp;
* **duplicate suppression** -- the server keeps a bounded per-client
  reply cache (:class:`DedupCache`).  A duplicate of an executed
  request replays the recorded reply without re-executing; a request
  older than the retention window is *dropped* -- never re-executed and
  never answered from someone else's reply (replaying after eviction is
  the classic at-most-once bug);
* **retransmission** -- a client that misses a reply resends with the
  same exponential backoff policy the outage path uses
  (:class:`BackoffPolicy`), booking the backoff as stall time.

Timing follows the simulator's open-loop convention: a message-level
fault never advances the global clock.  Retransmission backoff and
channel delays are booked into the stall counters, and the operation
executes logically at the moment it was issued -- so with every channel
rate at zero the transport is pure dispatch: no randomness is consumed,
no counter moves, and replays are byte-identical to the pre-transport
engine.

Reordering in a synchronous RPC world appears as *stragglers*: a held-
back packet is not delivered now but surfaces later, just before the
channel carries its next message -- by which point newer sequence
numbers have executed, so the straggler exercises the duplicate-
suppression path for real (an out-of-order delivery must be suppressed,
not re-executed).

Per-channel RNG streams are forked from the cluster seed by name, so a
replay draws the same channel randomness no matter how many worker
processes run alongside it.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import SimulationError
from repro.common.rng import RngStream
from repro.fs.faults import FaultConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.fs.client import ClientKernel
    from repro.fs.oracle import ProtocolOracle
    from repro.fs.server import Server

#: Resends before the transport stops simulating losses and delivers
#: anyway.  The channel is "eventually reliable" (like TCP over a lossy
#: link): the cap bounds the simulated retransmissions, not delivery,
#: so degenerate configs (loss rate 1.0) still terminate.
MAX_ATTEMPTS = 64

#: Replies retained per client by the duplicate-suppression cache.
#: With synchronous clients only stragglers ever look further back than
#: one sequence number, so a small window is plenty.
DEFAULT_DEDUP_RETENTION = 32


class BackoffPolicy:
    """The exponential-backoff retransmission policy.

    One object serves both transport paths: message-loss retransmits
    (real resends through the channel) and outage stalls (where the
    resend loop runs against a server known to be down until a given
    time, so every attempt before that time fails deterministically).
    """

    __slots__ = ("initial", "factor", "cap")

    def __init__(self, initial: float, factor: float, cap: float) -> None:
        self.initial = initial
        self.factor = factor
        self.cap = cap

    @classmethod
    def from_config(cls, config: FaultConfig) -> "BackoffPolicy":
        return cls(
            config.rpc_initial_backoff,
            config.rpc_backoff_factor,
            config.rpc_max_backoff,
        )

    def next_delay(self, delay: float | None) -> float:
        """The delay after ``delay`` (``None`` -> the first delay)."""
        if delay is None:
            return self.initial
        return min(delay * self.factor, self.cap)

    def attempts_for_wait(self, wait: float) -> int:
        """Resends the loop makes while the server stays unreachable for
        ``wait`` seconds (at least one).  The attempt that succeeds --
        fired the moment the server's recovery notification arrives,
        cutting the pending backoff short -- is not counted."""
        delay = self.initial
        elapsed = 0.0
        attempts = 0
        while elapsed < wait:
            attempts += 1
            elapsed += delay
            delay = min(delay * self.factor, self.cap)
        return max(1, attempts)


@dataclass(slots=True)
class Message:
    """One packet on the wire."""

    seq: int
    client_id: int
    op: str
    args: tuple
    #: > 0 on resends of the same (client, seq).
    attempt: int = 0


class Delivery(enum.Enum):
    """What the channel did with one transmission."""

    DELIVERED = "delivered"
    DROPPED = "dropped"
    #: Held back: surfaces later, out of order (see ``Channel.drain``).
    STRAGGLED = "straggled"


class Channel:
    """One client's lossy link to the server.

    A channel with every rate at zero (``rng`` may then be ``None``)
    never draws randomness and delivers everything immediately -- the
    inert default.  Rates are drawn in a fixed order (loss, reorder,
    duplicate, delay) so the draw count per transmission is
    deterministic.
    """

    __slots__ = (
        "faults", "rng", "lossy", "_stragglers",
        "messages_sent", "messages_dropped", "messages_duplicated",
        "messages_straggled", "delay_seconds",
    )

    def __init__(self, faults: FaultConfig, rng: RngStream | None) -> None:
        if faults.any_network_faults and rng is None:
            raise SimulationError("a lossy channel needs an RNG stream")
        self.faults = faults
        self.rng = rng
        self.lossy = faults.any_network_faults
        #: Held-back messages awaiting out-of-order delivery.
        self._stragglers: list[Message] = []
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_straggled = 0
        self.delay_seconds = 0.0

    def transmit(self, message: Message) -> tuple[Delivery, int, float]:
        """Send one message; returns (outcome, copies delivered, delay).

        ``copies`` counts extra duplicate deliveries (0 or 1) on top of
        the principal delivery; it is zero unless the outcome is
        DELIVERED.
        """
        self.messages_sent += 1
        if not self.lossy:
            return Delivery.DELIVERED, 0, 0.0
        faults = self.faults
        rng = self.rng
        if faults.message_loss_rate and rng.random() < faults.message_loss_rate:
            self.messages_dropped += 1
            return Delivery.DROPPED, 0, 0.0
        if faults.message_reorder_rate and rng.random() < faults.message_reorder_rate:
            self.messages_straggled += 1
            self._stragglers.append(message)
            return Delivery.STRAGGLED, 0, 0.0
        copies = 0
        if faults.message_duplicate_rate and rng.random() < faults.message_duplicate_rate:
            self.messages_duplicated += 1
            copies = 1
        delay = 0.0
        if faults.message_delay_rate and rng.random() < faults.message_delay_rate:
            delay = rng.exponential(faults.message_delay_mean)
            self.delay_seconds += delay
        return Delivery.DELIVERED, copies, delay

    def transmit_reply(self) -> tuple[bool, float]:
        """Carry a reply back; returns (delivered, delay).

        Replies draw loss and delay only: a duplicated reply is ignored
        by the client and a held-back reply is indistinguishable from a
        delayed one, so neither needs separate modelling.
        """
        self.messages_sent += 1
        if not self.lossy:
            return True, 0.0
        faults = self.faults
        rng = self.rng
        if faults.message_loss_rate and rng.random() < faults.message_loss_rate:
            self.messages_dropped += 1
            return False, 0.0
        delay = 0.0
        if faults.message_delay_rate and rng.random() < faults.message_delay_rate:
            delay = rng.exponential(faults.message_delay_mean)
            self.delay_seconds += delay
        return True, delay

    def drain(self) -> list[Message]:
        """Surface held-back messages.  Called before the channel
        carries its next message, so stragglers arrive after newer
        traffic -- a genuine out-of-order delivery."""
        if not self._stragglers:
            return []
        late = self._stragglers
        self._stragglers = []
        return late


class DedupStatus(enum.Enum):
    """How the duplicate-suppression cache classifies an arrival."""

    NEW = "new"              # execute it
    DUPLICATE = "duplicate"  # replay the recorded reply
    STALE = "stale"          # already executed but evicted: drop silently


class DedupCache:
    """Bounded per-client reply retention for at-most-once execution.

    For each client the cache remembers the highest executed sequence
    number and the replies of the most recent ``retention`` requests.
    Arrivals classify as:

    * ``NEW`` -- a sequence number above the high-water mark: execute;
    * ``DUPLICATE`` -- executed and still retained: replay the reply;
    * ``STALE`` -- at or below the high-water mark but evicted: the
      request already executed, its reply is gone, so the only safe
      answer is silence.  Replaying some *other* retained reply here
      would hand the client an answer to the wrong request -- the
      eviction bug this class exists to rule out.
    """

    __slots__ = ("retention", "_replies", "_high", "suppressed",
                 "replayed", "stale_dropped", "evictions")

    def __init__(self, retention: int = DEFAULT_DEDUP_RETENTION) -> None:
        if retention < 1:
            raise SimulationError(f"dedup retention must be >= 1, got {retention}")
        self.retention = retention
        #: client -> seq -> recorded reply, oldest first.
        self._replies: dict[int, OrderedDict[int, Any]] = {}
        #: client -> highest executed sequence number.
        self._high: dict[int, int] = {}
        self.suppressed = 0
        self.replayed = 0
        self.stale_dropped = 0
        self.evictions = 0

    def classify(self, client_id: int, seq: int) -> tuple[DedupStatus, Any]:
        """Classify an arrival; returns (status, retained reply or None)."""
        high = self._high.get(client_id)
        if high is None or seq > high:
            return DedupStatus.NEW, None
        retained = self._replies.get(client_id)
        if retained is not None and seq in retained:
            self.suppressed += 1
            self.replayed += 1
            return DedupStatus.DUPLICATE, retained[seq]
        self.suppressed += 1
        self.stale_dropped += 1
        return DedupStatus.STALE, None

    def record(self, client_id: int, seq: int, reply: Any) -> None:
        """Remember an executed request's reply, evicting beyond the
        retention bound."""
        self._high[client_id] = max(self._high.get(client_id, -1), seq)
        retained = self._replies.setdefault(client_id, OrderedDict())
        retained[seq] = reply
        while len(retained) > self.retention:
            retained.popitem(last=False)
            self.evictions += 1

    def forget_client(self, client_id: int) -> None:
        """A server crash loses the (volatile) reply cache for everyone;
        a client reboot restarts its sequence space."""
        self._replies.pop(client_id, None)
        self._high.pop(client_id, None)


class ServerEndpoint:
    """The server side of the transport: dispatch + duplicate
    suppression + oracle notification.

    One endpoint serves all clients (the dedup cache is server state).
    It attaches itself to the :class:`~repro.fs.server.Server` so
    independently constructed :class:`RpcTransport`\\ s share it.
    """

    def __init__(
        self,
        server: "Server",
        oracle: "ProtocolOracle | None" = None,
        retention: int = DEFAULT_DEDUP_RETENTION,
    ) -> None:
        self.server = server
        self.oracle = oracle
        self.dedup = DedupCache(retention)
        self._ops: dict[str, Callable] = {
            "open_file": server.open_file,
            "close_file": server.close_file,
            "fetch_block": server.fetch_block,
            "write_block": server.write_block,
            "passthrough_read": server.passthrough_read,
            "passthrough_write": server.passthrough_write,
            "paging_transfer": server.paging_transfer,
            "name_operation": server.name_operation,
            # note_written_back takes no timestamp; adapt the dispatch shape.
            "note_written_back": (
                lambda now, file_id, client_id:
                server.note_written_back(file_id, client_id)
            ),
            "reopen_file": server.reopen_file,
            "revalidate_file": server.revalidate_file,
            "delete_file": self._delete_file,
            # Replication plane (repro.fs.replication): keep the other
            # live replicas' registrations and version stamps convergent
            # with the op the serving replica just executed.
            "replica_open": server.replica_open,
            "replica_close": server.replica_close,
        }

    @classmethod
    def attach(
        cls, server: "Server", oracle: "ProtocolOracle | None" = None
    ) -> "ServerEndpoint":
        """Get the server's endpoint, creating it on first use."""
        endpoint = getattr(server, "rpc_endpoint", None)
        if endpoint is None:
            endpoint = cls(server, oracle)
            server.rpc_endpoint = endpoint
        elif oracle is not None:
            endpoint.oracle = oracle
        return endpoint

    def _delete_file(self, now: float, file_id: int) -> None:
        """A delete/truncate naming RPC: one message, both effects."""
        self.server.name_operation(now)
        self.server.invalidate_file(file_id)

    def execute(self, now: float, client_id: int, op: str, args: tuple) -> Any:
        """Run one operation (no dedup -- the inert fast path)."""
        reply = self._ops[op](now, *args)
        if self.oracle is not None:
            self.oracle.on_execute(
                now, client_id, -1, op, args, reply,
                server_id=self.server.server_id,
            )
        return reply

    def receive(self, now: float, message: Message) -> tuple[bool, Any]:
        """One message arrives; returns (answered, reply).

        ``answered`` is False only for STALE arrivals, which are dropped
        without a reply (and without re-execution).

        The suppression state deliberately survives server crashes: the
        reopen protocol rebuilds per-client RPC state alongside the
        open-file registrations, so a straggler from before a crash is
        still recognised as old -- without this, a reboot would re-open
        the at-most-once hole the cache exists to close.
        """
        status, retained = self.dedup.classify(message.client_id, message.seq)
        counters = self.server.counters
        if status is DedupStatus.DUPLICATE:
            counters.duplicate_rpcs_suppressed += 1
            counters.rpc_replies_replayed += 1
            return True, retained
        if status is DedupStatus.STALE:
            counters.duplicate_rpcs_suppressed += 1
            counters.stale_rpcs_dropped += 1
            return False, None
        reply = self._ops[message.op](now, *message.args)
        evictions_before = self.dedup.evictions
        self.dedup.record(message.client_id, message.seq, reply)
        counters.dedup_evictions += self.dedup.evictions - evictions_before
        if self.oracle is not None:
            self.oracle.on_execute(
                now, message.client_id, message.seq, message.op,
                message.args, reply,
                server_id=self.server.server_id,
            )
        return True, reply


class RpcTransport:
    """The client side: sequence numbers, retransmission, stall
    accounting, and the outage gate.

    With an inert channel and no oracle, :meth:`call` is a dict lookup
    and a method call -- the transport must cost nothing when it is
    configured to do nothing.
    """

    def __init__(
        self,
        client: "ClientKernel",
        server: "Server",
        faults: FaultConfig,
        rng: RngStream | None = None,
        oracle: "ProtocolOracle | None" = None,
    ) -> None:
        self.client = client
        self.server = server
        self.faults = faults
        self.channel = Channel(faults, rng)
        self.endpoint = ServerEndpoint.attach(server, oracle)
        self.backoff = BackoffPolicy.from_config(faults)
        self._seq = 0
        #: Fast path: no message faults and no oracle to notify.
        self._direct = not self.channel.lossy and oracle is None
        #: Prebound op table for the fast path: a direct call skips the
        #: execute() frame entirely (the oracle re-check in call() keeps
        #: an endpoint that gains an oracle later on the slow path).
        self._endpoint_ops = self.endpoint._ops
        #: Optional observability hook (repro.obs); None keeps call()
        #: on its unobserved paths, byte-identical to an obs-free build.
        self.obs = None

    @property
    def oracle(self) -> "ProtocolOracle | None":
        return self.endpoint.oracle

    def call(self, now: float, op: str, *args: Any) -> Any:
        """Issue one RPC and return its reply (at-most-once executed)."""
        if self.obs is not None:
            return self._call_observed(now, op, args)
        if self._direct:
            if self.endpoint.oracle is None:
                return self._endpoint_ops[op](now, *args)
            return self.endpoint.execute(now, self.client.client_id, op, args)
        return self._call_messaged(now, op, args)

    def _call_observed(self, now: float, op: str, args: tuple) -> Any:
        """The observed path: measure the round-trip as the stall this
        call books (channel delays + backoff; zero on the direct path,
        where the reply is logically instantaneous) and mirror it into
        the latency histogram and the event trace."""
        counters = self.client.counters
        stall_before = counters.stall_seconds
        retrans_before = counters.rpc_retransmissions
        if self._direct:
            reply = self.endpoint.execute(now, self.client.client_id, op, args)
        else:
            reply = self._call_messaged(now, op, args)
        self.obs.on_rpc_call(
            now, self.client.client_id, op,
            counters.stall_seconds - stall_before,
            counters.rpc_retransmissions - retrans_before,
        )
        return reply

    def _call_messaged(self, now: float, op: str, args: tuple) -> Any:
        counters = self.client.counters
        channel = self.channel
        message = Message(
            seq=self._seq, client_id=self.client.client_id, op=op, args=args
        )
        self._seq += 1
        delay: float | None = None
        attempt = 0
        while True:
            # Out-of-order traffic surfaces first: stragglers arrive
            # behind newer messages and must be suppressed, not rerun.
            for late in channel.drain():
                self.endpoint.receive(now, late)
            message.attempt = attempt
            if attempt > 0:
                counters.rpc_retransmissions += 1
                if self.obs is not None:
                    self.obs.on_rpc_retransmit(
                        now, self.client.client_id, op, attempt
                    )
            outcome, copies, net_delay = channel.transmit(message)
            if channel.lossy:
                counters.rpc_messages_sent += 1
            if outcome is Delivery.DELIVERED:
                if net_delay > 0.0:
                    counters.rpc_delay_seconds += net_delay
                    counters.stall_seconds += net_delay
                answered, reply = self.endpoint.receive(now, message)
                for _ in range(copies):
                    # The duplicate arrives right behind the original
                    # and is suppressed by the reply cache.
                    self.endpoint.receive(now, message)
                if answered:
                    # The reply crosses the same lossy link.
                    delivered, reply_delay = channel.transmit_reply()
                    if channel.lossy:
                        counters.rpc_messages_sent += 1
                    if delivered:
                        if reply_delay > 0.0:
                            counters.rpc_delay_seconds += reply_delay
                            counters.stall_seconds += reply_delay
                        return reply
                    counters.rpc_replies_lost += 1
                    if self.obs is not None:
                        self.obs.on_rpc_reply_lost(
                            now, self.client.client_id, op
                        )
                # No reply (lost, straggled, or a stale drop): fall
                # through to the retransmission path below.
            if attempt + 1 >= MAX_ATTEMPTS:
                # Eventually-reliable floor: stop simulating losses.
                answered, reply = self.endpoint.receive(now, message)
                return reply if answered else None
            delay = self.backoff.next_delay(delay)
            counters.stall_seconds += delay
            attempt += 1

    # --- the outage gate -------------------------------------------------------

    def outage_resend_loop(self, wait: float) -> int:
        """Run the retransmission loop against a server known to be
        unreachable for ``wait`` more seconds.

        Every resend before the outage ends fails -- deterministically,
        no randomness -- and the attempt fired when the recovery
        notification arrives succeeds, cutting the pending backoff
        short.  Returns the number of failed resends; the caller books
        them (and the ``wait`` itself) into the fault counters.
        """
        return self.backoff.attempts_for_wait(wait)

    # --- server -> client callbacks --------------------------------------------

    def deliver_callback(self, now: float, apply: Callable[[], None],
                         kind: str, file_id: int) -> None:
        """Carry a server-initiated callback (recall, cache disable)
        over this client's channel.

        Callbacks are retried on loss until delivered (the server blocks
        the triggering open on them, so they use stall semantics);
        duplicates and stragglers are not modelled for callbacks -- the
        server sends them at most once per triggering event, and an
        at-least-once retry with an idempotent body is safe.
        """
        channel = self.channel
        counters = self.client.counters
        attempt = 0
        delay: float | None = None
        while channel.lossy:
            counters.rpc_messages_sent += 1
            if channel.rng.random() >= self.faults.message_loss_rate:
                break
            channel.messages_dropped += 1
            if attempt + 1 >= MAX_ATTEMPTS:
                break
            delay = self.backoff.next_delay(delay)
            counters.stall_seconds += delay
            counters.rpc_retransmissions += 1
            attempt += 1
        apply()
        if self.endpoint.oracle is not None:
            self.endpoint.oracle.on_callback(now, self.client, kind, file_id)
