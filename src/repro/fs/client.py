"""The client kernel: cache management, delayed writes, consistency.

Implements the client half of Sprite's caching mechanism:

* 4-Kbyte blocks cached on read and write, LRU replacement;
* cache size negotiated with the VM model (grow by claiming free or
  20-minute-aged pages, shrink when VM demand spikes);
* 30-second delayed writes, scanned every 5 seconds by a daemon; when
  any block of a file is 30 seconds dirty, *all* the file's dirty
  blocks are written (Section 5.4);
* fsync write-through on application request;
* consistency actions: flush stale blocks on version mismatch at open,
  honour server recalls, bypass the cache entirely for files under
  concurrent write-sharing;
* fault handling: RPC retry with exponential backoff while the server
  is crashed or the network partitioned, graceful degradation (stall or
  fail) when the timeout expires, and Sprite's stateful recovery sweep
  (reopen, revalidate, replay overdue writes) when the server returns.

The replay is open-loop, so a "stalled" operation books its retries and
stall time in the counters and then executes -- logically at the moment
the server came back -- without advancing the global clock (see
:mod:`repro.fs.faults` for the conventions).
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import SimulationError
from repro.common.rng import RngStream
from repro.fs.cache import BlockCache, CacheBlock, CleanReason
from repro.fs.config import ClusterConfig
from repro.fs.counters import ClientCounters
from repro.fs.oracle import ProtocolOracle
from repro.fs.rpc import RpcTransport
from repro.fs.server import Server
from repro.fs.sharding import MachineRoster, Placement
from repro.sim.engine import Engine
from repro.sim.timers import RecurringTimer, SharedTicker

# Bound counter positions for the hot paths.  The generated attribute
# properties cost a Python call per bump; the per-block loops below bump
# the flat value list directly through these indexes instead (see
# ClientCounters.INDEX).
_IDX = ClientCounters.INDEX
_FILE_OPEN_OPS = _IDX["file_open_ops"]
_FILE_BYTES_READ = _IDX["file_bytes_read"]
_FILE_BYTES_WRITTEN = _IDX["file_bytes_written"]
_SHARED_BYTES_READ = _IDX["shared_bytes_read"]
_SHARED_BYTES_WRITTEN = _IDX["shared_bytes_written"]
_PAGING_CODE_BYTES = _IDX["paging_code_bytes"]
_PAGING_DATA_BYTES = _IDX["paging_data_bytes"]
_CACHE_READ_OPS = _IDX["cache_read_ops"]
_CACHE_READ_MISSES = _IDX["cache_read_misses"]
_CACHE_READ_MISS_BYTES = _IDX["cache_read_miss_bytes"]
_CACHE_WRITE_OPS = _IDX["cache_write_ops"]
_CACHE_WRITE_BYTES = _IDX["cache_write_bytes"]
_WRITE_FETCH_OPS = _IDX["write_fetch_ops"]
_WRITE_FETCH_BYTES = _IDX["write_fetch_bytes"]
_MIGRATED_READ_OPS = _IDX["migrated_read_ops"]
_MIGRATED_READ_MISSES = _IDX["migrated_read_misses"]
_MIGRATED_READ_BYTES = _IDX["migrated_read_bytes"]
_MIGRATED_READ_MISS_BYTES = _IDX["migrated_read_miss_bytes"]
_MIGRATED_WRITE_OPS = _IDX["migrated_write_ops"]
_MIGRATED_WRITE_BYTES = _IDX["migrated_write_bytes"]
_MIGRATED_WRITE_FETCH_OPS = _IDX["migrated_write_fetch_ops"]
_PAGING_READ_OPS = _IDX["paging_read_ops"]
_PAGING_READ_MISSES = _IDX["paging_read_misses"]
_PAGING_READ_MISS_BYTES = _IDX["paging_read_miss_bytes"]
_STALE_READS_SERVED = _IDX["stale_reads_served"]
_STALE_READ_BYTES = _IDX["stale_read_bytes"]
_BLOCKS_DIRTIED = _IDX["blocks_dirtied"]
_BYTES_WRITTEN_TO_SERVER = _IDX["bytes_written_to_server"]
_BLOCKS_REPLACED_FOR_FILE = _IDX["blocks_replaced_for_file"]
_REPLACE_AGE_SUM_FILE = _IDX["replace_age_sum_file"]
_FAILOVER_READS = _IDX["failover_reads"]
_REPLICA_WRITEBACK_BLOCKS = _IDX["replica_writeback_blocks"]
_CHECKSUM_FAILURES = _IDX["checksum_failures"]
#: CleanReason -> (count index, age-sum index) for _clean_block.
_CLEAN_IDX = {
    CleanReason.DELAY: (_IDX["blocks_cleaned_delay"], _IDX["clean_age_sum_delay"]),
    CleanReason.FSYNC: (_IDX["blocks_cleaned_fsync"], _IDX["clean_age_sum_fsync"]),
    CleanReason.RECALL: (
        _IDX["blocks_cleaned_recall"], _IDX["clean_age_sum_recall"]
    ),
    CleanReason.VM: (_IDX["blocks_cleaned_vm"], _IDX["clean_age_sum_vm"]),
    CleanReason.RECOVERY: (
        _IDX["blocks_cleaned_recovery"], _IDX["clean_age_sum_recovery"]
    ),
}


def _shard_zero(file_id: int) -> int:
    """``_shard_of`` for single-server clusters (bound per instance)."""
    return 0


class ClientKernel:
    """One diskless Sprite client.

    Every server interaction goes through a per-shard
    :class:`~repro.fs.rpc.RpcTransport`: at-most-once RPC over a seeded
    lossy channel.  ``server`` may be a single :class:`Server` (the
    classic cluster; also what most unit tests build) or the cluster's
    list of shards, in which case ``placement`` routes each file's
    traffic to its server and ``channel_rng`` may be a matching sequence
    of streams.  ``oracle`` attaches the protocol-invariant oracle.

    :attr:`server` and :attr:`transport` remain as shard-0 aliases so
    single-server call sites read exactly as before.
    """

    def __init__(
        self,
        client_id: int,
        config: ClusterConfig,
        engine: Engine,
        server: Server | Sequence[Server],
        vm,
        channel_rng: RngStream | Sequence[RngStream | None] | None = None,
        oracle: ProtocolOracle | None = None,
        placement: Placement | None = None,
        ticker: SharedTicker | None = None,
        replication=None,
        integrity=None,
        paging_shard: int | None = None,
    ) -> None:
        self.client_id = client_id
        self.config = config
        self.engine = engine
        if isinstance(server, Server):
            servers: Sequence[Server] = [server]
        elif isinstance(server, MachineRoster):
            # A grouped cluster hands each client its group's server
            # slice as a roster: global ids and global len(), owned
            # (slice) iteration, loud refusal of foreign servers.
            servers = server
        else:
            servers = list(server)
        self.servers = servers
        #: The shard implied when a caller names no server: the first
        #: server this client can actually reach (shard 0 classically,
        #: the slice's first server for a grouped client).
        self._default_server = next(iter(servers))
        self.placement = (
            placement if placement is not None else Placement(len(servers))
        )
        self.vm = vm
        if channel_rng is None or isinstance(channel_rng, RngStream):
            channel_rngs: list[RngStream | None] = [channel_rng] * len(servers)
        else:
            channel_rngs = list(channel_rng)
        transports = [
            RpcTransport(self, shard, config.faults, rng=rng, oracle=oracle)
            for shard, rng in zip(servers, channel_rngs)
        ]
        self.transports: Sequence[RpcTransport] = (
            servers.like(transports, kind="transport to server")
            if isinstance(servers, MachineRoster) else transports
        )
        #: Backing-file paging is pinned to one shard per client (a
        #: process's backing file lives on a single server).  Grouped
        #: clusters pass an explicit shard so the pin stays inside the
        #: client's group slice.
        self._paging_shard = (
            paging_shard if paging_shard is not None
            else client_id % len(servers)
        )
        self.counters = ClientCounters()
        self.cache = BlockCache(config.block_size)
        #: Optional observability hook (repro.obs); every use is guarded
        #: so None (the default) leaves all code paths untouched.
        self.obs = None
        self._known_version: dict[int, int] = {}
        self._uncacheable: set[int] = set()
        # The 5-second writeback daemon.  Inside a cluster every client
        # shares one coalesced tick (one heap event per interval for the
        # whole cluster); standalone clients keep a private timer.
        if ticker is not None:
            self._daemon = ticker.subscribe(self._writeback_scan)
        else:
            self._daemon = RecurringTimer(
                engine, config.writeback_scan_interval, self._writeback_scan
            )
            self._daemon.start()
        self._max_cache_blocks = max(
            1, int(config.client_page_count * config.max_cache_fraction)
        )
        #: Pages granted by VM but not currently holding a block
        #: (freed by invalidations; the cache keeps them greedily).
        self._spare_pages = 0
        #: Fault state.  ``epoch`` increments on every crash so the
        #: cluster can drop closes whose opens died with the machine.
        self.up = True
        self.epoch = 0
        self.partition_until = 0.0
        #: file_id -> [read opens, write opens] held by this client;
        #: what the reopen protocol re-registers after a server crash.
        self._open_files: dict[int, list[int]] = {}
        if len(servers) == 1:
            # Single-server cluster: every file lives on shard 0, so
            # skip the placement hash (an instance attribute shadows
            # the method -- it is called on every open/close/read/write).
            self._shard_of = _shard_zero
        #: Replication (repro.fs.replication).  ``_route`` is the
        #: serving-shard picker every per-file operation uses: without a
        #: manager it *is* ``_shard_of`` (zero new cost, byte-identical
        #: routing); with one it prefers the first live replica.
        self._replication = replication
        self._replicated = replication is not None
        #: Integrity layer (repro.fs.integrity); None (the default)
        #: keeps every read/write path exactly as before.
        self.integrity = integrity
        self._routed_failover = False
        if self._replicated:
            self._route = self._route_replicated
        else:
            self._route = self._shard_of

    # --- shard routing -----------------------------------------------------------

    @property
    def server(self) -> Server:
        """Shard 0 -- *the* server when the cluster has one."""
        return self.servers[0]

    @property
    def transport(self) -> RpcTransport:
        """Shard 0's transport (the only one in a classic cluster)."""
        return self.transports[0]

    def _shard_of(self, file_id: int) -> int:
        # Shadowed by ``_shard_zero`` on single-server clusters.
        return self.placement.shard_of(file_id)

    def _server_for(self, file_id: int) -> Server:
        return self.servers[self.placement.shard_of(file_id)]

    def _transport_for(self, file_id: int) -> RpcTransport:
        return self.transports[self.placement.shard_of(file_id)]

    def _route_replicated(self, file_id: int) -> int:
        """The serving shard under replication: the primary while it is
        up, else the first live replica (a failover), else the replica
        that recovers soonest (the op stalls against it, executing
        logically at its recovery -- so its pending pushes land first).
        ``_route`` binds to this only when a replication manager exists.
        """
        manager = self._replication
        replicas = manager.replica_map.replicas(file_id)
        servers = self.servers
        if servers[replicas[0]].up:
            self._routed_failover = False
            return replicas[0]
        for sid in replicas[1:]:
            if servers[sid].up:
                self._routed_failover = True
                self.counters.failover_ops += 1
                return sid
        self._routed_failover = False
        target = min(replicas, key=lambda s: servers[s].down_until)
        manager.flush_pending(target)
        return target

    def _propagate_open(
        self, now: float, file_id: int, served: int,
        will_write: bool, version: int,
    ) -> None:
        """Mirror a served open to the other replicas: registrations and
        the (possibly bumped) version stamp go to the live ones; a down
        replica gets the version queued in the pending log (its
        registrations are rebuilt by the reopen sweep at recovery)."""
        manager = self._replication
        skip = manager.skip_propagation_to
        for sid in manager.replica_map.replicas(file_id):
            if sid == served or sid in skip:
                continue
            if self.servers[sid].up:
                self.transports[sid].call(
                    now, "replica_open", file_id, self.client_id,
                    will_write, version,
                )
            elif will_write:
                manager.queue_pending(sid, file_id, version)

    def _propagate_close(
        self, now: float, file_id: int, served: int, wrote: bool
    ) -> None:
        """Mirror a served close to the other live replicas."""
        manager = self._replication
        skip = manager.skip_propagation_to
        for sid in manager.replica_map.replicas(file_id):
            if sid == served or sid in skip or not self.servers[sid].up:
                continue
            self.transports[sid].call(
                now, "replica_close", file_id, self.client_id, wrote
            )

    # --- consistency hooks -------------------------------------------------------

    def receive_cacheability(self, file_id: int, cacheable: bool) -> None:
        """Server callback: a cacheability change arrives as a message
        on this client's channel (lossy delivery, retried until it
        lands)."""
        now = self.engine.now
        self._transport_for(file_id).deliver_callback(
            now,
            lambda: self.set_cacheability(file_id, cacheable),
            "cache_disable" if not cacheable else "cache_enable",
            file_id,
        )

    def set_cacheability(self, file_id: int, cacheable: bool) -> None:
        """Server-driven: disable or re-enable caching for a file."""
        if cacheable:
            self._uncacheable.discard(file_id)
            return
        self._uncacheable.add(file_id)
        # Flush what we hold: dirty data goes back, everything drops.
        if self.has_dirty_data(file_id):
            self._clean_file(self.engine.now, file_id, CleanReason.RECALL)
        self._spare_pages += len(self.cache.invalidate_file(file_id))

    def has_dirty_data(self, file_id: int) -> bool:
        return bool(self.cache.dirty_blocks_of_file(file_id))

    def receive_recall(self, now: float, file_id: int) -> None:
        """Server callback: a dirty-data recall arrives as a message on
        this client's channel (lossy delivery, retried until it
        lands)."""
        self._transport_for(file_id).deliver_callback(
            now,
            lambda: self.recall_dirty_data(now, file_id),
            "recall",
            file_id,
        )

    def recall_dirty_data(self, now: float, file_id: int) -> None:
        """The server recalls this client's dirty data for a file."""
        self._clean_file(now, file_id, CleanReason.RECALL)

    # --- faults and recovery -------------------------------------------------------

    def reachable(self, now: float) -> bool:
        """Can the server reach this client right now?"""
        return self.up and now >= self.partition_until

    def _unavailable_until(self, now: float, server: Server | None = None) -> float:
        """When ``server`` (this client's default shard when omitted)
        becomes reachable again (== ``now`` if it already is)."""
        if server is None:
            server = self._default_server
        until = now
        if not server.up:
            until = max(until, server.down_until)
        if now < self.partition_until:
            until = max(until, self.partition_until)
        return until

    def await_server(self, now: float, data_op: bool = False, shard: int = 0) -> bool:
        """Gate one operation on the availability of server ``shard``.

        Returns True when the operation may proceed (immediately, or
        after a booked stall), False when a data operation gives up
        under ``degraded_mode="fail"``.  Naming operations always
        stall -- Sprite's opens and closes cannot be dropped.  One shard
        being down never gates traffic to the others.
        """
        until = self._unavailable_until(now, self.servers[shard])
        if until <= now:
            return True
        faults = self.config.faults
        wait = until - now
        transport = self.transports[shard]
        if wait <= faults.rpc_timeout or not data_op or faults.degraded_mode == "stall":
            self.counters.rpc_retries += transport.outage_resend_loop(wait)
            self.counters.stall_seconds += wait
            if self.obs is not None:
                self.obs.on_stall(now, self.client_id, wait, "outage")
            return True
        self.counters.rpc_retries += transport.outage_resend_loop(
            faults.rpc_timeout
        )
        self.counters.stall_seconds += faults.rpc_timeout
        self.counters.rpc_failed_ops += 1
        if self.obs is not None:
            self.obs.on_stall(
                now, self.client_id, faults.rpc_timeout, "timeout"
            )
        return False

    def crash(self, now: float) -> None:
        """This machine dies.  Every cached block -- including dirty
        data the 30-second delay had not yet written back -- is lost;
        that loss is the paper's headline delayed-write caveat."""
        self.counters.crashes += 1
        self.epoch += 1
        self.up = False
        block_size = self.config.block_size
        victims = self.cache.clear()
        for block in victims:
            if block.dirty:
                self.counters.lost_dirty_blocks += 1
                self.counters.lost_dirty_bytes += max(
                    1, min(block.written_end, block_size)
                )
        # The reboot keeps the machine's memory: pages the VM had lent
        # to the cache stay lent, just empty.
        self._spare_pages += len(victims)
        self._known_version.clear()
        self._uncacheable.clear()
        self._open_files.clear()

    def reboot(self, now: float) -> None:
        """The machine comes back with a cold cache."""
        self.up = True

    def partition(self, now: float, until: float) -> None:
        """The network cuts this client off from the server until
        ``until`` (overlapping partitions extend the window)."""
        if now >= self.partition_until:
            self.counters.partitions += 1
        self.partition_until = max(self.partition_until, until)

    def heal_partition(self, now: float) -> None:
        """The partition ends; re-validate what we kept cached and
        replay writes that came due while cut off."""
        if now < self.partition_until or not self.up:
            return  # extended by a later partition, or machine is down
        if not any(server.up for server in self.servers):
            return  # still unreachable; the server recovery sweep will run
        # Sweep only the shards that are up; a shard still crashed will
        # drive its own sweep through ``on_server_recovered``.
        self._revalidate_cached_files(now)
        self._replay_overdue_writes(now)

    def on_server_recovered(self, now: float, server_id: int = 0) -> None:
        """Sprite's stateful reopen protocol, client side, for the
        recovered shard.

        Re-register every open file on that server, re-validate every
        cached file against its durable version stamps, and replay dirty
        blocks whose writeback came due during the outage.  No cached
        block survives recovery without re-validation.  Files on other
        shards are untouched -- their servers never lost state.
        """
        if not self.up or now < self.partition_until:
            return  # unreachable clients recover later (reboot or heal)
        # Files that were uncacheable are re-evaluated from scratch:
        # the server lost the sharing state and the reopens below
        # rebuild it, broadcasting cache-disable for files still shared.
        self._uncacheable = {
            file_id
            for file_id in self._uncacheable
            if not self._hosted_on(file_id, server_id)
        }
        transport = self.transports[server_id]
        for file_id in sorted(self._open_files):
            if not self._hosted_on(file_id, server_id):
                continue
            reads, writes = self._open_files[file_id]
            if reads or writes:
                self.counters.reopen_rpcs += 1
                transport.call(
                    now, "reopen_file", file_id, self.client_id, reads, writes
                )
        self._revalidate_cached_files(now, server_id)
        self._replay_overdue_writes(now, server_id)

    def _hosted_on(self, file_id: int, server_id: int) -> bool:
        """Does ``server_id`` currently hold a replica of ``file_id``?
        (The file's one shard when unreplicated.)"""
        if self._replicated:
            return server_id in self._replication.replica_map.replicas(file_id)
        return self._shard_of(file_id) == server_id

    def _sweep_shard(self, file_id: int, server_id: int | None) -> int | None:
        """The shard a recovery sweep should talk to for ``file_id``,
        or None when the sweep does not cover the file.

        ``server_id`` None is the heal-partition sweep: it covers every
        file whose serving replica is up (the routed shard under
        replication).  An explicit id limits the sweep to files hosted
        on the server that just recovered, addressed directly.
        """
        if server_id is not None:
            return server_id if self._hosted_on(file_id, server_id) else None
        shard = self._route(file_id)
        return shard if self.servers[shard].up else None

    def _revalidate_cached_files(
        self, now: float, server_id: int | None = None
    ) -> None:
        """One validation RPC per cached file; drop blocks whose
        version no longer matches (dirty ones among them are lost --
        they conflict with writes accepted elsewhere)."""
        block_size = self.config.block_size
        for file_id in sorted(self.cache.resident_files()):
            shard = self._sweep_shard(file_id, server_id)
            if shard is None:
                continue
            self.counters.revalidate_rpcs += 1
            current = self.transports[shard].call(
                now, "revalidate_file", file_id
            )
            known = self._known_version.get(file_id)
            if known is not None and known == current:
                continue
            victims = self.cache.invalidate_file(file_id)
            for block in victims:
                if block.dirty:
                    self.counters.lost_dirty_blocks += 1
                    self.counters.lost_dirty_bytes += max(
                        1, min(block.written_end, block_size)
                    )
            self.counters.blocks_invalidated_on_recovery += len(victims)
            self._spare_pages += len(victims)
            self._known_version.pop(file_id, None)

    def _replay_overdue_writes(
        self, now: float, server_id: int | None = None
    ) -> None:
        """Write back dirty blocks whose 30-second deadline passed while
        the server was unreachable (the "replay un-acked writes" half of
        the reopen protocol)."""
        cutoff = now - self.config.writeback_delay
        overdue = self.cache.dirty_blocks_older_than(cutoff)
        for file_id in sorted({b.file_id for b in overdue}):
            shard = self._sweep_shard(file_id, server_id)
            if shard is None:
                continue
            self._clean_file(now, file_id, CleanReason.RECOVERY)
            self.transports[shard].call(
                now, "note_written_back", file_id, self.client_id
            )

    # --- opens and closes ---------------------------------------------------------

    def open_file(self, now: float, file_id: int, will_write: bool) -> bool:
        """Open a file; returns True if it is cacheable here.

        Flushes stale cached data when the server's version is newer
        than the version this cache was loaded from (the timestamp
        mechanism).
        """
        self.counters.file_open_ops += 1
        shard = self._route(file_id)
        # Naming op: always stalls through outages.
        self.await_server(now, shard=shard)
        reply = self.transports[shard].call(
            now, "open_file", file_id, self.client_id, will_write
        )
        if self._replicated:
            self._propagate_open(now, file_id, shard, will_write, reply.version)
        counts = self._open_files.get(file_id)
        if counts is None:
            counts = self._open_files[file_id] = [0, 0]
        counts[1 if will_write else 0] += 1
        known = self._known_version.get(file_id)
        expected = reply.version - 1 if will_write else reply.version
        if known is not None and known != expected and known != reply.version:
            # Our cached copy predates the current version: flush it.
            self._discard_stale_blocks(file_id)
        self._known_version[file_id] = reply.version
        if not reply.cacheable:
            self._uncacheable.add(file_id)
        return reply.cacheable

    def close_file(
        self, now: float, file_id: int, wrote: bool, fsync: bool = False
    ) -> None:
        """Close a file, optionally forcing its dirty data through."""
        shard = self._route(file_id)
        # Naming op: always stalls through outages.
        self.await_server(now, shard=shard)
        transport = self.transports[shard]
        if fsync and wrote:
            self._clean_file(now, file_id, CleanReason.FSYNC)
            transport.call(now, "note_written_back", file_id, self.client_id)
        transport.call(now, "close_file", file_id, self.client_id, wrote)
        if self._replicated:
            self._propagate_close(now, file_id, shard, wrote)
        counts = self._open_files.get(file_id)
        if counts is not None:
            counts[1 if wrote else 0] = max(0, counts[1 if wrote else 0] - 1)
            if counts == [0, 0]:
                del self._open_files[file_id]

    # --- reads and writes -----------------------------------------------------------

    def read(
        self,
        now: float,
        file_id: int,
        offset: int,
        length: int,
        migrated: bool = False,
        paging_kind: str | None = None,
    ) -> None:
        """Application (or pager) read of a byte range.

        ``paging_kind`` is ``"code"`` or ``"data"`` for cacheable page
        faults; ``None`` for ordinary file reads.
        """
        if length <= 0:
            return
        paging = paging_kind is not None
        shard = self._route(file_id)
        counters = self.counters._values
        if self._replicated and self._routed_failover:
            counters[_FAILOVER_READS] += 1
        if file_id in self._uncacheable:
            counters[_SHARED_BYTES_READ] += length
            if self.await_server(now, data_op=True, shard=shard):
                self.transports[shard].call(
                    now, "passthrough_read", file_id, length
                )
            return
        if paging_kind == "code":
            counters[_PAGING_CODE_BYTES] += length
        elif paging_kind == "data":
            counters[_PAGING_DATA_BYTES] += length
        else:
            counters[_FILE_BYTES_READ] += length
            if migrated:
                counters[_MIGRATED_READ_BYTES] += length

        # Faults: while the file's server is unreachable, cache hits may
        # serve stale bytes (the durable version moved on without us) and
        # misses stall or fail per the degraded mode.  ``fetch_allowed``
        # gates (and books the stall for) this call's misses just once.
        file_server = self.servers[shard]
        unreachable = self._unavailable_until(now, file_server) > now
        stale = unreachable and (
            file_server.peek_version(file_id)
            > self._known_version.get(file_id, 0)
        )
        fetch_allowed: bool | None = None

        cache = self.cache
        transport_call = self.transports[shard].call
        block_size = self.config.block_size
        end = offset + length
        first = offset // block_size
        last = (end - 1) // block_size
        # Per-block op counters bump once for the whole run: nothing
        # samples counters mid-call, so the aggregate is identical.
        n_blocks = last - first + 1
        counters[_CACHE_READ_OPS] += n_blocks
        if paging:
            counters[_PAGING_READ_OPS] += n_blocks
        if migrated:
            counters[_MIGRATED_READ_OPS] += n_blocks
        blocks = cache._blocks
        blocks_get = blocks.get
        move_to_end = blocks.move_to_end
        for index in range(first, last + 1):
            key = (file_id, index)
            block = blocks_get(key)
            if block is not None:
                # Inlined cache.touch_if_present -- the hottest path of
                # the whole replay; the overlap arithmetic is skipped
                # entirely on a healthy hit.
                block.last_referenced = now
                move_to_end(key)
                if stale:
                    block_start = index * block_size
                    block_end = block_start + block_size
                    counters[_STALE_READS_SERVED] += 1
                    counters[_STALE_READ_BYTES] += (
                        end if end < block_end else block_end
                    ) - (offset if offset > block_start else block_start)
                continue
            block_start = index * block_size
            block_end = block_start + block_size
            overlap = (end if end < block_end else block_end) - (
                offset if offset > block_start else block_start
            )
            # Miss: fetch from the server and install.
            counters[_CACHE_READ_MISSES] += 1
            if unreachable:
                if fetch_allowed is None:
                    fetch_allowed = self.await_server(
                        now, data_op=True, shard=shard
                    )
                if not fetch_allowed:
                    continue  # dropped transfer: nothing crossed the wire
            counters[_CACHE_READ_MISS_BYTES] += overlap
            if paging:
                counters[_PAGING_READ_MISSES] += 1
                counters[_PAGING_READ_MISS_BYTES] += overlap
            if migrated:
                counters[_MIGRATED_READ_MISSES] += 1
                counters[_MIGRATED_READ_MISS_BYTES] += overlap
            if transport_call(now, "fetch_block", file_id, index, overlap) is False:
                counters[_CHECKSUM_FAILURES] += 1
            if self.obs is not None:
                self.obs.on_block_fetch(now, self.client_id, file_id, index, overlap)
            self._make_room(now)
            block = cache.insert(key, now, migrated=migrated)
            block.written_end = block_size  # a fetched block is full

    def write(
        self,
        now: float,
        file_id: int,
        offset: int,
        length: int,
        migrated: bool = False,
    ) -> None:
        """Application write of a byte range."""
        if length <= 0:
            return
        shard = self._route(file_id)
        counters = self.counters._values
        if file_id in self._uncacheable:
            counters[_SHARED_BYTES_WRITTEN] += length
            if self.await_server(now, data_op=True, shard=shard):
                self.transports[shard].call(
                    now, "passthrough_write", file_id, length
                )
            return
        counters[_FILE_BYTES_WRITTEN] += length
        counters[_CACHE_WRITE_BYTES] += length
        if migrated:
            counters[_MIGRATED_WRITE_BYTES] += length

        # Faults: write fetches need the server; when one is dropped in
        # "fail" mode the write degrades to an unfetched overwrite (the
        # block starts empty instead of being filled from the server).
        # Write-through mode stalls through outages like any sync write.
        unreachable = self._unavailable_until(now, self.servers[shard]) > now
        fetch_allowed: bool | None = None
        if unreachable and self.config.write_through:
            self.await_server(now, shard=shard)

        cache = self.cache
        block_size = self.config.block_size
        first = offset // block_size
        last = (offset + length - 1) // block_size
        n_blocks = last - first + 1
        counters[_CACHE_WRITE_OPS] += n_blocks
        if migrated:
            counters[_MIGRATED_WRITE_OPS] += n_blocks
        blocks = cache._blocks
        blocks_get = blocks.get
        write_through = self.config.write_through
        for index in range(first, last + 1):
            block_start = index * block_size
            begin = max(offset, block_start)
            end = min(offset + length, block_start + block_size)
            key = (file_id, index)
            block = blocks_get(key)
            if block is None:
                partial = begin > block_start or end < block_start + block_size
                overwrites_existing = begin > block_start
                fetch = partial and overwrites_existing
                if fetch and unreachable:
                    if fetch_allowed is None:
                        fetch_allowed = self.await_server(
                            now, data_op=True, shard=shard
                        )
                    fetch = fetch_allowed
                if fetch:
                    # Partial write of a non-resident block: fetch it
                    # first (Table 6's "write fetch").
                    counters[_WRITE_FETCH_OPS] += 1
                    counters[_WRITE_FETCH_BYTES] += block_size
                    if migrated:
                        counters[_MIGRATED_WRITE_FETCH_OPS] += 1
                    fetched = self.transports[shard].call(
                        now, "fetch_block", file_id, index, block_size
                    )
                    if fetched is False:
                        counters[_CHECKSUM_FAILURES] += 1
                    if self.obs is not None:
                        self.obs.on_block_fetch(
                            now, self.client_id, file_id, index, block_size
                        )
                    self._make_room(now)
                    block = cache.insert(key, now, migrated=migrated)
                    block.written_end = block_size
                else:
                    self._make_room(now)
                    block = cache.insert(key, now, migrated=migrated)
                    block.written_end = 0
            if block.dirty:
                # Inlined mark_dirty fast path: an already-dirty block
                # only needs its LRU position and reference refreshed.
                block.last_referenced = now
                if migrated:
                    block.migrated = True
                blocks.move_to_end(key)
            else:
                counters[_BLOCKS_DIRTIED] += 1
                cache.mark_dirty(key, now, migrated=migrated)
            if block.written_end < end - block_start:
                block.written_end = end - block_start
            if write_through:
                self._clean_block(now, block, CleanReason.FSYNC)

    def fsync_file(self, now: float, file_id: int) -> None:
        """Application-requested synchronous write-through."""
        shard = self._route(file_id)
        # Sync write: stalls through outages.
        self.await_server(now, shard=shard)
        self._clean_file(now, file_id, CleanReason.FSYNC)
        self.transports[shard].call(
            now, "note_written_back", file_id, self.client_id
        )

    def delete_on_server(self, now: float, file_id: int) -> None:
        """Issue the delete/truncate naming RPC: one message carries
        both the name operation and the server-side invalidation."""
        shard = self._route(file_id)
        # Naming op: always stalls through outages.
        self.await_server(now, shard=shard)
        self.transports[shard].call(now, "delete_file", file_id)
        if self._replicated:
            # Every replica must drop the file; a down replica gets the
            # delete queued in its pending log.
            manager = self._replication
            skip = manager.skip_propagation_to
            for sid in manager.replica_map.replicas(file_id):
                if sid == shard or sid in skip:
                    continue
                if self.servers[sid].up:
                    self.transports[sid].call(now, "delete_file", file_id)
                else:
                    manager.queue_pending(sid, file_id, None)
            manager.on_delete(file_id)

    def delete_file(self, now: float, file_id: int) -> None:
        """Handle a delete (or truncate-to-zero) of a file."""
        for block in self.cache.blocks_of_file(file_id):
            if block.dirty:
                # Absorbed by the delayed-write policy: never reaches
                # the server (the ~10% write savings).
                self.counters.dirty_bytes_discarded += max(1, block.written_end)
                self.counters.dirty_blocks_discarded += 1
            self.cache.remove(block.key)
            self._spare_pages += 1
        self._known_version.pop(file_id, None)

    def directory_read(self, now: float, length: int, file_id: int = -1) -> None:
        """Directories are not cached on clients.

        ``file_id`` picks the serving shard (a directory lives with its
        server); the RPC itself stays the anonymous ``-1`` passthrough
        the single-server protocol always used.
        """
        self.counters.directory_bytes_read += length
        shard = self._route(file_id)
        if self.await_server(now, data_op=True, shard=shard):
            self.transports[shard].call(now, "passthrough_read", -1, length)

    # --- paging -------------------------------------------------------------------

    def paging_backing(self, now: float, nbytes: int, is_write: bool) -> None:
        """Backing-file traffic: straight to the server.  Paging cannot
        fail open -- a dropped page would kill the process -- so it
        always uses stall semantics."""
        if is_write:
            self.counters.paging_backing_bytes_written += nbytes
        else:
            self.counters.paging_backing_bytes_read += nbytes
        self.await_server(now, shard=self._paging_shard)
        self.transports[self._paging_shard].call(now, "paging_transfer", nbytes)

    # --- internals ------------------------------------------------------------------

    def _make_room(self, now: float) -> None:
        """Ensure space for one more block: reuse a spare page, grow if
        VM permits, else evict the LRU block."""
        if self._spare_pages > 0:
            self._spare_pages -= 1
            return
        if len(self.cache._blocks) < self._max_cache_blocks:
            if self.vm.claim_for_cache(now, 1) == 1:
                return
        victim = self.cache.lru_block()
        if victim is None:
            # Cache is empty and VM gave nothing: force one page.
            if self.vm.claim_for_cache(now, 1) != 1:
                raise SimulationError(
                    f"client {self.client_id} has no memory for even one block"
                )
            return
        if victim.dirty:
            # Rare: a dirty block reached the LRU end before the daemon
            # cleaned it.  Write it back before reuse.
            self._clean_block(now, victim, CleanReason.VM)
        age = now - victim.last_referenced
        if age < 0.0:
            age = 0.0
        counters = self.counters._values
        counters[_BLOCKS_REPLACED_FOR_FILE] += 1
        counters[_REPLACE_AGE_SUM_FILE] += age
        if self.obs is not None:
            self.obs.on_evict(now, self.client_id, "for_file", age)
        self.cache.remove(victim.key)

    def surrender_pages(self, now: float, pages: int) -> int:
        """VM demand spike: give up to ``pages`` blocks back to the VM
        system.  Returns how many pages were actually surrendered."""
        # Spare pages go first -- they hold no data.
        spare_given = min(self._spare_pages, pages)
        self._spare_pages -= spare_given
        if spare_given:
            self.vm.release_from_cache(spare_given)
        surrendered = spare_given
        for _ in range(pages - spare_given):
            victim = self.cache.lru_block()
            if victim is None:
                break
            if victim.dirty:
                self._clean_block(now, victim, CleanReason.VM)
            age = max(0.0, now - victim.last_referenced)
            self.counters.blocks_replaced_for_vm += 1
            self.counters.replace_age_sum_vm += age
            if self.obs is not None:
                self.obs.on_evict(now, self.client_id, "for_vm", age)
            self.cache.remove(victim.key)
            self.vm.release_from_cache(1)
            surrendered += 1
        return surrendered

    def _writeback_scan(self) -> None:
        """The 5-second daemon: clean files with 30-second-old data."""
        cache = self.cache
        if not cache._dirty:
            # Nothing dirty anywhere: the overwhelmingly common scan.
            return
        now = self.engine.now
        if not self.up or now < self.partition_until:
            # Dead machine or partitioned: the daemon does not retry --
            # overdue blocks are replayed by the recovery sweep (or by
            # the first scan after the outage ends).
            return
        cutoff = now - self.config.writeback_delay
        oldest = cache.oldest_dirty_since()
        if oldest is not None and oldest > cutoff:
            return  # dirty data exists but none of it is 30s old yet
        old_blocks = cache.dirty_blocks_older_than(cutoff)
        if not old_blocks:
            return
        # All dirty blocks of a file go when any block is 30s old.  A
        # crashed shard's files are skipped (their recovery sweep will
        # replay them); the other shards' writebacks proceed -- one
        # server down never stalls the rest of the cluster.  The
        # explicit ``up`` check covers the instant at the end of a
        # scheduled outage, before recovery has actually run.
        for file_id in sorted({b.file_id for b in old_blocks}):
            shard = self._route(file_id)
            server = self.servers[shard]
            if not server.up or self._unavailable_until(now, server) > now:
                continue
            self._clean_file(now, file_id, CleanReason.DELAY)
            self.transports[shard].call(
                now, "note_written_back", file_id, self.client_id
            )

    def _clean_file(self, now: float, file_id: int, reason: CleanReason) -> None:
        for block in self.cache.dirty_blocks_of_file(file_id):
            self._clean_block(now, block, reason)

    def _clean_block(self, now: float, block: CacheBlock, reason: CleanReason) -> None:
        nbytes = max(1, min(block.written_end, self.config.block_size))
        age = max(0.0, now - block.dirty_since) if block.dirty_since >= 0 else 0.0
        counters = self.counters._values
        if self.integrity is not None:
            # One generation per cleaned block; the write_block RPCs
            # below persist this generation on every replica they reach.
            self.integrity.begin_write(block.file_id, block.index)
        if not self._replicated:
            self.transports[self._shard_of(block.file_id)].call(
                now, "write_block", block.file_id, block.index, nbytes
            )
        else:
            # The writeback fans out to every live replica so each holds
            # current bytes; with all replicas down it lands on the one
            # that recovers soonest (executing logically at recovery).
            manager = self._replication
            skip = manager.skip_propagation_to
            targets = [
                sid
                for sid in manager.replica_map.replicas(block.file_id)
                if self.servers[sid].up and sid not in skip
            ]
            if not targets:
                targets = [self._route(block.file_id)]
            for sid in targets:
                self.transports[sid].call(
                    now, "write_block", block.file_id, block.index, nbytes
                )
            counters[_REPLICA_WRITEBACK_BLOCKS] += len(targets)
        counters[_BYTES_WRITTEN_TO_SERVER] += nbytes
        count_index, age_index = _CLEAN_IDX[reason]
        counters[count_index] += 1
        counters[age_index] += age
        if self.obs is not None:
            self.obs.on_writeback(
                now, self.client_id, reason.value, age, nbytes
            )
        self.cache.mark_clean(block.key)

    def _discard_stale_blocks(self, file_id: int) -> None:
        """Drop a file's blocks because the server's version moved on
        (the timestamp mechanism at open).  Dirty blocks among them --
        possible only under faults, when a recall could not reach us --
        are counted discarded so the dirty-block ledger stays balanced."""
        for block in self.cache.invalidate_file(file_id):
            if block.dirty:
                self.counters.dirty_bytes_discarded += max(1, block.written_end)
                self.counters.dirty_blocks_discarded += 1
            self._spare_pages += 1

    def snapshot_sizes(self) -> None:
        """Refresh the sampled size counters before a snapshot."""
        self.counters.cache_size_bytes = self.cache.size_bytes
        self.counters.vm_resident_bytes = (
            self.vm.vm_resident_pages * self.config.block_size
        )
        self.counters.dirty_blocks_resident = self.cache.dirty_count
