"""End-to-end data integrity: checksums, verified reads, scrub, repair.

The paper's data-loss story (Section 5.2) is about *crash* loss: the
30-second writeback delay bounds how much dirty data a dying machine can
take with it.  This module adds the other half of the story -- *silent*
loss, where a disk acknowledges a write and then quietly returns
different bytes -- and the standard defences:

* a **content model**: every durably written block carries a payload (a
  deterministic function of (file, block, write generation)), a
  checksum of that payload, and the generation stamp.  The model is
  integers, not bytes -- enough to detect any corruption the fault
  model can inject, at a dict-entry's cost per durable block;
* **disk faults** (armed by :class:`repro.fs.faults.FaultInjector` from
  seeded :class:`~repro.fs.faults.DiskFaultEvent`\\ s): *bit rot*
  garbles a stored payload in place, a *torn write* persists garbled
  bytes under the intended checksum, and a *lost write* acknowledges
  without persisting anything -- the one failure a checksum alone can
  never see;
* **verified reads**: every ``fetch_block`` that reaches the durable
  store checks the payload against its checksum; a mismatch books a
  ``checksum_failures`` counter and triggers repair;
* **repair from replicas**: the freshest live replica whose copy
  verifies is copied back (the PR 7 placement chain names the
  candidates).  With no valid copy left (always at r=1) the block is
  booked as a **declared loss** -- data is gone, but *accountably*
  gone, which the end-state oracle sweep treats as the crucial
  difference from silent corruption;
* a **background scrubber** on the shared ticker that walks each up
  server's durable blocks in chunks, verifying checksums and -- at
  r >= 2 -- cross-checking generation stamps against live peers, which
  is what catches lost writes;
* the **Table C study**: corruption exposed / detected / repaired as a
  function of scrub interval and replication factor.

When no disk-fault rate is set and scrubbing is off, none of this is
constructed: no store, no hashing, no RNG draws -- replays stay
byte-identical to builds that predate this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.common.render import format_number, render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.cluster import ClusterResult
    from repro.fs.server import Server

_MASK64 = (1 << 64) - 1

#: XOR'd into a payload before mixing when a fault garbles it.  The
#: garble is a *mix* of the flipped payload, not the flip itself, so two
#: faults on the same block never cancel back to valid content.
_GARBLE_SALT = 0xDEADBEEFCAFEF00D


def block_checksum(payload: int) -> int:
    """A 64-bit checksum of an integer payload (splitmix64 finalizer).

    Pure and stateless: equal payloads always hash equal, and any
    single-event garble the fault model applies changes the value.
    """
    x = (payload ^ 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def checksum_ok(payload: int, checksum: int) -> bool:
    """Does the stored checksum match the stored payload?"""
    return block_checksum(payload) == checksum


def block_payload(file_id: int, index: int, generation: int) -> int:
    """The modelled content of one durable block write.

    A pure function of (file, block, write generation), so every
    replica that acknowledges the same logical write stores the same
    payload -- which is what lets repair and the oracle sweep compare
    copies by value.
    """
    return block_checksum(
        (file_id * 0x8B72E1D9CA3F5A71 + index * 0x6C62272E07BB0142 + generation)
        & _MASK64
    )


def _garble(payload: int) -> int:
    """What a disk fault leaves behind: a mixed, non-invertible mangle."""
    return block_checksum(payload ^ _GARBLE_SALT)


class IntegrityManager:
    """The cluster's checksummed block store and repair engine.

    One per cluster, constructed only when disk faults or scrubbing are
    configured.  It shadows each server's durable blocks (a block
    enters the store on its first ``write_block``), keeps the
    per-server *expected* ledger (the content each server last
    *acknowledged* -- a replica that legitimately missed a push while
    down is stale, not corrupt), and owns every verify / repair /
    declare-lost decision.  Everything is driven by deterministic
    engine events; it draws no randomness of its own (fault victims are
    picked by the pre-drawn selector on the disk event).
    """

    #: Blocks verified per server per scrub tick; the walk cursor wraps.
    SCRUB_CHUNK = 128

    def __init__(
        self, servers: "list[Server]", replica_map: Any | None = None,
        *, group_maps: "dict[int, Any] | None" = None,
        servers_per_group: int = 0,
    ) -> None:
        self.servers = servers
        #: The cluster's :class:`~repro.fs.replication.ReplicaMap` when
        #: replication is on; names the repair candidates.  None = r=1:
        #: every unrepairable corruption becomes a declared loss.
        self.replica_map = replica_map
        #: Grouped cluster: one ReplicaMap per (owned) group instead,
        #: resolved through the server id a lookup concerns -- shared
        #: file ids map to a different slice per group.
        self._group_maps = group_maps
        self._servers_per_group = servers_per_group
        self._replicated = replica_map is not None or group_maps is not None
        #: Optional observability hook (repro.obs); every use is guarded.
        self.obs = None
        n = len(servers)
        #: Per server: (file, block) -> (payload, checksum, generation).
        self._stores: list[dict[tuple[int, int], tuple[int, int, int]]] = [
            {} for _ in range(n)
        ]
        #: Per server: (file, block) -> (payload, generation) this
        #: server last *acknowledged* -- what its store must hold.
        self._expected: list[dict[tuple[int, int], tuple[int, int]]] = [
            {} for _ in range(n)
        ]
        #: Per server: file -> block indexes with store/expected entries
        #: (so deletes and re-replication never scan the whole store).
        self._by_file: list[dict[int, set[int]]] = [{} for _ in range(n)]
        #: Per server: blocks whose loss has been booked (accounted, so
        #: the oracle sweep does not count them as silent corruption).
        self._declared_lost: list[set[tuple[int, int]]] = [
            set() for _ in range(n)
        ]
        #: Global write generation per (file, block): bumped once per
        #: client clean, shared by the whole writeback fan-out.
        self._gen: dict[tuple[int, int], int] = {}
        #: Armed torn/lost faults, consumed by the next write.
        self._armed_torn = [0] * n
        self._armed_lost = [0] * n
        #: Scrub walk state: a sorted key snapshot plus a cursor.
        self._scrub_keys: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        self._scrub_pos = [0] * n
        for server in servers:
            server.cache.enable_integrity()

    def _peer_replicas(self, server_id: int, file_id: int) -> tuple[int, ...]:
        """The replica set ``server_id`` belongs to for ``file_id``,
        resolved through the server's group when grouped (shared file
        ids place into a different slice per group)."""
        if self._group_maps is not None:
            group = server_id // self._servers_per_group
            return self._group_maps[group].replicas(file_id)
        return self.replica_map.replicas(file_id)

    # --- the write path ---------------------------------------------------------

    def begin_write(self, file_id: int, index: int) -> None:
        """A client starts cleaning a dirty block: one new generation,
        shared by every replica the writeback fans out to."""
        key = (file_id, index)
        self._gen[key] = self._gen.get(key, 0) + 1

    def server_write(self, server: "Server", now: float, file_id: int, index: int) -> None:
        """One server durably applies a writeback (or believes it did:
        an armed torn/lost fault corrupts this very write)."""
        sid = server.server_id
        key = (file_id, index)
        gen = self._gen.get(key)
        if gen is None:
            # A write with no preceding begin_write (direct unit-test
            # drives): open its own generation.
            gen = self._gen[key] = 1
        payload = block_payload(file_id, index, gen)
        checksum = block_checksum(payload)
        self._expected[sid][key] = (payload, gen)
        self._by_file[sid].setdefault(file_id, set()).add(index)
        self._declared_lost[sid].discard(key)
        if self._armed_lost[sid] > 0:
            # Lost write: acknowledged, never persisted.  The store
            # keeps whatever it held; only the ledger moves -- the one
            # fault a checksum can never see.
            self._armed_lost[sid] -= 1
        elif self._armed_torn[sid] > 0:
            # Torn write: garbled payload persisted under the intended
            # checksum, so the next verify catches it.
            self._armed_torn[sid] -= 1
            self._stores[sid][key] = (_garble(payload), checksum, gen)
        else:
            self._stores[sid][key] = (payload, checksum, gen)
        # The server's in-memory cache copy is the client's bytes and is
        # good regardless of what the disk did with them.
        payloads = server.cache.payloads
        if payloads is not None and key in server.cache._blocks:
            payloads[key] = (payload, checksum)

    # --- the read path ----------------------------------------------------------

    def verify_read(
        self, server: "Server", now: float, file_id: int, index: int,
        from_cache: bool,
    ) -> bool:
        """Verify one ``fetch_block``; returns False only when the block
        is corrupt and no replica could repair it (a declared loss)."""
        sid = server.server_id
        key = (file_id, index)
        payloads = server.cache.payloads
        if from_cache and payloads is not None:
            mirror = payloads.get(key)
            if mirror is not None and checksum_ok(mirror[0], mirror[1]):
                # Served from server RAM: the cached pair verifies.  A
                # rotted disk copy stays hidden behind a hot cache until
                # eviction, a crash, or the scrubber -- deliberately so.
                return True
        entry = self._stores[sid].get(key)
        if entry is None:
            # Never durably written here (read-only data, or a write
            # this server missed while down): nothing to verify.
            return True
        payload, checksum, gen = entry
        if checksum_ok(payload, checksum):
            if payloads is not None and key in server.cache._blocks:
                payloads[key] = (payload, checksum)
            return True
        server.counters.checksum_failures += 1
        if self.obs is not None:
            self.obs.on_checksum_failure(
                now, sid, file_id, index, "cache" if from_cache else "store"
            )
        return self._repair(now, sid, key)

    # --- repair and declared loss -----------------------------------------------

    def _repair(self, now: float, server_id: int, key: tuple[int, int]) -> bool:
        """Restore a corrupt (or vanished-but-acknowledged) block from
        the freshest live replica whose copy verifies; with none left,
        book a declared loss.  Returns True when repaired."""
        best: tuple[int, int, int] | None = None
        best_src = -1
        if self._replicated:
            for peer in self._peer_replicas(server_id, key[0]):
                if peer == server_id or peer >= len(self.servers):
                    continue
                if not self.servers[peer].up:
                    continue
                entry = self._stores[peer].get(key)
                if entry is None or not checksum_ok(entry[0], entry[1]):
                    continue
                if best is None or entry[2] > best[2]:
                    best, best_src = entry, peer
        server = self.servers[server_id]
        if best is None:
            self._stores[server_id].pop(key, None)
            self._declared_lost[server_id].add(key)
            server.counters.blocks_declared_lost += 1
            payloads = server.cache.payloads
            if payloads is not None:
                payloads.pop(key, None)
            if self.obs is not None:
                self.obs.on_block_declared_lost(now, server_id, key[0], key[1])
            return False
        self._stores[server_id][key] = best
        self._expected[server_id][key] = (best[0], best[2])
        self._by_file[server_id].setdefault(key[0], set()).add(key[1])
        self._declared_lost[server_id].discard(key)
        server.counters.blocks_repaired += 1
        payloads = server.cache.payloads
        if payloads is not None and key in server.cache._blocks:
            payloads[key] = (best[0], best[1])
        if self.obs is not None:
            self.obs.on_integrity_repair(
                now, server_id, key[0], key[1], best_src
            )
        return True

    # --- disk faults (armed by the FaultInjector) ---------------------------------

    def inject_bit_rot(self, now: float, server_id: int, selector: float) -> bool:
        """Garble one durable block in place, chosen by the event's
        pre-drawn selector over the sorted store (deterministic, and no
        randomness is consumed at fire time).  The stored checksum is
        untouched, so the rot is *detectable* -- by whoever looks next.

        The event counter books unconditionally -- it records the seeded
        fault timeline, which is identical across the sweep's columns --
        but rot striking an empty platter garbles nothing (False).
        """
        sid = server_id % len(self.servers)
        self.servers[sid].counters.disk_bit_rot_events += 1
        store = self._stores[sid]
        if not store:
            return False  # nothing durable yet: the rot hits empty platter
        keys = sorted(store)
        key = keys[int(selector * len(keys)) % len(keys)]
        payload, checksum, gen = store[key]
        store[key] = (_garble(payload), checksum, gen)
        return True

    def arm_torn(self, server_id: int) -> None:
        """The next write on this server persists garbled bytes."""
        sid = server_id % len(self.servers)
        self.servers[sid].counters.disk_torn_writes += 1
        self._armed_torn[sid] += 1

    def arm_lost(self, server_id: int) -> None:
        """The next write on this server is acknowledged but dropped."""
        sid = server_id % len(self.servers)
        self.servers[sid].counters.disk_lost_writes += 1
        self._armed_lost[sid] += 1

    # --- deletes and re-replication -----------------------------------------------

    def invalidate_file(self, server_id: int, file_id: int) -> None:
        """The file was deleted on this server: drop every trace of it."""
        indexes = self._by_file[server_id].pop(file_id, None)
        if not indexes:
            return
        store = self._stores[server_id]
        expected = self._expected[server_id]
        lost = self._declared_lost[server_id]
        for index in indexes:
            key = (file_id, index)
            store.pop(key, None)
            expected.pop(key, None)
            lost.discard(key)

    def copy_file(self, now: float, src_id: int, target_id: int, file_id: int) -> int:
        """Re-replication: copy the source's verified durable blocks of
        one file onto the substitute replica (which then acknowledges
        them -- its expected ledger moves with its store).  Corrupt
        source blocks are never propagated, and a fresher copy already
        on the target is left alone.  Returns the blocks copied."""
        indexes = self._by_file[src_id].get(file_id)
        if not indexes:
            return 0
        src_store = self._stores[src_id]
        target = self.servers[target_id]
        t_store = self._stores[target_id]
        t_expected = self._expected[target_id]
        copied = 0
        for index in sorted(indexes):
            key = (file_id, index)
            entry = src_store.get(key)
            if entry is None or not checksum_ok(entry[0], entry[1]):
                continue
            existing = t_store.get(key)
            if (
                existing is not None
                and existing[2] >= entry[2]
                and checksum_ok(existing[0], existing[1])
            ):
                continue
            t_store[key] = entry
            t_expected[key] = (entry[0], entry[2])
            self._by_file[target_id].setdefault(file_id, set()).add(index)
            self._declared_lost[target_id].discard(key)
            payloads = target.cache.payloads
            if payloads is not None and key in target.cache._blocks:
                payloads[key] = (entry[0], entry[1])
            copied += 1
        return copied

    # --- the scrubber -----------------------------------------------------------

    def _scrub_one(
        self, now: float, server_id: int, key: tuple[int, int]
    ) -> bool | None:
        """Verify one block.  Returns None when the key vanished since
        the snapshot, True when something was detected (and repaired or
        declared lost), False when the block is clean."""
        entry = self._stores[server_id].get(key)
        if entry is None:
            if (
                key in self._expected[server_id]
                and key not in self._declared_lost[server_id]
            ):
                # Acknowledged but never persisted: a lost first write.
                self._repair(now, server_id, key)
                return True
            return None
        payload, checksum, gen = entry
        if not checksum_ok(payload, checksum):
            self._repair(now, server_id, key)
            return True
        expected = self._expected[server_id].get(key)
        if expected is not None and (
            expected[1] > gen or (expected[1] == gen and expected[0] != payload)
        ):
            # The block verifies but is not what was acknowledged: a
            # lost write, caught by the generation ledger even with no
            # replica to compare against (repair still needs one).
            self._repair(now, server_id, key)
            return True
        if self._replicated:
            # Generation cross-check against live peers: a verifying
            # payload with a stale stamp is a lost write (or a push the
            # outage swallowed) -- the corruption checksums cannot see.
            for peer in self._peer_replicas(server_id, key[0]):
                if peer == server_id or peer >= len(self.servers):
                    continue
                if not self.servers[peer].up:
                    continue
                peer_entry = self._stores[peer].get(key)
                if (
                    peer_entry is not None
                    and peer_entry[2] > gen
                    and checksum_ok(peer_entry[0], peer_entry[1])
                ):
                    self._repair(now, server_id, key)
                    return True
        return False

    def _scrub_span(
        self, now: float, server: "Server", keys: list[tuple[int, int]]
    ) -> None:
        checked = detected = 0
        sid = server.server_id
        for key in keys:
            result = self._scrub_one(now, sid, key)
            if result is None:
                continue
            checked += 1
            if result:
                detected += 1
        if checked:
            server.counters.scrub_blocks_checked += checked
        if detected:
            server.counters.scrub_corruptions_found += detected
            if self.obs is not None:
                self.obs.on_scrub(now, sid, checked, detected)

    def scrub_tick(self, now: float) -> None:
        """One background pass: up to :attr:`SCRUB_CHUNK` blocks per up
        server, walked round-robin by a per-server cursor over a sorted
        key snapshot (re-taken, including any expected-but-missing keys,
        each time the cursor wraps)."""
        for server in self.servers:
            if not server.up:
                continue
            sid = server.server_id
            keys = self._scrub_keys[sid]
            pos = self._scrub_pos[sid]
            if pos >= len(keys):
                keys = self._scrub_keys[sid] = sorted(
                    set(self._stores[sid]) | set(self._expected[sid])
                )
                pos = 0
            end = min(len(keys), pos + self.SCRUB_CHUNK)
            self._scrub_pos[sid] = end
            self._scrub_span(now, server, keys[pos:end])

    def final_scrub(self, now: float) -> None:
        """One full verification pass at end of replay (scrubbing on):
        every corruption a replica can repair is repaired -- or booked
        as a declared loss -- before the oracle's sweep runs."""
        for server in self.servers:
            if not server.up:
                continue
            sid = server.server_id
            self._scrub_span(
                now, server,
                sorted(set(self._stores[sid]) | set(self._expected[sid])),
            )

    # --- the oracle sweep -------------------------------------------------------

    def silent_corruption_report(self) -> list[str]:
        """Every *silent* corruption still exposed at end of replay.

        For each up server (a down server's patch is still queued),
        every acknowledged block must either match its ledger entry by
        payload and generation, or carry a booked declared loss; and no
        stored block may fail its own checksum.  Each returned string
        becomes one seed-carrying oracle Violation.
        """
        details: list[str] = []
        for server in self.servers:
            if not server.up:
                continue
            sid = server.server_id
            store = self._stores[sid]
            expected = self._expected[sid]
            lost = self._declared_lost[sid]
            flagged: set[tuple[int, int]] = set()
            for key in sorted(store):
                payload, checksum, gen = store[key]
                if not checksum_ok(payload, checksum):
                    flagged.add(key)
                    details.append(
                        f"server {sid}: block {key} (gen {gen}) fails its "
                        f"checksum with no repair or declared loss booked"
                    )
            for key in sorted(expected):
                if key in lost or key in flagged:
                    continue
                payload, gen = expected[key]
                entry = store.get(key)
                if entry is None:
                    details.append(
                        f"server {sid}: acknowledged block {key} (gen {gen}) "
                        f"vanished without a declared loss"
                    )
                elif entry[0] != payload or entry[2] != gen:
                    details.append(
                        f"server {sid}: block {key} holds gen {entry[2]} but "
                        f"gen {gen} was acknowledged"
                    )
        return details


# --- Table C: silent corruption vs. scrub interval x replication factor --------


@dataclass
class IntegrityCell:
    """Corruption exposure and repair totals for one replay."""

    label: str
    replication_factor: int
    scrub_interval: float

    disk_bit_rot_events: int = 0
    disk_torn_writes: int = 0
    disk_lost_writes: int = 0

    checksum_failures: int = 0
    scrub_blocks_checked: int = 0
    scrub_corruptions_found: int = 0
    blocks_repaired: int = 0
    blocks_declared_lost: int = 0
    client_checksum_failures: int = 0

    corruption_exposed: int = 0
    oracle_checks: int = 0
    oracle_violations: int = 0

    @classmethod
    def from_result(
        cls, label: str, result: "ClusterResult", oracle: Any = None
    ) -> "IntegrityCell":
        servers = result.server_counters
        cell = cls(
            label=label,
            replication_factor=result.config.replication_factor,
            scrub_interval=result.config.scrub_interval,
            disk_bit_rot_events=servers.disk_bit_rot_events,
            disk_torn_writes=servers.disk_torn_writes,
            disk_lost_writes=servers.disk_lost_writes,
            checksum_failures=servers.checksum_failures,
            scrub_blocks_checked=servers.scrub_blocks_checked,
            scrub_corruptions_found=servers.scrub_corruptions_found,
            blocks_repaired=servers.blocks_repaired,
            blocks_declared_lost=servers.blocks_declared_lost,
        )
        for counters in result.final_counters.values():
            cell.client_checksum_failures += counters.checksum_failures
        if oracle is not None:
            cell.oracle_checks = oracle.checks_run
            cell.oracle_violations = len(oracle.violations)
            cell.corruption_exposed = sum(
                1 for v in oracle.violations
                if v.invariant == "silent-corruption"
            )
        return cell

    @property
    def disk_faults_injected(self) -> int:
        return (
            self.disk_bit_rot_events
            + self.disk_torn_writes
            + self.disk_lost_writes
        )

    @property
    def corruption_detected(self) -> int:
        """Corruption caught by a verified read or by the scrubber."""
        return self.checksum_failures + self.scrub_corruptions_found


@dataclass
class IntegrityStudyResult:
    """The sweep: one cell per (replication factor, scrub interval)."""

    cells: list[IntegrityCell] = field(default_factory=list)

    def cell_for(self, label: str) -> IntegrityCell:
        for cell in self.cells:
            if cell.label == label:
                return cell
        raise KeyError(f"no sweep cell labelled {label!r}")

    def render(self) -> str:
        headers = ["Measurement"] + [cell.label for cell in self.cells]

        def row(label: str, getter, precision: int = 0) -> list[str]:
            return [label] + [
                format_number(float(getter(cell)), precision)
                for cell in self.cells
            ]

        rows = [
            row("Disk faults injected", lambda c: c.disk_faults_injected),
            row("  bit-rot events", lambda c: c.disk_bit_rot_events),
            row("  torn writes", lambda c: c.disk_torn_writes),
            row("  lost writes", lambda c: c.disk_lost_writes),
            row("Read-path checksum failures", lambda c: c.checksum_failures),
            row("Scrub blocks checked", lambda c: c.scrub_blocks_checked),
            row("Scrub corruptions found", lambda c: c.scrub_corruptions_found),
            row("Blocks repaired from replicas", lambda c: c.blocks_repaired),
            row("Blocks declared lost", lambda c: c.blocks_declared_lost),
            row("Reads hitting unrepairable data",
                lambda c: c.client_checksum_failures),
            row("Silent corruption exposed", lambda c: c.corruption_exposed),
            row("Oracle checks", lambda c: c.oracle_checks),
            row("Oracle violations", lambda c: c.oracle_violations),
        ]
        first = self.cells[0] if self.cells else None
        note = None
        if first is not None:
            note = (
                "Same trace and seeded disk-fault timeline in every column; "
                "only the replication factor and scrub interval vary.  "
                "Detected corruption is repaired from the freshest verified "
                "live replica, or booked as a declared loss when no valid "
                "copy remains (always at r=1).  'Silent corruption exposed' "
                "counts acknowledged blocks still holding wrong bytes at end "
                "of replay with no loss booked -- the oracle flags each as a "
                "violation, so with replicas and scrubbing both on, the "
                "exposed and violation rows must read 0."
            )
        return render_table(
            "Table C. Silent corruption vs. scrub interval and replication "
            "factor",
            headers,
            rows,
            note=note,
        )


def compute_integrity_study(
    labelled_results: list[tuple[str, "ClusterResult", Any]],
) -> IntegrityStudyResult:
    """Pool each replay of the integrity sweep into one table cell."""
    return IntegrityStudyResult(
        cells=[
            IntegrityCell.from_result(label, result, oracle)
            for label, result, oracle in labelled_results
        ]
    )
