"""The kernel counters.

Section 3: "approximately 50 counters that recorded statistics about
cache traffic, ages of blocks in the cache, the size of the cache, etc.
A user-level process read the counters at regular intervals."  The
simulator keeps the same counters per client and snapshots them on a
simulated schedule; :mod:`repro.caching` post-processes the snapshots
into Tables 4-9, just as the authors post-processed their counter
files.

The counters used to be ``slots`` dataclasses; they are now backed by
one flat list of values per instance, because the replay copies,
samples, and serializes them constantly:

* ``copy()`` is a single C-level ``list.copy`` instead of ~50
  ``getattr``/``setattr`` pairs (snapshots take thousands of copies);
* ``as_row()`` / ``from_row()`` hand the columnar codec and the obs
  sampler a ready-made row in declaration order -- the same tuple
  layout the dataclass version produced, so the artifact wire format
  is unchanged;
* hot paths may bind ``INDEX["name"]`` once and bump
  ``counters._values[i]`` directly, skipping attribute descriptors.

Every field is still a real (generated) property, so
``counters.cache_read_ops += 1`` and ``getattr(counters, name)`` work
exactly as before; ``FIELDS`` replaces ``dataclasses.fields`` for code
that iterates counter names.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable


class _ArrayCounters:
    """A named bundle of cumulative counters on one flat value list."""

    __slots__ = ("_values",)

    #: Counter names in declaration order (the dataclass field order of
    #: earlier versions -- also the codec's row layout, do not reorder).
    FIELDS: tuple[str, ...] = ()
    _DEFAULTS: tuple = ()
    #: name -> position in ``_values``; hot sites bind these once.
    INDEX: dict[str, int] = {}

    def __init__(self, **overrides) -> None:
        self._values = list(self._DEFAULTS)
        if overrides:
            index = self.INDEX
            values = self._values
            for name, value in overrides.items():
                if name not in index:
                    raise TypeError(
                        f"{type(self).__name__} has no counter {name!r}"
                    )
                values[index[name]] = value

    def copy(self):
        """A value snapshot of every counter."""
        clone = object.__new__(type(self))
        clone._values = self._values.copy()
        return clone

    def as_row(self) -> tuple:
        """All values as a tuple in :attr:`FIELDS` order (the exact row
        shape the columnar codec and the obs sampler store)."""
        return tuple(self._values)

    @classmethod
    def from_row(cls, row):
        """Rebuild from an :meth:`as_row` tuple."""
        obj = object.__new__(cls)
        obj._values = list(row)
        return obj

    @classmethod
    def aggregate(cls, many: "Iterable") -> "_ArrayCounters":
        """Field-wise sum (downtime and stall seconds included), the
        whole-cluster view Tables 4-9 report."""
        values = list(cls._DEFAULTS)
        for counters in many:
            for i, value in enumerate(counters._values):
                values[i] += value
        total = object.__new__(cls)
        total._values = values
        return total

    def digest(self) -> str:
        """A stable hex digest of the exact counter values: SHA-256 of
        the ``repr`` of :meth:`as_row` (``repr`` distinguishes ``1``
        from ``1.0``, so this pins byte-exact state, not just numeric
        equality).  The partitioned-replay identity checks compare
        shard-merged replays to unpartitioned ones through these."""
        return hashlib.sha256(
            repr(tuple(self._values)).encode("ascii")
        ).hexdigest()

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._values == other._values

    __hash__ = None  # mutable, like the eq=True dataclass it replaced

    def __getstate__(self):
        return self._values

    def __setstate__(self, state) -> None:
        self._values = list(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self.FIELDS, self._values)
        )
        return f"{type(self).__name__}({body})"


def _declare_counters(cls, spec: tuple) -> None:
    """Install the field tables and one generated property per counter.

    The properties are compiled with their index baked in as a literal
    (the same exec-codegen trick the columnar codec uses), so attribute
    access costs one Python call plus a C-level list index.
    """
    cls.FIELDS = tuple(name for name, _ in spec)
    cls._DEFAULTS = tuple(default for _, default in spec)
    cls.INDEX = {name: i for i, name in enumerate(cls.FIELDS)}
    lines = []
    for i, name in enumerate(cls.FIELDS):
        lines.append(f"def _get_{name}(self): return self._values[{i}]")
        lines.append(f"def _set_{name}(self, value): self._values[{i}] = value")
        lines.append(f"cls.{name} = property(_get_{name}, _set_{name})")
    exec("\n".join(lines), {"cls": cls})  # noqa: S102 - static, local source


#: (name, default) per counter, in the historical dataclass field order.
_CLIENT_SPEC = (
    # --- raw application traffic (before any cache) -----------------------
    ("file_open_ops", 0),
    ("file_bytes_read", 0),
    ("file_bytes_written", 0),
    ("shared_bytes_read", 0),  # uncacheable: concurrent write-sharing
    ("shared_bytes_written", 0),
    ("directory_bytes_read", 0),  # uncacheable: directories not cached
    ("paging_code_bytes", 0),  # cacheable paging (executable files)
    ("paging_data_bytes", 0),  # cacheable paging (initialized data)
    ("paging_backing_bytes_read", 0),  # uncacheable paging
    ("paging_backing_bytes_written", 0),
    # --- cache operations -------------------------------------------------
    ("cache_read_ops", 0),
    ("cache_read_misses", 0),
    ("cache_read_bytes", 0),
    ("cache_read_miss_bytes", 0),  # bytes fetched from the server
    ("cache_write_ops", 0),
    ("cache_write_bytes", 0),
    ("write_fetch_ops", 0),  # partial write of a non-resident block
    ("write_fetch_bytes", 0),
    # migrated-process split of the above
    ("migrated_read_ops", 0),
    ("migrated_read_misses", 0),
    ("migrated_read_bytes", 0),
    ("migrated_read_miss_bytes", 0),
    ("migrated_write_ops", 0),
    ("migrated_write_bytes", 0),
    ("migrated_write_fetch_ops", 0),
    # paging cache behaviour
    ("paging_read_ops", 0),
    ("paging_read_misses", 0),
    ("paging_read_miss_bytes", 0),
    # --- writeback --------------------------------------------------------
    ("bytes_written_to_server", 0),
    ("blocks_dirtied", 0),  # clean->dirty transitions, ever
    ("blocks_cleaned_delay", 0),
    ("blocks_cleaned_fsync", 0),
    ("blocks_cleaned_recall", 0),
    ("blocks_cleaned_vm", 0),
    ("blocks_cleaned_recovery", 0),  # replayed after a crash/partition
    ("clean_age_sum_delay", 0.0),
    ("clean_age_sum_fsync", 0.0),
    ("clean_age_sum_recall", 0.0),
    ("clean_age_sum_vm", 0.0),
    ("clean_age_sum_recovery", 0.0),
    ("dirty_bytes_discarded", 0),  # deleted/truncated before writeback
    ("dirty_blocks_discarded", 0),
    # --- faults and recovery ----------------------------------------------
    ("crashes", 0),  # times this client rebooted
    ("partitions", 0),  # partitions that hit this client
    ("lost_dirty_blocks", 0),  # dirty data destroyed by a crash or conflict
    ("lost_dirty_bytes", 0),
    ("rpc_retries", 0),  # backoff attempts against an unreachable server
    ("rpc_failed_ops", 0),  # data ops dropped after rpc_timeout ("fail" mode)
    ("stall_seconds", 0.0),  # process-seconds spent waiting for the server
    ("ops_dropped_while_down", 0),  # trace records hitting a dead client
    ("stale_reads_served", 0),  # cache hits on stale data while partitioned
    ("stale_read_bytes", 0),
    # --- the message-level transport (repro.fs.rpc) -----------------------
    # All zero unless the channel is lossy: the transport books nothing
    # on the inert fast path, keeping fault-free runs byte-identical.
    ("rpc_messages_sent", 0),  # packets offered to the lossy channel
    ("rpc_retransmissions", 0),  # resends after a lost request or reply
    ("rpc_replies_lost", 0),  # request executed but its reply dropped
    # Channel-delay stall.  This is a *component* of stall_seconds, not
    # an addition to it: every second booked here was also booked there.
    # Consumers must report one or the other, never their sum (see
    # backoff_stall_seconds for the complement).
    ("rpc_delay_seconds", 0.0),
    ("reopen_rpcs", 0),  # recovery: re-register open files
    ("revalidate_rpcs", 0),  # recovery: version-check cached files
    ("blocks_invalidated_on_recovery", 0),  # failed re-validation
    ("dirty_blocks_resident", 0),  # current, sampled at snapshot time
    # --- replacement ------------------------------------------------------
    ("blocks_replaced_for_file", 0),
    ("blocks_replaced_for_vm", 0),
    ("replace_age_sum_file", 0.0),  # seconds since last reference
    ("replace_age_sum_vm", 0.0),
    # --- cache size -------------------------------------------------------
    ("cache_size_bytes", 0),  # current, sampled at snapshot time
    ("vm_resident_bytes", 0),
    # --- replication (repro.fs.replication) -------------------------------
    # All zero at replication_factor=1: the unreplicated client never
    # routes around its primary or fans writebacks out.
    ("failover_reads", 0),  # reads served by a non-primary replica
    ("failover_ops", 0),  # any op routed around a down primary
    ("replica_writeback_blocks", 0),  # write_block fan-out, all targets
    # --- integrity (repro.fs.integrity) -----------------------------------
    # Zero unless disk faults or scrubbing are configured.
    ("checksum_failures", 0),  # fetches that hit unrepairable corruption
)


class ClientCounters(_ArrayCounters):
    """Cumulative counters for one client kernel."""

    __slots__ = ()

    @property
    def raw_file_bytes(self) -> int:
        """All application file bytes, cacheable or not."""
        return (
            self.file_bytes_read
            + self.file_bytes_written
            + self.shared_bytes_read
            + self.shared_bytes_written
            + self.directory_bytes_read
        )

    @property
    def raw_paging_bytes(self) -> int:
        return (
            self.paging_code_bytes
            + self.paging_data_bytes
            + self.paging_backing_bytes_read
            + self.paging_backing_bytes_written
        )

    @property
    def raw_total_bytes(self) -> int:
        return self.raw_file_bytes + self.raw_paging_bytes

    @property
    def uncacheable_bytes(self) -> int:
        return (
            self.shared_bytes_read
            + self.shared_bytes_written
            + self.directory_bytes_read
            + self.paging_backing_bytes_read
            + self.paging_backing_bytes_written
        )

    @property
    def blocks_cleaned_total(self) -> int:
        """Dirty blocks written to the server, any reason."""
        return (
            self.blocks_cleaned_delay
            + self.blocks_cleaned_fsync
            + self.blocks_cleaned_recall
            + self.blocks_cleaned_vm
            + self.blocks_cleaned_recovery
        )

    @property
    def dirty_blocks_accounted(self) -> int:
        """Every dirty block's eventual fate: written back, absorbed by
        a delete, destroyed by a fault, or still dirty at the final
        snapshot.  Equals :attr:`blocks_dirtied` in a consistent run
        (the chaos suite's conservation invariant)."""
        return (
            self.blocks_cleaned_total
            + self.dirty_blocks_discarded
            + self.lost_dirty_blocks
            + self.dirty_blocks_resident
        )

    @property
    def backoff_stall_seconds(self) -> float:
        """Stall time NOT explained by channel transit delay.

        ``stall_seconds`` is the total process-seconds spent waiting for
        the server; ``rpc_delay_seconds`` is the subset caused by the
        lossy channel delaying packets in flight.  The remainder is
        retransmission backoff and outage waits.  Because the two raw
        counters overlap, adding them double-counts: report
        ``stall_seconds`` alone for totals, or split it as
        ``rpc_delay_seconds`` + ``backoff_stall_seconds``.
        """
        return max(0.0, self.stall_seconds - self.rpc_delay_seconds)

    @property
    def server_bytes(self) -> int:
        """Bytes that crossed the network to or from the server.

        ``cache_read_miss_bytes`` already includes the miss bytes of
        cacheable paging, so paging misses must not be added again.
        """
        return (
            self.cache_read_miss_bytes
            + self.write_fetch_bytes
            + self.bytes_written_to_server
            + self.uncacheable_bytes
        )


_declare_counters(ClientCounters, _CLIENT_SPEC)


_SERVER_SPEC = (
    ("rpc_count", 0),
    ("open_rpcs", 0),
    ("naming_rpcs", 0),  # closes, deletes, directory ops
    ("block_reads", 0),  # blocks served to client caches
    ("block_read_bytes", 0),
    ("block_writes", 0),  # writebacks received
    ("block_write_bytes", 0),
    ("passthrough_read_bytes", 0),  # uncacheable (shared) reads
    ("passthrough_write_bytes", 0),
    ("paging_bytes", 0),
    ("recalls_issued", 0),
    ("cache_disables", 0),
    ("concurrent_write_sharing_opens", 0),
    ("server_cache_hits", 0),
    ("server_cache_misses", 0),
    ("disk_reads", 0),
    ("disk_writes", 0),
    # --- faults and recovery ----------------------------------------------
    ("crashes", 0),
    ("downtime_seconds", 0.0),
    ("reopen_rpcs", 0),  # clients re-registering opens after recovery
    ("revalidate_rpcs", 0),  # clients version-checking cached files
    ("recalls_failed", 0),  # dirty-data recall hit an unreachable client
    # --- at-most-once RPC (repro.fs.rpc) ----------------------------------
    ("duplicate_rpcs_suppressed", 0),  # arrivals not executed again
    ("rpc_replies_replayed", 0),  # answered from the reply cache
    ("stale_rpcs_dropped", 0),  # evicted seq: dropped, never replayed
    ("dedup_evictions", 0),  # replies aged out of the bounded cache
    # --- replication (repro.fs.replication) -------------------------------
    # All zero at replication_factor=1: no heartbeats, no replica ops.
    ("replica_version_pushes", 0),  # version stamps merged from peers
    ("rereplicated_files", 0),  # files copied here to restore r copies
    ("rereplication_blocks", 0),  # resident blocks copied with them
    ("heartbeats_missed", 0),  # beats this server failed to answer
    ("failure_detections", 0),  # times the detector declared this server dead
    # --- integrity (repro.fs.integrity) -----------------------------------
    # Zero unless disk faults or scrubbing are configured.
    ("checksum_failures", 0),  # verified reads that caught corruption
    ("blocks_repaired", 0),  # corrupt blocks restored from a live replica
    ("blocks_declared_lost", 0),  # corruption with no valid copy left
    ("scrub_blocks_checked", 0),  # blocks the scrubber verified
    ("scrub_corruptions_found", 0),  # scrub detections (then repaired/lost)
    ("disk_bit_rot_events", 0),  # injected: stored payload garbled
    ("disk_torn_writes", 0),  # injected: write persisted garbled
    ("disk_lost_writes", 0),  # injected: write acked, never persisted
)


class ServerCounters(_ArrayCounters):
    """Cumulative counters for the file server."""

    __slots__ = ()


_declare_counters(ServerCounters, _SERVER_SPEC)


@dataclass(slots=True)
class CounterSnapshot:
    """One timestamped reading of a client's counters."""

    time: float
    client_id: int
    counters: ClientCounters = field(repr=False)
