"""The kernel counters.

Section 3: "approximately 50 counters that recorded statistics about
cache traffic, ages of blocks in the cache, the size of the cache, etc.
A user-level process read the counters at regular intervals."  The
simulator keeps the same counters per client and snapshots them on a
simulated schedule; :mod:`repro.caching` post-processes the snapshots
into Tables 4-9, just as the authors post-processed their counter
files.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable


@dataclass(slots=True)
class ClientCounters:
    """Cumulative counters for one client kernel."""

    # --- raw application traffic (before any cache) -----------------------
    file_open_ops: int = 0
    file_bytes_read: int = 0
    file_bytes_written: int = 0
    shared_bytes_read: int = 0  # uncacheable: concurrent write-sharing
    shared_bytes_written: int = 0
    directory_bytes_read: int = 0  # uncacheable: directories not cached
    paging_code_bytes: int = 0  # cacheable paging (executable files)
    paging_data_bytes: int = 0  # cacheable paging (initialized data)
    paging_backing_bytes_read: int = 0  # uncacheable paging
    paging_backing_bytes_written: int = 0

    # --- cache operations ---------------------------------------------------
    cache_read_ops: int = 0
    cache_read_misses: int = 0
    cache_read_bytes: int = 0
    cache_read_miss_bytes: int = 0  # bytes fetched from the server
    cache_write_ops: int = 0
    cache_write_bytes: int = 0
    write_fetch_ops: int = 0  # partial write of a non-resident block
    write_fetch_bytes: int = 0

    # migrated-process split of the above
    migrated_read_ops: int = 0
    migrated_read_misses: int = 0
    migrated_read_bytes: int = 0
    migrated_read_miss_bytes: int = 0
    migrated_write_ops: int = 0
    migrated_write_bytes: int = 0
    migrated_write_fetch_ops: int = 0

    # paging cache behaviour
    paging_read_ops: int = 0
    paging_read_misses: int = 0
    paging_read_miss_bytes: int = 0

    # --- writeback ------------------------------------------------------------
    bytes_written_to_server: int = 0
    blocks_dirtied: int = 0  # clean->dirty transitions, ever
    blocks_cleaned_delay: int = 0
    blocks_cleaned_fsync: int = 0
    blocks_cleaned_recall: int = 0
    blocks_cleaned_vm: int = 0
    blocks_cleaned_recovery: int = 0  # replayed after a crash/partition
    clean_age_sum_delay: float = 0.0
    clean_age_sum_fsync: float = 0.0
    clean_age_sum_recall: float = 0.0
    clean_age_sum_vm: float = 0.0
    clean_age_sum_recovery: float = 0.0
    dirty_bytes_discarded: int = 0  # deleted/truncated before writeback
    dirty_blocks_discarded: int = 0

    # --- faults and recovery ---------------------------------------------------
    crashes: int = 0  # times this client rebooted
    partitions: int = 0  # partitions that hit this client
    lost_dirty_blocks: int = 0  # dirty data destroyed by a crash or conflict
    lost_dirty_bytes: int = 0
    rpc_retries: int = 0  # backoff attempts against an unreachable server
    rpc_failed_ops: int = 0  # data ops dropped after rpc_timeout ("fail" mode)
    stall_seconds: float = 0.0  # process-seconds spent waiting for the server
    ops_dropped_while_down: int = 0  # trace records hitting a dead client
    stale_reads_served: int = 0  # cache hits on stale data while partitioned
    stale_read_bytes: int = 0

    # --- the message-level transport (repro.fs.rpc) ----------------------------
    # All zero unless the channel is lossy: the transport books nothing
    # on the inert fast path, keeping fault-free runs byte-identical.
    rpc_messages_sent: int = 0  # packets offered to the lossy channel
    rpc_retransmissions: int = 0  # resends after a lost request or reply
    rpc_replies_lost: int = 0  # request executed but its reply dropped
    # Channel-delay stall.  This is a *component* of stall_seconds, not
    # an addition to it: every second booked here was also booked there.
    # Consumers must report one or the other, never their sum (see
    # backoff_stall_seconds for the complement).
    rpc_delay_seconds: float = 0.0
    reopen_rpcs: int = 0  # recovery: re-register open files
    revalidate_rpcs: int = 0  # recovery: version-check cached files
    blocks_invalidated_on_recovery: int = 0  # failed re-validation
    dirty_blocks_resident: int = 0  # current, sampled at snapshot time

    # --- replacement ------------------------------------------------------------
    blocks_replaced_for_file: int = 0
    blocks_replaced_for_vm: int = 0
    replace_age_sum_file: float = 0.0  # seconds since last reference
    replace_age_sum_vm: float = 0.0

    # --- cache size -----------------------------------------------------------
    cache_size_bytes: int = 0  # current, sampled at snapshot time
    vm_resident_bytes: int = 0

    def copy(self) -> "ClientCounters":
        """A value snapshot of every counter."""
        clone = ClientCounters()
        for item in fields(self):
            setattr(clone, item.name, getattr(self, item.name))
        return clone

    @property
    def raw_file_bytes(self) -> int:
        """All application file bytes, cacheable or not."""
        return (
            self.file_bytes_read
            + self.file_bytes_written
            + self.shared_bytes_read
            + self.shared_bytes_written
            + self.directory_bytes_read
        )

    @property
    def raw_paging_bytes(self) -> int:
        return (
            self.paging_code_bytes
            + self.paging_data_bytes
            + self.paging_backing_bytes_read
            + self.paging_backing_bytes_written
        )

    @property
    def raw_total_bytes(self) -> int:
        return self.raw_file_bytes + self.raw_paging_bytes

    @property
    def uncacheable_bytes(self) -> int:
        return (
            self.shared_bytes_read
            + self.shared_bytes_written
            + self.directory_bytes_read
            + self.paging_backing_bytes_read
            + self.paging_backing_bytes_written
        )

    @property
    def blocks_cleaned_total(self) -> int:
        """Dirty blocks written to the server, any reason."""
        return (
            self.blocks_cleaned_delay
            + self.blocks_cleaned_fsync
            + self.blocks_cleaned_recall
            + self.blocks_cleaned_vm
            + self.blocks_cleaned_recovery
        )

    @property
    def dirty_blocks_accounted(self) -> int:
        """Every dirty block's eventual fate: written back, absorbed by
        a delete, destroyed by a fault, or still dirty at the final
        snapshot.  Equals :attr:`blocks_dirtied` in a consistent run
        (the chaos suite's conservation invariant)."""
        return (
            self.blocks_cleaned_total
            + self.dirty_blocks_discarded
            + self.lost_dirty_blocks
            + self.dirty_blocks_resident
        )

    @property
    def backoff_stall_seconds(self) -> float:
        """Stall time NOT explained by channel transit delay.

        ``stall_seconds`` is the total process-seconds spent waiting for
        the server; ``rpc_delay_seconds`` is the subset caused by the
        lossy channel delaying packets in flight.  The remainder is
        retransmission backoff and outage waits.  Because the two raw
        counters overlap, adding them double-counts: report
        ``stall_seconds`` alone for totals, or split it as
        ``rpc_delay_seconds`` + ``backoff_stall_seconds``.
        """
        return max(0.0, self.stall_seconds - self.rpc_delay_seconds)

    @property
    def server_bytes(self) -> int:
        """Bytes that crossed the network to or from the server.

        ``cache_read_miss_bytes`` already includes the miss bytes of
        cacheable paging, so paging misses must not be added again.
        """
        return (
            self.cache_read_miss_bytes
            + self.write_fetch_bytes
            + self.bytes_written_to_server
            + self.uncacheable_bytes
        )


@dataclass(slots=True)
class ServerCounters:
    """Cumulative counters for the file server."""

    rpc_count: int = 0
    open_rpcs: int = 0
    naming_rpcs: int = 0  # closes, deletes, directory ops
    block_reads: int = 0  # blocks served to client caches
    block_read_bytes: int = 0
    block_writes: int = 0  # writebacks received
    block_write_bytes: int = 0
    passthrough_read_bytes: int = 0  # uncacheable (shared) reads
    passthrough_write_bytes: int = 0
    paging_bytes: int = 0
    recalls_issued: int = 0
    cache_disables: int = 0
    concurrent_write_sharing_opens: int = 0
    server_cache_hits: int = 0
    server_cache_misses: int = 0
    disk_reads: int = 0
    disk_writes: int = 0

    # --- faults and recovery ---------------------------------------------------
    crashes: int = 0
    downtime_seconds: float = 0.0
    reopen_rpcs: int = 0  # clients re-registering opens after recovery
    revalidate_rpcs: int = 0  # clients version-checking cached files
    recalls_failed: int = 0  # dirty-data recall hit an unreachable client

    # --- at-most-once RPC (repro.fs.rpc) ---------------------------------------
    duplicate_rpcs_suppressed: int = 0  # arrivals not executed again
    rpc_replies_replayed: int = 0  # answered from the reply cache
    stale_rpcs_dropped: int = 0  # evicted seq: dropped, never replayed
    dedup_evictions: int = 0  # replies aged out of the bounded cache

    def copy(self) -> "ServerCounters":
        clone = ServerCounters()
        for item in fields(self):
            setattr(clone, item.name, getattr(self, item.name))
        return clone

    @classmethod
    def aggregate(cls, many: "Iterable[ServerCounters]") -> "ServerCounters":
        """Field-wise sum across server shards.

        Every server counter is a cumulative sum (downtime included), so
        the whole-cluster view is the plain total -- what Tables 5-9
        report for the aggregated server.
        """
        total = cls()
        names = [item.name for item in fields(cls)]
        for counters in many:
            for name in names:
                setattr(total, name, getattr(total, name) + getattr(counters, name))
        return total


@dataclass(slots=True)
class CounterSnapshot:
    """One timestamped reading of a client's counters."""

    time: float
    client_id: int
    counters: ClientCounters = field(repr=False)
