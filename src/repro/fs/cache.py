"""The client block cache.

File data is cached in 4-Kbyte blocks chosen for replacement by least
recent use (Section 5.4).  A block is identified by (file id, block
index).  Dirty blocks remember when they first became dirty so the
writeback daemon can find 30-second-old data, and every block remembers
its last reference so replacement ages can be measured (Table 8).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import CacheError

BlockKey = tuple[int, int]  # (file_id, block_index)


class EvictionReason(enum.Enum):
    """Why a block left the cache (Table 8)."""

    FOR_FILE_BLOCK = "another_file_block"
    FOR_VM = "virtual_memory"
    INVALIDATED = "invalidated"  # delete/truncate/consistency flush


class CleanReason(enum.Enum):
    """Why a dirty block was written to the server (Table 9)."""

    DELAY = "30_second_delay"
    FSYNC = "application_fsync"
    RECALL = "server_recall"
    VM = "given_to_vm"
    RECOVERY = "crash_recovery_replay"  # overdue writes replayed after an outage


@dataclass(slots=True)
class CacheBlock:
    """One resident 4-Kbyte block."""

    file_id: int
    index: int
    dirty: bool = False
    dirty_since: float = -1.0
    last_referenced: float = 0.0
    #: Set while the owning file is being written by a migrated process
    #: (used only for per-class accounting).
    migrated: bool = False
    #: Highest byte offset written within the block.  A writeback sends
    #: "the portion from the beginning of the cache block to the end of
    #: the appended data" (Section 5.2), i.e. this many bytes.  Blocks
    #: fetched from the server are fully valid (= block size).
    written_end: int = 0

    @property
    def key(self) -> BlockKey:
        return (self.file_id, self.index)


class BlockCache:
    """An LRU block cache with explicit dirty-block bookkeeping.

    The cache does not decide its own capacity: the client kernel asks
    the VM negotiation layer how many blocks it may hold and calls
    :meth:`shrink_to`.  That keeps the 20-minute trading policy in one
    place (:mod:`repro.fs.vm`).
    """

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise CacheError(f"bad block size {block_size}")
        self.block_size = block_size
        #: LRU order: oldest first.
        self._blocks: OrderedDict[BlockKey, CacheBlock] = OrderedDict()
        self._dirty: dict[BlockKey, CacheBlock] = {}
        #: ``_dirty`` is insertion-ordered, and blocks are inserted with
        #: the (monotonic) simulated clock, so iteration order is also
        #: ``dirty_since`` order and age queries can stop early.  The
        #: newest stamp detects a non-monotonic caller; the offending
        #: blocks are tracked individually so the early exit returns as
        #: soon as they clean, instead of only when the dirty set fully
        #: drains.
        self._newest_dirty_since = float("-inf")
        #: Dirty blocks whose stamp broke the insertion-order invariant.
        #: While non-empty, age queries fall back to the full scan.
        self._out_of_order: set[BlockKey] = set()
        #: Dirty blocks evicted without a write-back (``evict_lru`` with
        #: ``allow_dirty``); feeds the oracle's dirty-byte conservation.
        self.dirty_evictions = 0
        #: Per-file index so deletes/recalls don't scan the whole cache.
        self._by_file: dict[int, set[BlockKey]] = {}

    @property
    def _dirty_in_order(self) -> bool:
        """True while ``_dirty`` iteration order is ``dirty_since`` order
        (no out-of-order stamps outstanding), enabling the early exit."""
        return not self._out_of_order

    # --- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._blocks

    @property
    def size_bytes(self) -> int:
        return len(self._blocks) * self.block_size

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def get(self, key: BlockKey) -> CacheBlock | None:
        return self._blocks.get(key)

    def blocks_of_file(self, file_id: int) -> list[CacheBlock]:
        """All resident blocks of one file (any order)."""
        keys = self._by_file.get(file_id)
        if not keys:
            return []
        return [self._blocks[key] for key in keys]

    def dirty_blocks_of_file(self, file_id: int) -> list[CacheBlock]:
        """The dirty subset of one file's resident blocks."""
        keys = self._by_file.get(file_id)
        if not keys:
            return []
        return [self._blocks[key] for key in keys if key in self._dirty]

    def dirty_blocks(self) -> list[CacheBlock]:
        """All dirty blocks (unspecified order)."""
        return list(self._dirty.values())

    def dirty_blocks_older_than(self, cutoff: float) -> list[CacheBlock]:
        """Dirty blocks whose data became dirty at or before ``cutoff``.

        The writeback daemon calls this every simulated 5 seconds; with
        the ordering invariant it pays for the old blocks it returns,
        not for every dirty block in the cache.
        """
        if not self._dirty_in_order:
            return [b for b in self._dirty.values() if b.dirty_since <= cutoff]
        out: list[CacheBlock] = []
        for block in self._dirty.values():
            if block.dirty_since > cutoff:
                break
            out.append(block)
        return out

    def oldest_dirty_since(self) -> float | None:
        """O(1) peek at the oldest dirty stamp.

        None when nothing is dirty *or* the ordering invariant is broken
        (out-of-order stamps outstanding) -- callers must treat None as
        "don't know, do the full query", not as "no dirty data".
        """
        if not self._dirty or self._out_of_order:
            return None
        return next(iter(self._dirty.values())).dirty_since

    def resident_files(self) -> list[int]:
        """Ids of every file with at least one resident block."""
        return list(self._by_file)

    def lru_block(self) -> CacheBlock | None:
        """The least recently used block, or None if empty."""
        if not self._blocks:
            return None
        return next(iter(self._blocks.values()))

    # --- mutation ------------------------------------------------------------

    def touch(self, key: BlockKey, now: float) -> CacheBlock:
        """Mark a resident block most recently used."""
        block = self._blocks.get(key)
        if block is None:
            raise CacheError(f"touch of non-resident block {key}")
        block.last_referenced = now
        self._blocks.move_to_end(key)
        return block

    def touch_if_present(self, key: BlockKey, now: float) -> CacheBlock | None:
        """Touch and return the block, or None on a miss.

        One call doing what ``key in cache`` + ``touch`` did in two --
        the read path asks this for every block of every read run.
        """
        block = self._blocks.get(key)
        if block is not None:
            block.last_referenced = now
            self._blocks.move_to_end(key)
        return block

    def insert(self, key: BlockKey, now: float, migrated: bool = False) -> CacheBlock:
        """Insert a clean block (fetched or about to be overwritten)."""
        blocks = self._blocks
        if key in blocks:
            raise CacheError(f"double insert of block {key}")
        file_id = key[0]
        block = CacheBlock(file_id, key[1], False, -1.0, now, migrated, 0)
        blocks[key] = block
        by_file = self._by_file
        keys = by_file.get(file_id)
        if keys is None:
            by_file[file_id] = {key}
        else:
            keys.add(key)
        return block

    def mark_dirty(self, key: BlockKey, now: float, migrated: bool = False) -> None:
        """Mark a resident block dirty (first write stamps dirty_since)."""
        block = self._blocks.get(key)
        if block is None:
            raise CacheError(f"write to non-resident block {key}")
        if not block.dirty:
            block.dirty = True
            block.dirty_since = now
            self._dirty[key] = block
            if now >= self._newest_dirty_since:
                self._newest_dirty_since = now
            else:
                # A backdated stamp: only this block violates the
                # iteration-order invariant.  The early exit resumes as
                # soon as every such block is cleaned or removed.
                self._out_of_order.add(key)
        block.last_referenced = now
        block.migrated = block.migrated or migrated
        self._blocks.move_to_end(key)

    def mark_clean(self, key: BlockKey) -> None:
        """Mark a dirty block clean (after writeback)."""
        block = self._dirty.pop(key, None)
        if block is None:
            raise CacheError(f"clean of non-dirty block {key}")
        block.dirty = False
        block.dirty_since = -1.0
        self._out_of_order.discard(key)
        if not self._dirty:
            self._newest_dirty_since = float("-inf")

    def remove(self, key: BlockKey) -> CacheBlock:
        """Remove a block outright (eviction or invalidation)."""
        block = self._blocks.pop(key, None)
        if block is None:
            raise CacheError(f"remove of non-resident block {key}")
        if self._dirty.pop(key, None) is not None:
            self._out_of_order.discard(key)
            if not self._dirty:
                self._newest_dirty_since = float("-inf")
        keys = self._by_file.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_file[key[0]]
        return block

    def evict_lru(self, allow_dirty: bool = False) -> CacheBlock:
        """Evict the least recently used block.

        With such long cache lifetimes dirty blocks have almost always
        been written back before they reach the LRU end; if the LRU
        block *is* dirty, the caller is responsible for writing it back
        first (the paper notes this is rare).  Evicting a dirty block
        therefore raises :class:`CacheError` unless the caller passes
        ``allow_dirty=True``, which books the lost data in
        :attr:`dirty_evictions` so the oracle's dirty-byte conservation
        check still balances.
        """
        block = self.lru_block()
        if block is None:
            raise CacheError("evict from an empty cache")
        if block.dirty:
            if not allow_dirty:
                raise CacheError(
                    f"evict_lru would drop dirty block {block.key}; write it "
                    "back first or pass allow_dirty=True"
                )
            self.dirty_evictions += 1
        return self.remove(block.key)

    def clear(self) -> list[CacheBlock]:
        """Drop every block (a client crash: the machine's memory is
        gone).  Returns the blocks that were resident."""
        victims = list(self._blocks.values())
        self._blocks.clear()
        self._dirty.clear()
        self._by_file.clear()
        self._out_of_order.clear()
        self._newest_dirty_since = float("-inf")
        return victims

    def invalidate_file(self, file_id: int) -> list[CacheBlock]:
        """Drop every block of a file (delete, truncate, stale data)."""
        victims = self.blocks_of_file(file_id)
        for block in victims:
            self.remove(block.key)
        return victims
