"""The server's block cache.

The main file server had 128 Mbytes of memory, and "on file servers, the
caches automatically adjust themselves to fill nearly all of memory"
(Section 5.1).  The model is a plain LRU over block keys with a fixed
byte capacity -- capacity negotiation matters on clients, not here.

A per-file key index shadows the LRU so ``invalidate_file`` (every
delete and truncate RPC) touches only the victim file's blocks instead
of scanning the whole cache -- on a 128-Mbyte cache that scan used to
dominate replay wall clock.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import CacheError


class ServerCache:
    """Fixed-capacity LRU of (file_id, block_index) keys."""

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        if capacity_bytes <= 0 or block_size <= 0:
            raise CacheError(
                f"bad server cache geometry: {capacity_bytes}/{block_size}"
            )
        self.capacity_blocks = max(1, capacity_bytes // block_size)
        self.block_size = block_size
        self._blocks: OrderedDict[tuple[int, int], float] = OrderedDict()
        #: file_id -> resident block indexes (mirrors ``_blocks`` keys).
        self._by_file: dict[int, set[int]] = {}
        #: (file_id, index) -> (payload, checksum) content mirrors for
        #: the integrity layer (repro.fs.integrity); None (the default)
        #: skips every mirror branch below, so caches without integrity
        #: run exactly the old code.
        self.payloads: dict[tuple[int, int], tuple[int, int]] | None = None
        self.hits = 0
        self.misses = 0

    def enable_integrity(self) -> None:
        """Start mirroring block content for verified reads."""
        if self.payloads is None:
            self.payloads = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def access(self, file_id: int, index: int, now: float) -> bool:
        """Read access; returns True on hit, installing on miss."""
        key = (file_id, index)
        blocks = self._blocks
        if key in blocks:
            blocks.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self.install(file_id, index, now)
        return False

    def install(self, file_id: int, index: int, now: float) -> None:
        """Place a block in the cache (after a disk read or writeback)."""
        key = (file_id, index)
        blocks = self._blocks
        if key in blocks:
            blocks.move_to_end(key)
        else:
            by_file = self._by_file
            members = by_file.get(file_id)
            if members is None:
                by_file[file_id] = {index}
            else:
                members.add(index)
        blocks[key] = now
        if len(blocks) > self.capacity_blocks:
            by_file = self._by_file
            payloads = self.payloads
            while len(blocks) > self.capacity_blocks:
                evicted = blocks.popitem(last=False)[0]
                evicted_file, evicted_index = evicted
                indexes = by_file[evicted_file]
                indexes.discard(evicted_index)
                if not indexes:
                    del by_file[evicted_file]
                if payloads is not None:
                    payloads.pop(evicted, None)

    def clear(self) -> int:
        """Drop everything (a server crash loses the whole cache);
        returns how many blocks were resident.  Hit/miss counts are
        cumulative across reboots and are kept."""
        count = len(self._blocks)
        self._blocks.clear()
        self._by_file.clear()
        if self.payloads is not None:
            self.payloads.clear()
        return count

    def invalidate_file(self, file_id: int) -> int:
        """Drop all blocks of one file; returns how many were dropped."""
        indexes = self._by_file.pop(file_id, None)
        if not indexes:
            return 0
        blocks = self._blocks
        payloads = self.payloads
        for index in indexes:
            del blocks[(file_id, index)]
            if payloads is not None:
                payloads.pop((file_id, index), None)
        return len(indexes)
