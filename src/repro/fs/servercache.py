"""The server's block cache.

The main file server had 128 Mbytes of memory, and "on file servers, the
caches automatically adjust themselves to fill nearly all of memory"
(Section 5.1).  The model is a plain LRU over block keys with a fixed
byte capacity -- capacity negotiation matters on clients, not here.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import CacheError


class ServerCache:
    """Fixed-capacity LRU of (file_id, block_index) keys."""

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        if capacity_bytes <= 0 or block_size <= 0:
            raise CacheError(
                f"bad server cache geometry: {capacity_bytes}/{block_size}"
            )
        self.capacity_blocks = max(1, capacity_bytes // block_size)
        self.block_size = block_size
        self._blocks: OrderedDict[tuple[int, int], float] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def access(self, file_id: int, index: int, now: float) -> bool:
        """Read access; returns True on hit, installing on miss."""
        key = (file_id, index)
        if key in self._blocks:
            self._blocks.move_to_end(key)
            self._blocks[key] = now
            self.hits += 1
            return True
        self.misses += 1
        self.install(file_id, index, now)
        return False

    def install(self, file_id: int, index: int, now: float) -> None:
        """Place a block in the cache (after a disk read or writeback)."""
        key = (file_id, index)
        if key in self._blocks:
            self._blocks.move_to_end(key)
        self._blocks[key] = now
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)

    def clear(self) -> int:
        """Drop everything (a server crash loses the whole cache);
        returns how many blocks were resident.  Hit/miss counts are
        cumulative across reboots and are kept."""
        count = len(self._blocks)
        self._blocks.clear()
        return count

    def invalidate_file(self, file_id: int) -> int:
        """Drop all blocks of one file; returns how many were dropped."""
        victims = [key for key in self._blocks if key[0] == file_id]
        for key in victims:
            del self._blocks[key]
        return len(victims)
