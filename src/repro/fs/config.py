"""Cluster simulator configuration.

Every policy constant the paper describes is a field here, so ablations
(write-through instead of delayed writes, a fixed 10% cache as in
contemporary UNIX kernels, symmetric VM trading) are configuration
changes rather than code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.fs.faults import FaultConfig
from repro.common.units import (
    BLOCK_SIZE,
    DEFAULT_CLIENT_COUNT,
    DEFAULT_CLIENT_MEMORY,
    DEFAULT_SERVER_MEMORY,
    DELAYED_WRITE_SECONDS,
    MB,
    VM_PREFERENCE_SECONDS,
    WRITEBACK_SCAN_INTERVAL,
)


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of one simulated Sprite cluster."""

    client_count: int = DEFAULT_CLIENT_COUNT
    client_memory: int = DEFAULT_CLIENT_MEMORY
    server_memory: int = DEFAULT_SERVER_MEMORY
    block_size: int = BLOCK_SIZE

    #: File servers in the cluster.  The measured cluster had four; the
    #: file space is partitioned across them by a seeded hash of the
    #: file id (see repro.fs.sharding).  1 = the classic single-server
    #: configuration, byte-identical to builds that predate sharding.
    num_servers: int = 1
    #: Seed of the file->server placement hash.  Deliberately separate
    #: from the replay seed so placement is stable across the seed
    #: offsets the experiment tables use for their replays.
    placement_seed: int = 0

    #: Copies of every file, on distinct servers.  1 = no replication
    #: (byte-identical to builds that predate it); r > 1 places each
    #: file on r servers chosen by the placement hash, serves reads
    #: from any live replica, and re-replicates when the failure
    #: detector declares a replica dead.
    replication_factor: int = 1
    #: The failure detector's heartbeat period.  The default matches
    #: the writeback scan interval so the detector shares that tick's
    #: single recurring engine event (repro.sim.timers.SharedTicker).
    heartbeat_interval: float = WRITEBACK_SCAN_INTERVAL
    #: Consecutive missed heartbeats before a server is declared dead
    #: and its files re-replicated.
    heartbeat_miss_threshold: int = 3

    #: Dirty data is written to the server this long after it was written.
    writeback_delay: float = DELAYED_WRITE_SECONDS
    #: The daemon scans for 30-second-old dirty blocks at this period.
    writeback_scan_interval: float = WRITEBACK_SCAN_INTERVAL
    #: Write everything through immediately (ablation of the delay).
    write_through: bool = False

    #: Memory the kernel itself occupies on each client (not tradable).
    kernel_memory: int = 4 * MB
    #: Minimum size the file cache may shrink to.
    min_cache_size: int = 512 * 1024
    #: VM pages must be unreferenced this long before the file cache may
    #: claim them (Sprite's 20-minute preference for virtual memory).
    vm_preference: float = VM_PREFERENCE_SECONDS
    #: Cap the cache at this fraction of memory; 1.0 = Sprite's dynamic
    #: behaviour, 0.10 = the fixed allocation of contemporary UNIX.
    max_cache_fraction: float = 1.0

    #: Probability that an application follows a written file's close
    #: with an fsync (Table 9's "write-through requested by application").
    fsync_probability: float = 0.13

    #: Counter snapshots are taken at this period (seconds).
    snapshot_interval: float = 300.0

    #: Independent client groups for scale-out (partitioned) replay.
    #: 1 (the default) is the classic fully-shared cluster,
    #: byte-identical to builds that predate grouping.  With G > 1 the
    #: clients are divided into G contiguous equal blocks and the
    #: servers into G contiguous equal slices; each group's clients
    #: route every operation into their own slice, file ids are
    #: group-strided (``file_id % G`` names the owning group), and the
    #: per-close fsync decision becomes a pure hash of the open id so
    #: no cross-group RNG sequencing exists.  Groups therefore evolve
    #: independently, which is what lets a replay be partitioned across
    #: workers and merged byte-identically (repro.pipeline.scaleout).
    client_groups: int = 1

    #: Per-group client counts for unequal splits (scale-out planning
    #: distributes a population remainder over the first groups).  The
    #: empty default keeps the historical equal split, in which case
    #: ``client_groups`` must evenly divide ``client_count``; when set
    #: it must have one positive entry per group summing to
    #: ``client_count``.  Group ``g`` owns the contiguous client-id
    #: block starting at ``sum(sizes[:g])``.
    client_group_sizes: tuple[int, ...] = ()

    #: Paging model: target paging bytes as a fraction of file bytes
    #: (the paper measured paging at roughly 35% of all traffic).
    paging_intensity: float = 1.0

    #: Background scrub period in seconds (repro.fs.integrity): each
    #: server's durable blocks are checksum-verified in chunks at this
    #: interval, with a full verification pass at end of replay.  0 (the
    #: default) disables scrubbing; combined with zero disk-fault rates
    #: no integrity layer is built at all and replays stay
    #: byte-identical to builds that predate it.
    scrub_interval: float = 0.0

    #: Fault injection (server/client crashes, network partitions) and
    #: the RPC retry policy.  All rates default to zero: a default
    #: config replays byte-identically to a fault-free build.
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        if self.client_count <= 0:
            raise ConfigError("need at least one client")
        if self.num_servers <= 0:
            raise ConfigError("need at least one server")
        if not 1 <= self.replication_factor <= self.num_servers:
            raise ConfigError(
                f"replication factor {self.replication_factor} must be in "
                f"[1, num_servers={self.num_servers}]"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat interval must be positive")
        if self.heartbeat_miss_threshold < 1:
            raise ConfigError("heartbeat miss threshold must be at least 1")
        if self.block_size <= 0 or self.block_size % 512:
            raise ConfigError(f"implausible block size {self.block_size}")
        if self.client_memory < self.kernel_memory + self.min_cache_size:
            raise ConfigError("client memory smaller than kernel + minimum cache")
        if self.writeback_delay < 0 or self.writeback_scan_interval <= 0:
            raise ConfigError("bad writeback timing parameters")
        if not 0.0 <= self.fsync_probability <= 1.0:
            raise ConfigError(f"bad fsync probability {self.fsync_probability}")
        if not 0.0 < self.max_cache_fraction <= 1.0:
            raise ConfigError(f"bad max cache fraction {self.max_cache_fraction}")
        if self.snapshot_interval <= 0:
            raise ConfigError("snapshot interval must be positive")
        if self.scrub_interval < 0:
            raise ConfigError(
                f"scrub_interval must be >= 0 seconds (0 = scrubbing off), "
                f"got {self.scrub_interval}"
            )
        if not isinstance(self.faults, FaultConfig):
            raise ConfigError(
                f"faults must be a FaultConfig, got {type(self.faults).__name__}"
            )
        if self.client_groups < 1:
            raise ConfigError(
                f"client_groups must be >= 1, got {self.client_groups}"
            )
        if self.client_group_sizes and self.client_groups == 1:
            raise ConfigError(
                "client_group_sizes requires client_groups > 1 "
                f"(got sizes {self.client_group_sizes})"
            )
        if self.client_groups > 1:
            if self.client_group_sizes:
                if len(self.client_group_sizes) != self.client_groups:
                    raise ConfigError(
                        f"client_group_sizes has {len(self.client_group_sizes)} "
                        f"entries for client_groups={self.client_groups}"
                    )
                if any(size < 1 for size in self.client_group_sizes):
                    raise ConfigError(
                        "every client group needs at least one client, got "
                        f"sizes {self.client_group_sizes}"
                    )
                if sum(self.client_group_sizes) != self.client_count:
                    raise ConfigError(
                        f"client_group_sizes sum to "
                        f"{sum(self.client_group_sizes)}, not "
                        f"client_count={self.client_count}"
                    )
            elif self.client_count % self.client_groups:
                raise ConfigError(
                    f"client_groups={self.client_groups} must evenly divide "
                    f"client_count={self.client_count} (or pass "
                    "client_group_sizes for an unequal split)"
                )
            if self.num_servers % self.client_groups:
                raise ConfigError(
                    f"client_groups={self.client_groups} must evenly divide "
                    f"num_servers={self.num_servers}"
                )
            # Replication, fault timelines, and scrub cursors are all
            # confined to a group's own server slice and RNG fork, so
            # they compose with grouping; the one per-group bound is
            # that a file's replica chain must fit its group's slice.
            if self.replication_factor > self.num_servers // self.client_groups:
                raise ConfigError(
                    f"replication_factor={self.replication_factor} does not "
                    f"fit a group's server slice (num_servers="
                    f"{self.num_servers} // client_groups="
                    f"{self.client_groups} = "
                    f"{self.num_servers // self.client_groups} servers per "
                    "group)"
                )

    @property
    def client_page_count(self) -> int:
        """Tradable pages per client (total minus kernel)."""
        return (self.client_memory - self.kernel_memory) // self.block_size

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """Per-group client counts (a 1-tuple for the classic cluster)."""
        if self.client_groups == 1:
            return (self.client_count,)
        if self.client_group_sizes:
            return self.client_group_sizes
        return (
            self.client_count // self.client_groups,
        ) * self.client_groups

    @property
    def group_client_offsets(self) -> tuple[int, ...]:
        """Prefix sums of :attr:`group_sizes`, length ``groups + 1``:
        group ``g`` owns the client-id block ``[off[g], off[g+1])``."""
        offsets = [0]
        for size in self.group_sizes:
            offsets.append(offsets[-1] + size)
        return tuple(offsets)
