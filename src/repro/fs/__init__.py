"""The Sprite distributed file system simulator.

A discrete-event model of the measured cluster: diskless clients with
dynamically sized block caches, a virtual memory system with the
20-minute preference rule, 30-second delayed writes scanned by a
5-second daemon, servers that keep caches and enforce consistency by
timestamps / dirty-data recall / cache disabling, a paging model
(code / initialized-data / backing-file pages), and full RPC + byte
accounting.  Driven by replaying a trace, it produces the kernel-counter
data behind Tables 4-9.
"""

from repro.fs.config import ClusterConfig
from repro.fs.faults import (
    DiskFaultEvent,
    DiskFaultKind,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    SERVER_TARGET,
)
from repro.fs.integrity import (
    IntegrityCell,
    IntegrityManager,
    IntegrityStudyResult,
    block_checksum,
    block_payload,
    checksum_ok,
    compute_integrity_study,
)
from repro.fs.counters import ClientCounters, CounterSnapshot, ServerCounters
from repro.fs.cache import BlockCache, EvictionReason, CleanReason
from repro.fs.vm import VirtualMemory
from repro.fs.server import Server
from repro.fs.sharding import Placement
from repro.fs.client import ClientKernel
from repro.fs.paging import PagingModel
from repro.fs.cluster import Cluster, ClusterResult, run_cluster_on_trace
from repro.fs.latency import PagingLatencyAnalysis, analyze_paging_latency
from repro.fs.oracle import InvariantViolation, ProtocolOracle, Violation
from repro.fs.replication import (
    ReplicaMap,
    ReplicationCell,
    ReplicationManager,
    ReplicationStudyResult,
    compute_replication_study,
)
from repro.fs.rpc import (
    BackoffPolicy,
    Channel,
    DedupCache,
    DedupStatus,
    Delivery,
    Message,
    RpcTransport,
    ServerEndpoint,
)

__all__ = [
    "ClusterConfig",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "SERVER_TARGET",
    "ClientCounters",
    "ServerCounters",
    "CounterSnapshot",
    "BlockCache",
    "EvictionReason",
    "CleanReason",
    "VirtualMemory",
    "Server",
    "Placement",
    "ClientKernel",
    "PagingModel",
    "Cluster",
    "ClusterResult",
    "run_cluster_on_trace",
    "PagingLatencyAnalysis",
    "analyze_paging_latency",
    "BackoffPolicy",
    "Channel",
    "DedupCache",
    "DedupStatus",
    "Delivery",
    "Message",
    "RpcTransport",
    "ServerEndpoint",
    "InvariantViolation",
    "ProtocolOracle",
    "Violation",
    "ReplicaMap",
    "ReplicationCell",
    "ReplicationManager",
    "ReplicationStudyResult",
    "compute_replication_study",
    "DiskFaultEvent",
    "DiskFaultKind",
    "IntegrityCell",
    "IntegrityManager",
    "IntegrityStudyResult",
    "block_checksum",
    "block_payload",
    "checksum_ok",
    "compute_integrity_study",
]
