"""The file server: naming, caching, and cache consistency.

Section 5's description, implemented directly:

* Servers cache both naming information and file data; all naming
  operations (opens, closes, deletes) pass through to the server.
* Consistency uses three mechanisms: **timestamps** (a client flushes
  stale blocks when the version it cached is out of date), **recall**
  (the server tracks each file's last writer and recalls dirty data when
  another client opens the file), and **cache disabling** (while a file
  is concurrently write-shared, all clients bypass their caches and
  every request goes to the server).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConsistencyError
from repro.fs.counters import ServerCounters
from repro.fs.servercache import ServerCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.client import ClientKernel

# Bound counter positions for the per-RPC paths (see ClientCounters
# notes in repro.fs.client -- same trick, the server side).
_IDX = ServerCounters.INDEX
_RPC_COUNT = _IDX["rpc_count"]
_OPEN_RPCS = _IDX["open_rpcs"]
_NAMING_RPCS = _IDX["naming_rpcs"]
_BLOCK_READS = _IDX["block_reads"]
_BLOCK_READ_BYTES = _IDX["block_read_bytes"]
_BLOCK_WRITES = _IDX["block_writes"]
_BLOCK_WRITE_BYTES = _IDX["block_write_bytes"]
_PASSTHROUGH_READ_BYTES = _IDX["passthrough_read_bytes"]
_PASSTHROUGH_WRITE_BYTES = _IDX["passthrough_write_bytes"]
_PAGING_BYTES = _IDX["paging_bytes"]
_SERVER_CACHE_HITS = _IDX["server_cache_hits"]
_SERVER_CACHE_MISSES = _IDX["server_cache_misses"]
_DISK_READS = _IDX["disk_reads"]
_DISK_WRITES = _IDX["disk_writes"]


@dataclass
class FileServerState:
    """Consistency metadata for one file."""

    file_id: int
    version: int = 0
    #: Client that last wrote the file (-1 = none / written back).
    last_writer: int = -1
    #: Clients currently holding the file open for reading.
    readers: dict[int, int] = field(default_factory=dict)  # client -> count
    #: Clients currently holding the file open for writing.
    writers: dict[int, int] = field(default_factory=dict)
    #: True while concurrent write-sharing has caching disabled.
    uncacheable: bool = False


@dataclass
class OpenReply:
    """What the server tells an opening client."""

    version: int
    cacheable: bool
    #: True if the server had to recall dirty data from another client.
    recalled: bool


class Server:
    """One file server of the cluster.

    The measured cluster had four servers; a cluster holds one
    ``Server`` per shard (see :mod:`repro.fs.sharding`), each owning a
    disjoint slice of the file space.  ``num_servers=1`` reproduces the
    old single aggregated server exactly.
    """

    def __init__(
        self, cache_bytes: int, block_size: int, server_id: int = 0
    ) -> None:
        self.server_id = server_id
        self.counters = ServerCounters()
        self.cache = ServerCache(cache_bytes, block_size)
        self._files: dict[int, FileServerState] = {}
        self._clients: dict[int, "ClientKernel"] = {}
        #: The at-most-once RPC endpoint (set by the first transport
        #: that attaches; see :class:`repro.fs.rpc.ServerEndpoint`).
        self.rpc_endpoint = None
        #: Invoked whenever a file's cacheability changes, with
        #: (file_id, cacheable); used to tell clients to bypass caches.
        self.on_cacheability_change: Callable[[int, bool], None] | None = None
        #: False while crashed; clients retry (with backoff) until
        #: ``down_until``, then run the reopen protocol.
        self.up = True
        self.down_until = 0.0
        #: When the current outage began; downtime is booked from real
        #: timestamps at recovery, not predicted at crash time.
        self.down_since = 0.0
        #: Optional observability hook (repro.obs); every use is guarded
        #: so None (the default) leaves all code paths untouched.
        self.obs = None
        #: The cluster's IntegrityManager (repro.fs.integrity) when the
        #: integrity layer is on; None (the default) leaves the data
        #: plane exactly as before -- no store, no hashing.
        self.integrity = None

    def register_client(self, client: "ClientKernel") -> None:
        if client.client_id in self._clients:
            raise ConsistencyError(f"client {client.client_id} registered twice")
        self._clients[client.client_id] = client

    def state_of(self, file_id: int) -> FileServerState:
        state = self._files.get(file_id)
        if state is None:
            state = FileServerState(file_id=file_id)
            self._files[file_id] = state
        return state

    # --- the open/close protocol ------------------------------------------------

    def open_file(
        self, now: float, file_id: int, client_id: int, will_write: bool
    ) -> OpenReply:
        """Handle an open RPC; runs the three consistency mechanisms."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_OPEN_RPCS] += 1
        state = self._files.get(file_id)
        if state is None:
            state = FileServerState(file_id=file_id)
            self._files[file_id] = state

        # Recall: if another client holds dirty data for this file, pull
        # it back so this open sees current bytes.
        recalled = False
        if state.last_writer not in (-1, client_id):
            writer = self._clients.get(state.last_writer)
            if writer is not None and writer.has_dirty_data(file_id):
                if writer.reachable(now):
                    writer.receive_recall(now, file_id)
                    self.counters.recalls_issued += 1
                    if self.obs is not None:
                        self.obs.on_recall(
                            now, state.last_writer, file_id, client_id
                        )
                    recalled = True
                    state.last_writer = -1
                else:
                    # The last writer is crashed or partitioned: the
                    # recall fails, this open sees stale bytes, and the
                    # writer stays on record for a later recall.
                    self.counters.recalls_failed += 1
            else:
                state.last_writer = -1

        # Register the open.
        opens = state.writers if will_write else state.readers
        opens[client_id] = opens.get(client_id, 0) + 1

        # Concurrent write-sharing: any writer plus any other client.
        if self._check_write_sharing(file_id, state, count_open=True):
            self.counters.concurrent_write_sharing_opens += 1

        if will_write:
            state.version += 1

        return OpenReply(
            version=state.version,
            cacheable=not state.uncacheable,
            recalled=recalled,
        )

    def close_file(
        self, now: float, file_id: int, client_id: int, wrote: bool
    ) -> None:
        """Handle a close RPC."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_NAMING_RPCS] += 1
        state = self.state_of(file_id)
        opens = state.writers if wrote else state.readers
        count = opens.get(client_id, 0)
        if count <= 1:
            opens.pop(client_id, None)
        else:
            opens[client_id] = count - 1
        if wrote:
            state.last_writer = client_id

        # Sprite keeps a file uncacheable until it has been closed by
        # *all* clients (Section 5.6's description of the base scheme).
        if state.uncacheable and not state.readers and not state.writers:
            self._set_cacheability(file_id, state, cacheable=True)

    def _check_write_sharing(
        self, file_id: int, state: FileServerState, count_open: bool
    ) -> bool:
        """Disable caching if the file is concurrently write-shared.

        The one implementation behind both ``open_file`` and
        ``reopen_file`` (they used to carry copy-pasted twins of this
        check).  The sharing set is materialised in sorted client order
        so any downstream notification fan-out is order-deterministic
        regardless of registration order.  Returns True when this call
        disabled caching.
        """
        if not state.writers or state.uncacheable:
            return False
        sharing_clients = sorted(set(state.readers) | set(state.writers))
        if len(sharing_clients) <= 1:
            return False
        self._set_cacheability(file_id, state, cacheable=False)
        return True

    def _set_cacheability(
        self, file_id: int, state: FileServerState, cacheable: bool
    ) -> None:
        state.uncacheable = not cacheable
        if not cacheable:
            self.counters.cache_disables += 1
        if self.obs is not None:
            self.obs.on_cacheability_change(file_id, cacheable)
        if self.on_cacheability_change is not None:
            self.on_cacheability_change(file_id, cacheable)

    # --- replication (repro.fs.replication) ---------------------------------------

    def replica_open(
        self, now: float, file_id: int, client_id: int,
        will_write: bool, version: int,
    ) -> None:
        """Replication RPC: mirror an open served by a peer replica.

        The serving replica ran the full protocol (recall, sharing
        check, version bump); this call keeps the *other* live replicas
        convergent: it registers the open and max-merges the version
        stamp the serving replica returned, so a later failover sees
        current registrations and a current version.  No recall runs
        here -- dirty data is recalled once, by the serving replica.
        """
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        self.counters.replica_version_pushes += 1
        state = self.state_of(file_id)
        opens = state.writers if will_write else state.readers
        opens[client_id] = opens.get(client_id, 0) + 1
        if version > state.version:
            state.version = version
        self._check_write_sharing(file_id, state, count_open=False)

    def replica_close(
        self, now: float, file_id: int, client_id: int, wrote: bool
    ) -> None:
        """Replication RPC: mirror a close served by a peer replica."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        state = self.state_of(file_id)
        opens = state.writers if wrote else state.readers
        count = opens.get(client_id, 0)
        if count <= 1:
            opens.pop(client_id, None)
        else:
            opens[client_id] = count - 1
        if wrote:
            state.last_writer = client_id
        if state.uncacheable and not state.readers and not state.writers:
            self._set_cacheability(file_id, state, cacheable=True)

    def apply_replica_version(self, file_id: int, version: int) -> None:
        """Max-merge a version stamp pushed outside the RPC plane (the
        re-replication manager applying a recovered server's pending
        log or seeding a substitute replica)."""
        self.counters.replica_version_pushes += 1
        state = self.state_of(file_id)
        if version > state.version:
            state.version = version

    def note_written_back(self, file_id: int, client_id: int) -> None:
        """A client finished writing back all dirty data for a file."""
        state = self.state_of(file_id)
        if state.last_writer == client_id:
            state.last_writer = -1

    # --- crash and recovery -------------------------------------------------------

    def crash(self, now: float, down_until: float) -> None:
        """The server crashes and loses its volatile state.

        Version stamps are durable (they live with the files on disk),
        but the open-file registrations, last-writer records, and the
        block cache are all in memory and are gone until clients rebuild
        them through the reopen protocol.
        """
        if not self.up:
            # Already down: an overlapping fault must not double-book
            # the crash or its downtime; it can only extend the outage.
            self.down_until = max(self.down_until, down_until)
            return
        self.counters.crashes += 1
        self.up = False
        self.down_until = down_until
        self.down_since = now
        for state in self._files.values():
            state.readers.clear()
            state.writers.clear()
            state.last_writer = -1
            state.uncacheable = False
        self.cache.clear()

    def recover(self, now: float) -> bool:
        """The server reboots; the cluster then drives each reachable
        client's reopen/revalidate/replay sweep.

        Returns False (and stays down) when the outage has been extended
        past ``now`` by an overlapping fault, or when already up; the
        caller must skip the client recovery sweep in that case.
        """
        if self.up:
            return False
        if now < self.down_until:
            return False
        self.counters.downtime_seconds += max(0.0, now - self.down_since)
        self.up = True
        self.down_until = 0.0
        return True

    def finalize_downtime(self, now: float) -> None:
        """Book the elapsed part of an outage still open at replay end."""
        if not self.up:
            self.counters.downtime_seconds += max(0.0, now - self.down_since)
            self.down_since = now

    def reopen_file(
        self, now: float, file_id: int, client_id: int,
        read_count: int, write_count: int,
    ) -> None:
        """Recovery RPC: a client re-registers its opens for one file.

        The counts *replace* this client's registrations (reopen is
        idempotent: an open that stalled through the outage and executed
        against the rebooted server is simply confirmed), then the
        concurrent-write-sharing check runs again, re-disabling caching
        for files that are still write-shared.
        """
        self.counters.rpc_count += 1
        self.counters.reopen_rpcs += 1
        state = self.state_of(file_id)
        if read_count > 0:
            state.readers[client_id] = read_count
        else:
            state.readers.pop(client_id, None)
        if write_count > 0:
            state.writers[client_id] = write_count
        else:
            state.writers.pop(client_id, None)
        self._check_write_sharing(file_id, state, count_open=False)

    def revalidate_file(self, now: float, file_id: int) -> int:
        """Recovery RPC: return a file's durable version so the client
        can decide whether its cached blocks survived."""
        self.counters.rpc_count += 1
        self.counters.revalidate_rpcs += 1
        return self.state_of(file_id).version

    def peek_version(self, file_id: int) -> int:
        """The durable version stamp, with no RPC accounting -- used by
        the simulator's omniscient stale-read detector, not by clients."""
        state = self._files.get(file_id)
        return state.version if state is not None else 0

    def client_crashed(self, client_id: int) -> None:
        """A client rebooted: purge its registrations.  Dirty data it
        was caching is gone, so a pending last-writer record for it is
        dropped (that data can never be recalled)."""
        for state in self._files.values():
            state.readers.pop(client_id, None)
            state.writers.pop(client_id, None)
            if state.last_writer == client_id:
                state.last_writer = -1
            if state.uncacheable and not state.readers and not state.writers:
                self._set_cacheability(state.file_id, state, cacheable=True)

    # --- data plane -----------------------------------------------------------

    def fetch_block(
        self, now: float, file_id: int, index: int, nbytes: int
    ) -> bool | None:
        """A client cache fetches a block (read miss or write fetch).

        Returns None without the integrity layer (the historical
        no-reply contract); with it, True for a verified (or repaired)
        block and False when the block is corrupt beyond repair -- a
        declared loss the client books as a checksum failure.
        """
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_BLOCK_READS] += 1
        counters[_BLOCK_READ_BYTES] += nbytes
        if self.cache.access(file_id, index, now):
            counters[_SERVER_CACHE_HITS] += 1
            hit = True
        else:
            counters[_SERVER_CACHE_MISSES] += 1
            counters[_DISK_READS] += 1
            hit = False
        if self.integrity is None:
            return None
        return self.integrity.verify_read(self, now, file_id, index, hit)

    def write_block(self, now: float, file_id: int, index: int, nbytes: int) -> None:
        """A client writes back a dirty block."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_BLOCK_WRITES] += 1
        counters[_BLOCK_WRITE_BYTES] += nbytes
        self.cache.install(file_id, index, now)
        # 30 seconds later the server's own daemon writes it to disk;
        # the model books the disk write immediately (same count).
        counters[_DISK_WRITES] += 1
        if self.integrity is not None:
            self.integrity.server_write(self, now, file_id, index)

    def passthrough_read(self, now: float, file_id: int, nbytes: int) -> None:
        """An uncacheable read (shared file or directory)."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_PASSTHROUGH_READ_BYTES] += nbytes

    def passthrough_write(self, now: float, file_id: int, nbytes: int) -> None:
        """An uncacheable write (shared file)."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_PASSTHROUGH_WRITE_BYTES] += nbytes

    def paging_transfer(self, now: float, nbytes: int) -> None:
        """Backing-file paging traffic (never client-cached)."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_PAGING_BYTES] += nbytes

    def name_operation(self, now: float) -> None:
        """A naming RPC with no bulk data (delete, truncate, lookup)."""
        counters = self.counters._values
        counters[_RPC_COUNT] += 1
        counters[_NAMING_RPCS] += 1

    def invalidate_file(self, file_id: int) -> None:
        """Drop all server state for a deleted file."""
        self._files.pop(file_id, None)
        self.cache.invalidate_file(file_id)
        if self.integrity is not None:
            self.integrity.invalidate_file(self.server_id, file_id)
