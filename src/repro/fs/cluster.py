"""The cluster: clients + server + engine, driven by a trace replay.

The replay walks a time-ordered record stream, advancing the event
engine (which fires the 5-second writeback daemons, VM working-set
decays, and counter snapshots) between records, and dispatches each
record to the client named in it.  Paging traffic is synthesized by the
per-client paging models, pulsed on every open.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import RngStream
from repro.common.units import MB
from repro.fs.client import ClientKernel
from repro.fs.config import ClusterConfig
from repro.fs.counters import ClientCounters, CounterSnapshot, ServerCounters
from repro.fs.faults import FaultInjector, FaultSchedule
from repro.fs.oracle import ProtocolOracle
from repro.fs.paging import PagingModel
from repro.fs.server import Server
from repro.fs.sharding import MachineRoster, Placement, _mix64
from repro.fs.vm import VirtualMemory
from repro.sim.engine import Engine
from repro.sim.timers import SharedTicker
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    DeleteRecord,
    DirectoryReadRecord,
    OpenRecord,
    ReadRunRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    TruncateRecord,
    WriteRunRecord,
)


@dataclass
class ClusterResult:
    """Everything the measurement post-processing needs."""

    config: ClusterConfig
    duration: float
    snapshots: dict[int, list[CounterSnapshot]]
    final_counters: dict[int, ClientCounters]
    #: Aggregate across all servers (the single server's counters when
    #: ``num_servers == 1``) -- what Tables 5-9 consume.
    server_counters: ServerCounters
    records_replayed: int = 0
    #: One entry per server shard, in server-id order.  For a classic
    #: single-server cluster this is a 1-tuple whose entry equals
    #: ``server_counters``.
    per_server_counters: tuple[ServerCounters, ...] = ()
    #: Global server ids of the ``per_server_counters`` rows.  An
    #: owned-only shard replay carries rows for its owned servers only,
    #: so the merge needs the ids; the empty default means positional
    #: (row i is server i), which every full replay satisfies.
    server_ids: tuple[int, ...] = ()
    #: Wall-clock seconds spent constructing the cluster (machines,
    #: placement, RNG forks) -- the cost owned-only construction exists
    #: to bound; summed across shards by the merge.
    construction_seconds: float = 0.0
    #: Shared-ticker firings over the replay (writeback scans,
    #: heartbeats, snapshots, scrubs): the recurring-event overhead an
    #: owned-only shard avoids paying for foreign machines.
    tick_events: int = 0

    def all_snapshots(self) -> list[CounterSnapshot]:
        out: list[CounterSnapshot] = []
        for per_client in self.snapshots.values():
            out.extend(per_client)
        out.sort(key=lambda snap: (snap.client_id, snap.time))
        return out


@dataclass(slots=True)
class _OpenState:
    client_id: int
    file_id: int
    migrated: bool
    wrote: bool = False
    #: Client crash epoch at open time; a close whose open predates the
    #: client's last reboot is dropped (that open died with the machine).
    epoch: int = 0


class Cluster:
    """One simulated Sprite cluster.

    ``fault_schedule`` injects an explicit, scripted set of faults; when
    omitted and ``config.faults`` has non-zero rates, a schedule is
    generated deterministically from the cluster seed at replay time.
    With fault rates at zero and no explicit schedule, nothing fault-
    related runs and the replay is byte-identical to a fault-free build.

    ``oracle`` attaches a :class:`~repro.fs.oracle.ProtocolOracle` to
    every client's RPC transport; its dirty-conservation sweep runs once
    after the final snapshot.

    ``obs`` attaches a :class:`~repro.obs.observer.Observation`: counter
    sampling, event tracing, and latency histograms.  Observation is
    read-only -- the replay's counters and tables are identical with it
    on or off (and with it off, not a single obs code path runs).
    """

    def __init__(
        self,
        config: ClusterConfig,
        seed: int = 7,
        fault_schedule: FaultSchedule | None = None,
        oracle: ProtocolOracle | None = None,
        obs=None,
        owned_groups: Sequence[int] | None = None,
    ) -> None:
        construction_start = time.perf_counter()
        self.config = config
        self.engine = Engine()
        #: Coalesced recurring ticks, one ticker per distinct period:
        #: the per-client writeback daemons, the snapshot collector, and
        #: the obs sampler all share batched tick events instead of each
        #: pushing their own heap entry every interval.
        self._tickers: dict[float, SharedTicker] = {}
        self.rng = RngStream.root(seed).fork("cluster")
        self._fault_schedule = fault_schedule
        self.oracle = oracle
        self.obs = obs
        #: File -> server placement; a pure function of the file id and
        #: ``config.placement_seed``, independent of the replay seed.
        self.placement = Placement(config.num_servers, config.placement_seed)
        #: Partitioned replay (``config.client_groups > 1``): every
        #: client routes through its group's :class:`GroupPlacement`
        #: view, so no server ever serves two groups, and the per-close
        #: fsync decision becomes a pure hash of the open id -- the only
        #: cluster-level RNG draw the replay loop made, and the one
        #: thing that would have sequenced groups against each other.
        #: ``groups == 1`` keeps the historical bernoulli draw, byte-
        #: identical to builds that predate grouping.
        groups = config.client_groups
        self._fsync_salt = 0
        self._fsync_threshold: int | None = None
        if groups > 1:
            if fault_schedule is not None:
                raise ConfigError(
                    "explicit fault schedules are not supported with "
                    "client_groups > 1"
                )
            self._fsync_salt = _mix64(seed ^ 0x9E3779B97F4A7C15)
            self._fsync_threshold = int(config.fsync_probability * 2.0**64)
        #: Owned-only construction: a shard replay instantiates only its
        #: ``owned_groups``' clients and servers; the rest of the
        #: cluster exists only as :class:`MachineRoster` routing stubs
        #: that refuse foreign traffic loudly.  The default owns every
        #: group -- the classic full cluster, with plain lists.
        if owned_groups is None:
            owned = tuple(range(groups))
        else:
            owned = tuple(sorted(set(owned_groups)))
            if not owned or owned[0] < 0 or owned[-1] >= groups:
                raise ConfigError(
                    f"owned_groups {list(owned)} must be a non-empty "
                    f"subset of 0..{groups - 1} "
                    f"(client_groups={groups})"
                )
        self._owned_groups = owned
        partial = len(owned) < groups
        spg = self._servers_per_group = config.num_servers // groups
        self.servers: Sequence[Server]
        if partial:
            owned_server_ids = [
                sid
                for group in owned
                for sid in range(group * spg, (group + 1) * spg)
            ]
            self.servers = MachineRoster(
                "server",
                config.num_servers,
                [
                    Server(config.server_memory, config.block_size,
                           server_id=sid)
                    for sid in owned_server_ids
                ],
                owned_server_ids,
            )
        else:
            self.servers = [
                Server(config.server_memory, config.block_size, server_id=i)
                for i in range(config.num_servers)
            ]
        #: Per-group client lists (None for the classic ungrouped
        #: cluster): grouped broadcasts -- cacheability changes, delete
        #: fan-out, recovery sweeps -- are confined to the one group
        #: they can affect, which is both the scalability win and what
        #: keeps a partial shard from ever touching a foreign machine.
        self._group_clients: dict[int, list[ClientKernel]] | None = (
            {} if groups > 1 else None
        )
        self._client_group: dict[int, int] = {}
        for server in self.servers:
            if groups == 1:
                server.on_cacheability_change = self._cacheability_changed
            else:
                server.on_cacheability_change = (
                    lambda file_id, cacheable,
                    _group=server.server_id // spg:
                        self._group_cacheability(_group, file_id, cacheable)
                )

        #: Replication (repro.fs.replication): constructed only when
        #: configured, so an unreplicated cluster runs no heartbeat
        #: ticks, no fan-out, and no new code at all -- byte-identical
        #: to builds that predate replication.
        self.replication = None
        if config.replication_factor > 1:
            from repro.fs.replication import ReplicationManager

            self.replication = ReplicationManager(
                self.engine,
                self.servers,
                self.placement,
                config.replication_factor,
                config.heartbeat_miss_threshold,
                ticker=self.shared_ticker(config.heartbeat_interval),
                groups=groups,
                owned_groups=owned if groups > 1 else None,
            )
            if oracle is not None:
                if groups == 1:
                    oracle.replica_map = self.replication.replica_map
                else:
                    oracle.group_replica_maps = self.replication.group_maps()
                    oracle.servers_per_group = spg

        #: Integrity layer (repro.fs.integrity): per-block checksums,
        #: verified reads with repair-from-replica, and the background
        #: scrubber.  Built only when a disk-fault rate or scrub
        #: interval (or an explicit schedule with disk events) asks for
        #: it -- otherwise ``integrity`` stays None everywhere and the
        #: replay is byte-identical to builds that predate it.
        self.integrity = None
        if (
            config.faults.any_disk_faults
            or config.scrub_interval > 0
            or (fault_schedule is not None and fault_schedule.disk_events)
        ):
            from repro.fs.integrity import IntegrityManager

            if self.replication is not None and groups > 1:
                self.integrity = IntegrityManager(
                    self.servers,
                    group_maps=self.replication.group_maps(),
                    servers_per_group=spg,
                )
            else:
                self.integrity = IntegrityManager(
                    self.servers,
                    replica_map=(
                        self.replication.replica_map
                        if self.replication is not None
                        else None
                    ),
                )
            for server in self.servers:
                server.integrity = self.integrity
            if self.replication is not None:
                self.replication.integrity = self.integrity
            if oracle is not None:
                oracle.integrity = self.integrity
            if config.scrub_interval > 0:
                self._scrub_sub = self.shared_ticker(
                    config.scrub_interval
                ).subscribe(self._scrub_tick)

        #: VM base demand: the window system and daemons hold a slab of
        #: memory permanently; per-client jitter keeps machines distinct.
        self.clients: Sequence[ClientKernel]
        self.paging: Sequence[PagingModel]
        binaries = PagingModel.build_binaries(self.rng.fork("binaries"))
        if groups == 1:
            clients: list[ClientKernel] = []
            paging: list[PagingModel] = []
            for client_id in range(config.client_count):
                client_rng = self.rng.fork(f"client-{client_id}")
                base_pages = int(
                    client_rng.uniform(6.0, 9.0) * MB / config.block_size
                )
                vm = VirtualMemory(
                    total_pages=config.client_page_count,
                    preference_seconds=config.vm_preference,
                    base_demand_pages=min(
                        base_pages, config.client_page_count // 2
                    ),
                    cache_floor_pages=config.min_cache_size // config.block_size,
                )
                # ``fork`` is a pure function of the parent key and name,
                # so the channel stream exists (unused) even in fault-free
                # runs without perturbing any other stream.  Shard 0 keeps
                # the historical "channel" name; extra shards get new
                # names, so a single-server build's streams are untouched.
                channel_rngs = [client_rng.fork("channel")] + [
                    client_rng.fork(f"channel-{i}")
                    for i in range(1, config.num_servers)
                ]
                client = ClientKernel(
                    client_id, config, self.engine, self.servers, vm,
                    channel_rng=channel_rngs,
                    oracle=oracle,
                    placement=self.placement,
                    ticker=self.shared_ticker(config.writeback_scan_interval),
                    replication=self.replication,
                    integrity=self.integrity,
                )
                for server in self.servers:
                    server.register_client(client)
                clients.append(client)
                paging.append(
                    PagingModel(
                        client,
                        self.engine,
                        client_rng.fork("paging"),
                        binaries,
                        intensity=config.paging_intensity,
                    )
                )
            self.clients = clients
            self.paging = paging
        else:
            # Grouped construction: every client -- in the full replay
            # and in a partial shard alike -- sees exactly its group's
            # server slice (through a roster that keeps global ids), its
            # group's placement view, and its group's replication
            # facade.  Client rngs keep their global names, and channel
            # streams are forked only for slice servers (forks are pure,
            # so the never-used foreign forks change nothing), which is
            # what makes a shard's client byte-identical to the same
            # client in the unpartitioned replay.
            offsets = config.group_client_offsets
            client_items: list[ClientKernel] = []
            paging_items: list[PagingModel] = []
            client_ids: list[int] = []
            for group in owned:
                slice_ids = list(range(group * spg, (group + 1) * spg))
                slice_servers = [self.servers[sid] for sid in slice_ids]
                server_roster = MachineRoster(
                    "server", config.num_servers, slice_servers, slice_ids
                )
                group_placement = self.placement.group_view(group, groups)
                group_replication = (
                    self.replication.group_view(group)
                    if self.replication is not None
                    else None
                )
                members: list[ClientKernel] = []
                for client_id in range(offsets[group], offsets[group + 1]):
                    client_rng = self.rng.fork(f"client-{client_id}")
                    base_pages = int(
                        client_rng.uniform(6.0, 9.0) * MB / config.block_size
                    )
                    vm = VirtualMemory(
                        total_pages=config.client_page_count,
                        preference_seconds=config.vm_preference,
                        base_demand_pages=min(
                            base_pages, config.client_page_count // 2
                        ),
                        cache_floor_pages=(
                            config.min_cache_size // config.block_size
                        ),
                    )
                    channel_rngs = [
                        client_rng.fork(
                            "channel" if sid == 0 else f"channel-{sid}"
                        )
                        for sid in slice_ids
                    ]
                    client = ClientKernel(
                        client_id, config, self.engine, server_roster, vm,
                        channel_rng=channel_rngs,
                        oracle=oracle,
                        placement=group_placement,
                        ticker=self.shared_ticker(
                            config.writeback_scan_interval
                        ),
                        replication=group_replication,
                        integrity=self.integrity,
                        # Pin paging inside the group's server slice (the
                        # classic ``client_id % num_servers`` would leak
                        # paging traffic onto other groups' servers).
                        paging_shard=group * spg + client_id % spg,
                    )
                    for server in slice_servers:
                        server.register_client(client)
                    members.append(client)
                    paging_items.append(
                        PagingModel(
                            client,
                            self.engine,
                            client_rng.fork("paging"),
                            binaries,
                            intensity=config.paging_intensity,
                        )
                    )
                    self._client_group[client_id] = group
                self._group_clients[group] = members
                client_items.extend(members)
                client_ids.extend(range(offsets[group], offsets[group + 1]))
            if partial:
                roster = MachineRoster(
                    "client", config.client_count, client_items, client_ids
                )
                self.clients = roster
                self.paging = roster.like(paging_items, kind="paging model")
            else:
                self.clients = client_items
                self.paging = paging_items

        self._snapshots: dict[int, list[CounterSnapshot]] = {
            c.client_id: [] for c in self.clients
        }
        self._snapshot_timer = self.shared_ticker(
            config.snapshot_interval
        ).subscribe(self._take_snapshots)
        self._opens: dict[int, _OpenState] = {}
        self._records = 0
        self._dispatch = self._build_dispatch_table()
        if obs is not None:
            obs.attach(self)
        self.construction_seconds = time.perf_counter() - construction_start

    # --- plumbing ------------------------------------------------------------

    def shared_ticker(self, period: float) -> SharedTicker:
        """The cluster-wide coalesced tick for ``period`` (one engine
        event per interval no matter how many subscribers)."""
        ticker = self._tickers.get(period)
        if ticker is None:
            ticker = self._tickers[period] = SharedTicker(self.engine, period)
        return ticker

    @property
    def server(self) -> Server:
        """Shard 0 -- *the* server when ``num_servers == 1``."""
        return self.servers[0]

    def _cacheability_changed(self, file_id: int, cacheable: bool) -> None:
        for client in self.clients:
            client.receive_cacheability(file_id, cacheable)

    def _group_cacheability(
        self, group: int, file_id: int, cacheable: bool
    ) -> None:
        """Grouped broadcast: only the owning group's clients can hold
        the file (ids are group-strided and binaries are never
        write-shared), so the sweep stops at the group boundary."""
        for client in self._group_clients[group]:
            client.receive_cacheability(file_id, cacheable)

    def _take_snapshots(self) -> None:
        now = self.engine.now
        for client in self.clients:
            client.snapshot_sizes()
            self._snapshots[client.client_id].append(
                CounterSnapshot(
                    time=now,
                    client_id=client.client_id,
                    counters=client.counters.copy(),
                )
            )

    def _client(self, client_id: int) -> ClientKernel:
        return self.clients[client_id % len(self.clients)]

    def _scrub_tick(self) -> None:
        self.integrity.scrub_tick(self.engine.now)

    # --- fault transitions -------------------------------------------------------

    def crash_server(self, down_until: float, server_id: int = 0) -> None:
        """Server ``server_id`` crashes, staying down until ``down_until``."""
        self.servers[server_id].crash(self.engine.now, down_until)

    def recover_server(self, server_id: int = 0) -> None:
        """Server ``server_id`` reboots; every reachable client runs the
        reopen protocol for that shard, in client order (deterministic).

        A no-op when an overlapping fault extended the outage past now
        (the extended fault's own recovery callback will run the sweep).
        """
        now = self.engine.now
        if not self.servers[server_id].recover(now):
            return
        if self.replication is not None:
            # Pending pushes land before the clients' sweeps revalidate
            # against the recovered server's version stamps.
            self.replication.on_server_recovered(now, server_id)
        if self.obs is not None:
            # Encoding: -1 - server_id, so the single-server case keeps
            # its historical -1 target.
            self.obs.on_fault_recovered(now, "server_crash", -1 - server_id)
        if self._group_clients is None:
            for client in self.clients:
                client.on_server_recovered(now, server_id)
        else:
            # Only the server's own group's clients can hold its files;
            # a foreign client's sweep would be a no-op (and a partial
            # shard has no foreign clients to run it on).
            group = server_id // self._servers_per_group
            for client in self._group_clients[group]:
                client.on_server_recovered(now, server_id)

    def crash_client(self, client: ClientKernel) -> None:
        """A client dies: its cache (and any un-written dirty data) is
        lost and every server that could know it purges its
        registrations (all of them classically; the client's group's
        slice when grouped -- it never registered anywhere else)."""
        client.crash(self.engine.now)
        if self._group_clients is None:
            for server in self.servers:
                server.client_crashed(client.client_id)
        else:
            spg = self._servers_per_group
            first = self._client_group[client.client_id] * spg
            for sid in range(first, first + spg):
                self.servers[sid].client_crashed(client.client_id)

    def reboot_client(self, client: ClientKernel) -> None:
        client.reboot(self.engine.now)
        if self.obs is not None:
            self.obs.on_fault_recovered(
                self.engine.now, "client_crash", client.client_id
            )

    def partition_client(self, client: ClientKernel, until: float) -> None:
        client.partition(self.engine.now, until)

    def heal_client(self, client: ClientKernel) -> None:
        client.heal_partition(self.engine.now)
        if self.obs is not None:
            self.obs.on_fault_recovered(
                self.engine.now, "partition", client.client_id
            )

    # --- record dispatch ---------------------------------------------------------

    def _build_dispatch_table(self):
        """Exact-type -> bound handler, replacing an isinstance chain
        that burned a measurable slice of every replay (the table costs
        one dict lookup per record; subclassed records -- none exist in
        the tree -- fall back to an isinstance walk in :meth:`dispatch`).
        """
        return {
            OpenRecord: self._dispatch_open,
            ReadRunRecord: self._dispatch_read_run,
            WriteRunRecord: self._dispatch_write_run,
            CloseRecord: self._dispatch_close,
            SharedReadRecord: self._dispatch_shared,
            SharedWriteRecord: self._dispatch_shared,
            DeleteRecord: self._dispatch_delete,
            TruncateRecord: self._dispatch_delete,
            DirectoryReadRecord: self._dispatch_directory_read,
        }

    def dispatch(self, record: TraceRecord) -> None:
        """Apply one trace record to the cluster.

        Records addressed to a crashed client are dropped (the user's
        processes died with the machine), as are closes whose opens
        predate the client's last reboot.
        """
        self._records += 1
        handler = self._dispatch.get(type(record))
        if handler is not None:
            handler(record, self.engine.now)
        else:
            self._dispatch_fallback(record, self.engine.now)

    def _dispatch_fallback(self, record: TraceRecord, now: float) -> None:
        """isinstance walk for record subclasses the exact-type table
        cannot see (none exist in-tree; kept so external subclasses of
        the record types still replay)."""
        for record_type, handler in self._dispatch.items():
            if isinstance(record, record_type):
                handler(record, now)
                return

    def _dispatch_open(self, record: OpenRecord, now: float) -> None:
        client = self.clients[record.client_id % len(self.clients)]
        if not client.up:
            client.counters.ops_dropped_while_down += 1
            return
        will_write = record.mode is not AccessMode.READ
        client.open_file(now, record.file_id, will_write)
        self._opens[record.open_id] = _OpenState(
            client_id=record.client_id,
            file_id=record.file_id,
            migrated=record.migrated,
            epoch=client.epoch,
        )
        self.paging[client.client_id].on_activity(now, record.migrated)

    def _dispatch_read_run(self, record: ReadRunRecord, now: float) -> None:
        client = self.clients[record.client_id % len(self.clients)]
        if not client.up:
            client.counters.ops_dropped_while_down += 1
            return
        client.read(
            now, record.file_id, record.offset, record.length,
            migrated=record.migrated,
        )

    def _dispatch_write_run(self, record: WriteRunRecord, now: float) -> None:
        client = self.clients[record.client_id % len(self.clients)]
        if not client.up:
            client.counters.ops_dropped_while_down += 1
            return
        client.write(
            now, record.file_id, record.offset, record.length,
            migrated=record.migrated,
        )
        state = self._opens.get(record.open_id)
        if state is not None:
            state.wrote = True

    def _dispatch_close(self, record: CloseRecord, now: float) -> None:
        client = self.clients[record.client_id % len(self.clients)]
        state = self._opens.pop(record.open_id, None)
        if not client.up or (state is not None and state.epoch != client.epoch):
            # Machine is down, or it rebooted since the open: the
            # open-file handle died with it.
            client.counters.ops_dropped_while_down += 1
            return
        wrote = state.wrote if state is not None else False
        threshold = self._fsync_threshold
        if threshold is None:
            fsync = wrote and self.rng.bernoulli(self.config.fsync_probability)
        else:
            # Grouped clusters: a pure per-open hash, so the decision is
            # independent of which other groups' closes the replay saw.
            fsync = wrote and (
                _mix64(record.open_id ^ self._fsync_salt) < threshold
            )
        client.close_file(now, record.file_id, wrote, fsync=fsync)

    def _dispatch_shared(self, record: TraceRecord, now: float) -> None:
        # Per-request server log for write-shared files.  The
        # coalesced runs already carry these bytes, so route only
        # the ones the run records cannot see: nothing extra here --
        # the open/close overlap already disabled caching and the
        # run records will pass through.  (Kept as a dispatch case
        # so subclasses can hook it.)
        pass

    def _dispatch_delete(self, record: TraceRecord, now: float) -> None:
        client = self.clients[record.client_id % len(self.clients)]
        if not client.up:
            client.counters.ops_dropped_while_down += 1
            return
        client.delete_on_server(now, record.file_id)
        if self._group_clients is None:
            for each in self.clients:
                each.delete_file(now, record.file_id)
        else:
            # Group-strided file ids: only the deleting client's own
            # group can hold blocks of the file.
            group = self._client_group[client.client_id]
            for each in self._group_clients[group]:
                each.delete_file(now, record.file_id)

    def _dispatch_directory_read(
        self, record: DirectoryReadRecord, now: float
    ) -> None:
        client = self.clients[record.client_id % len(self.clients)]
        if not client.up:
            client.counters.ops_dropped_while_down += 1
            return
        client.directory_read(now, record.length, file_id=record.file_id)

    # --- main entry ------------------------------------------------------------

    def replay(
        self, records: Iterable[TraceRecord], duration: float
    ) -> ClusterResult:
        """Replay a full trace and return the measurement data."""
        schedule = self._fault_schedule
        if schedule is None and (
            self.config.faults.any_faults or self.config.faults.any_disk_faults
        ):
            if self.config.client_groups > 1:
                # Per-group timelines: group g's events are a pure
                # function of (config, duration, seed, g), so a shard
                # generating only its owned groups gets exactly the
                # events the unpartitioned schedule holds for them.
                schedule = FaultSchedule.generate_grouped(
                    self.config.faults,
                    duration,
                    self.rng.fork("faults"),
                    groups=self.config.client_groups,
                    group_sizes=self.config.group_sizes,
                    servers_per_group=self._servers_per_group,
                    owned_groups=self._owned_groups,
                )
            else:
                schedule = FaultSchedule.generate(
                    self.config.faults,
                    self.config.client_count,
                    duration,
                    self.rng.fork("faults"),
                    num_servers=self.config.num_servers,
                )
        if schedule is not None and len(schedule):
            FaultInjector(self, schedule).arm()
        # Hot loop: handler lookup replaces the isinstance chain, and
        # run_until is skipped whenever the record lands before the next
        # pending event (the cached next_wake is refreshed only when the
        # engine's schedule counter shows something new was scheduled --
        # or the engine itself ran, which can only make the cache stale
        # in the harmless too-early direction).
        engine = self.engine
        get_handler = self._dispatch.get
        last_time = 0.0
        next_wake = engine.next_event_time()
        seen_sequence = engine._sequence
        for record in records:
            time = record.time
            if time < last_time:
                raise SimulationError(
                    f"trace records out of order at {time}"
                )
            last_time = time
            if time > engine._now:
                if next_wake is not None and next_wake <= time:
                    engine.run_until(time)
                    next_wake = engine.next_event_time()
                    seen_sequence = engine._sequence
                else:
                    # No event due before this record: advancing the
                    # clock directly is exactly advance_to(time).
                    engine._now = time
            self._records += 1
            handler = get_handler(type(record))
            if handler is not None:
                handler(record, time)
            else:
                self._dispatch_fallback(record, time)
            if engine._sequence != seen_sequence:
                seen_sequence = engine._sequence
                next_wake = engine.next_event_time()
        if duration > self.engine.now:
            self.engine.run_until(duration)
        for server in self.servers:
            # Book the elapsed part of any outage still open at the end,
            # so downtime_seconds reflects real wall time, not the
            # crash-time prediction.
            server.finalize_downtime(self.engine.now)
        if self.integrity is not None and self.config.scrub_interval > 0:
            # Close the scrub loop: one full verification pass so every
            # detectable corruption is repaired (or declared lost) before
            # the oracle's silent-corruption sweep and the final reading.
            self.integrity.final_scrub(self.engine.now)
        self._take_snapshots()  # final reading
        if self.oracle is not None:
            self.oracle.final_check(self.engine.now, self.clients, self.servers)
        if self.obs is not None:
            # After the final snapshot, so the closing sample carries
            # the same refreshed gauges the result does.
            self.obs.finalize(self.engine.now)
        per_server = tuple(s.counters.copy() for s in self.servers)
        if len(per_server) == 1:
            aggregate = per_server[0].copy()
        else:
            aggregate = ServerCounters.aggregate(per_server)
        return ClusterResult(
            config=self.config,
            duration=duration,
            snapshots=self._snapshots,
            final_counters={
                c.client_id: c.counters.copy() for c in self.clients
            },
            server_counters=aggregate,
            records_replayed=self._records,
            per_server_counters=per_server,
            server_ids=tuple(s.server_id for s in self.servers),
            construction_seconds=self.construction_seconds,
            tick_events=sum(t.fire_count for t in self._tickers.values()),
        )


def merge_cluster_results(
    results: Sequence[ClusterResult],
    owned_groups: Sequence[Sequence[int]],
) -> ClusterResult:
    """Merge shard replays of a grouped cluster into one result.

    Each shard replayed the same cluster (same config, same seed) with
    only its ``owned_groups``' machines constructed, and dispatched
    only those groups' records; because groups share no servers, no RNG
    stream, and no state, a shard's owned clients and servers end in
    exactly the state the unpartitioned replay leaves them in.  The
    merge is therefore pure selection: every client's counters/
    snapshots and every server's row come from the shard that owns its
    group (rows resolved through ``server_ids``), the aggregate is
    recomputed in global server-id order (the same float-summation
    order the unpartitioned replay uses), and record counts add up
    because every record was dispatched by exactly one shard.  The
    construction-time and tick-overhead gauges are summed -- they
    report what the shard fleet actually spent.
    """
    if not results or len(results) != len(owned_groups):
        raise ConfigError(
            f"need one owned-group list per result, got {len(results)} "
            f"results and {len(owned_groups)} lists"
        )
    config = results[0].config
    groups = config.client_groups
    owner: dict[int, int] = {}
    for index, (result, owned) in enumerate(zip(results, owned_groups)):
        if result.config != config:
            raise ConfigError("shard results disagree on cluster config")
        for group in owned:
            if group in owner:
                raise ConfigError(f"group {group} owned by two shards")
            owner[group] = index
    if sorted(owner) != list(range(groups)):
        raise ConfigError(
            f"owned groups {sorted(owner)} do not cover 0..{groups - 1}"
        )
    # Per-shard row maps keyed by global server id: an owned-only shard
    # carries rows for its owned servers only (``server_ids`` names
    # them); a full replay's empty default means positional.
    row_maps: list[dict[int, ServerCounters]] = []
    for result in results:
        ids = result.server_ids or tuple(
            range(len(result.per_server_counters))
        )
        if len(ids) != len(result.per_server_counters):
            raise ConfigError(
                f"result carries {len(result.per_server_counters)} server "
                f"rows but {len(ids)} server ids"
            )
        row_maps.append(dict(zip(ids, result.per_server_counters)))
    offsets = config.group_client_offsets
    servers_per_group = config.num_servers // groups
    snapshots: dict[int, list[CounterSnapshot]] = {}
    final_counters: dict[int, ClientCounters] = {}
    per_server: list[ServerCounters] = []
    for group in range(groups):
        result = results[owner[group]]
        for client_id in range(offsets[group], offsets[group + 1]):
            snapshots[client_id] = result.snapshots[client_id]
            final_counters[client_id] = result.final_counters[client_id]
        rows = row_maps[owner[group]]
        for sid in range(
            group * servers_per_group, (group + 1) * servers_per_group
        ):
            try:
                per_server.append(rows[sid])
            except KeyError:
                raise ConfigError(
                    f"shard owning group {group} carries no counters for "
                    f"server {sid}"
                ) from None
    if len(per_server) == 1:
        aggregate = per_server[0].copy()
    else:
        aggregate = ServerCounters.aggregate(per_server)
    return ClusterResult(
        config=config,
        duration=results[0].duration,
        snapshots=snapshots,
        final_counters=final_counters,
        server_counters=aggregate,
        records_replayed=sum(r.records_replayed for r in results),
        per_server_counters=tuple(per_server),
        server_ids=tuple(range(config.num_servers)),
        construction_seconds=sum(r.construction_seconds for r in results),
        tick_events=sum(r.tick_events for r in results),
    )


def run_cluster_on_trace(
    records: Sequence[TraceRecord],
    duration: float,
    config: ClusterConfig | None = None,
    seed: int = 7,
    fault_schedule: FaultSchedule | None = None,
    oracle: ProtocolOracle | None = None,
    obs=None,
    owned_groups: Sequence[int] | None = None,
) -> ClusterResult:
    """Convenience wrapper: build a cluster and replay one trace."""
    cluster = Cluster(
        config or ClusterConfig(), seed=seed, fault_schedule=fault_schedule,
        oracle=oracle, obs=obs, owned_groups=owned_groups,
    )
    return cluster.replay(records, duration)
