"""The online protocol-invariant oracle.

A :class:`ProtocolOracle` hooks the RPC transport and checks protocol
safety after every delivery, turning "the chaos run looked fine" into
machine-checked invariants:

* **at-most-once execution** -- no (client, sequence number) pair is
  ever executed twice, however the channel duplicated, reordered, or
  retransmitted it;
* **monotonic version stamps** -- a file's durable version never moves
  backwards across opens, revalidations, crashes, and recoveries
  (deletes legitimately reset a file's stamp, so the oracle forgets a
  file when its delete executes);
* **no stale data after a completed invalidation** -- once a recall
  callback is delivered, the client holds no dirty blocks of the file;
  once a cache-disable is delivered, it holds no blocks at all;
* **dirty-byte conservation** -- at end of replay, every block a client
  ever dirtied is accounted for: written back, absorbed by a delete,
  destroyed by a counted fault, or still resident dirty.

A violated invariant raises (or, in collection mode, records) a
structured :class:`InvariantViolation` carrying the replay seed, so any
failure is replayable from its exception alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.client import ClientKernel


@dataclass(frozen=True, slots=True)
class Violation:
    """One observed protocol-safety breach."""

    invariant: str
    time: float
    seed: int | None
    details: str

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] t={self.time:.3f} seed={self.seed}: "
            f"{self.details}"
        )


class InvariantViolation(SimulationError):
    """Raised by the oracle; carries the structured violation (including
    the replay seed) as :attr:`violation`."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class ProtocolOracle:
    """Checks protocol safety after every transport delivery.

    ``seed`` is stamped into violations so they replay; with
    ``raise_on_violation`` False the oracle records violations instead
    of raising, letting one chaos run collect all of them.

    The oracle never touches counters or randomness: attaching it to a
    replay must not change what the replay computes, only what it
    checks.
    """

    def __init__(
        self, seed: int | None = None, raise_on_violation: bool = True
    ) -> None:
        self.seed = seed
        self.raise_on_violation = raise_on_violation
        self.violations: list[Violation] = []
        self.checks_run = 0
        #: Optional observation hub (repro.obs); when set, every check
        #: and violation is mirrored into the event trace.
        self.obs: Any | None = None
        #: (server_id, client_id, seq) executions; seq -1 (fast path) is
        #: untracked.  Sequence numbers are per transport, and a client
        #: has one transport per server shard, so the key must carry the
        #: server id: two shards legitimately both see (client, 0).
        self._executed: set[tuple[int, int, int]] = set()
        #: file_id -> highest version stamp ever observed.
        self._versions: dict[int, int] = {}
        #: The cluster's :class:`~repro.fs.replication.ReplicaMap`, set
        #: by the cluster when replication is configured; enables the
        #: replica-divergence final check and switches the writeback
        #: ledger to the fan-out counter.
        self.replica_map: Any | None = None
        #: Grouped replicated cluster: one ReplicaMap per (owned) group
        #: instead, plus the slice width -- shared file ids place into a
        #: different server slice per group, so the divergence sweep
        #: must run per group.  Both set by the cluster.
        self.group_replica_maps: "dict[int, Any] | None" = None
        self.servers_per_group: int = 0
        #: The cluster's :class:`~repro.fs.integrity.IntegrityManager`,
        #: set by the cluster when the integrity layer is built; enables
        #: the end-state silent-corruption sweep.
        self.integrity: Any | None = None

    def _flag(self, invariant: str, time: float, details: str) -> None:
        violation = Violation(
            invariant=invariant, time=time, seed=self.seed, details=details
        )
        self.violations.append(violation)
        if self.obs is not None:
            self.obs.on_oracle_violation(time, invariant, details)
        if self.raise_on_violation:
            raise InvariantViolation(violation)

    # --- transport hooks --------------------------------------------------------

    def on_execute(
        self, now: float, client_id: int, seq: int, op: str,
        args: tuple, reply: Any, server_id: int = 0,
    ) -> None:
        """Called by the server endpoint after executing a request."""
        self.checks_run += 1
        if self.obs is not None:
            self.obs.on_oracle_check(now, "execute", client_id, op)
        if seq >= 0:
            key = (server_id, client_id, seq)
            if key in self._executed:
                self._flag(
                    "at-most-once", now,
                    f"server {server_id}: client {client_id} seq {seq} "
                    f"({op}) executed twice",
                )
            self._executed.add(key)
        if op in ("open_file", "revalidate_file"):
            file_id = args[0]
            version = reply.version if op == "open_file" else reply
            known = self._versions.get(file_id, 0)
            if version < known:
                self._flag(
                    "monotonic-versions", now,
                    f"file {file_id} version moved backwards: "
                    f"{known} -> {version} (at {op})",
                )
            self._versions[file_id] = max(known, version)
        elif op == "delete_file":
            # A recreated file legitimately restarts its stamp.
            self._versions.pop(args[0], None)

    def on_callback(
        self, now: float, client: "ClientKernel", kind: str, file_id: int
    ) -> None:
        """Called after a server callback is delivered to a client."""
        self.checks_run += 1
        if self.obs is not None:
            self.obs.on_oracle_check(now, "callback", client.client_id, kind)
        if kind == "recall":
            leftover = client.cache.dirty_blocks_of_file(file_id)
            if leftover:
                self._flag(
                    "no-stale-after-invalidation", now,
                    f"client {client.client_id} kept {len(leftover)} dirty "
                    f"blocks of file {file_id} after a delivered recall",
                )
        elif kind == "cache_disable":
            leftover = client.cache.blocks_of_file(file_id)
            if leftover:
                self._flag(
                    "no-stale-after-invalidation", now,
                    f"client {client.client_id} kept {len(leftover)} blocks "
                    f"of file {file_id} after a delivered cache disable",
                )

    # --- end-of-replay checks ---------------------------------------------------

    def final_check(
        self,
        now: float,
        clients: list["ClientKernel"],
        servers: list[Any] | None = None,
    ) -> None:
        """Dirty-byte conservation, checked once the replay settles.

        With multiple ``servers`` given, also checks the cross-shard
        ledger: every dirty block any client cleaned crossed the wire to
        exactly one server, so the cluster-wide writeback counts must
        balance (``write_block`` executes exactly once per clean under
        the at-most-once transport, whichever shard it lands on).  A
        single-server cluster skips it -- the per-client conservation
        sweep below already covers one server, and skipping keeps the
        check count (which rendered reports embed) identical to
        pre-sharding replays.
        """
        if servers is not None and len(servers) > 1:
            self.checks_run += 1
            if self.obs is not None:
                self.obs.on_oracle_check(
                    now, "final", -1, "cross-shard-writeback-ledger"
                )
            received = sum(s.counters.block_writes for s in servers)
            if self.replica_map is not None or self.group_replica_maps:
                # Replicated writebacks fan out: every clean crosses the
                # wire once per live replica, and the clients count each
                # transfer in replica_writeback_blocks.
                cleaned = sum(
                    c.counters.replica_writeback_blocks for c in clients
                )
            else:
                cleaned = sum(
                    c.counters.blocks_cleaned_total for c in clients
                )
            if received != cleaned:
                per_server = ", ".join(
                    f"server {s.server_id}: {s.counters.block_writes}"
                    for s in servers
                )
                self._flag(
                    "cross-shard-writeback-ledger", now,
                    f"clients cleaned {cleaned} dirty blocks but servers "
                    f"received {received} ({per_server})",
                )
        if self.replica_map is not None and servers is not None:
            self._check_replica_divergence(
                now, servers, self.replica_map, None
            )
        elif self.group_replica_maps and servers is not None:
            spg = self.servers_per_group
            for group in sorted(self.group_replica_maps):
                self._check_replica_divergence(
                    now, servers, self.group_replica_maps[group],
                    range(group * spg, (group + 1) * spg),
                )
        if self.integrity is not None:
            # **No silent corruption at end of replay** -- every durable
            # block an up server acknowledged either verifies against
            # its checksum and acknowledged generation, or its loss was
            # detected and booked (declared lost / flagged by a read or
            # scrub).  Anything else is corruption the integrity
            # machinery never saw: the one failure mode checksums and
            # scrubbing exist to rule out.
            self.checks_run += 1
            if self.obs is not None:
                self.obs.on_oracle_check(now, "final", -1, "silent-corruption")
            for detail in self.integrity.silent_corruption_report():
                self._flag("silent-corruption", now, detail)
        for client in clients:
            self.checks_run += 1
            if self.obs is not None:
                self.obs.on_oracle_check(
                    now, "final", client.client_id, "dirty-byte-conservation"
                )
            counters = client.counters
            accounted = (
                counters.blocks_cleaned_total
                + counters.dirty_blocks_discarded
                + counters.lost_dirty_blocks
                + client.cache.dirty_evictions
                + client.cache.dirty_count
            )
            if accounted != counters.blocks_dirtied:
                self._flag(
                    "dirty-byte-conservation", now,
                    f"client {client.client_id} dirtied "
                    f"{counters.blocks_dirtied} blocks but accounts for "
                    f"{accounted} (cleaned {counters.blocks_cleaned_total}, "
                    f"discarded {counters.dirty_blocks_discarded}, lost "
                    f"{counters.lost_dirty_blocks}, dirty-evicted "
                    f"{client.cache.dirty_evictions}, resident "
                    f"{client.cache.dirty_count})",
                )

    def _check_replica_divergence(
        self, now: float, servers: list[Any], replica_map: Any,
        server_ids: "range | None",
    ) -> None:
        """Every file's *live* replicas must agree on its version stamp.

        Write propagation (replica_open fan-out) pushes the serving
        replica's version to the other live replicas synchronously, and
        the pending log patches a recovering replica before any client
        sweep reads it -- so at any quiescent point, two up replicas
        disagreeing means propagation was lost.  Down replicas are
        excluded: their patch is still queued.  A server that never saw
        the file reads as version 0, which only agrees with version 0.

        ``server_ids`` limits the sweep to one group's server slice (a
        grouped cluster runs this once per owned group with the group's
        own map); None sweeps the whole cluster.
        """
        self.checks_run += 1
        if self.obs is not None:
            self.obs.on_oracle_check(now, "final", -1, "replica-divergence")
        known: set[int] = set()
        if server_ids is None:
            for server in servers:
                known.update(server._files.keys())
        else:
            for sid in server_ids:
                known.update(servers[sid]._files.keys())
        for file_id in sorted(known):
            live = [
                s for s in replica_map.replicas(file_id)
                if servers[s].up
            ]
            if len(live) < 2:
                continue
            versions = {s: servers[s].peek_version(file_id) for s in live}
            if len(set(versions.values())) > 1:
                detail = ", ".join(
                    f"server {s}: v{v}" for s, v in sorted(versions.items())
                )
                self._flag(
                    "replica-divergence", now,
                    f"file {file_id} diverged across live replicas "
                    f"({detail})",
                )

    def version_map(self) -> dict[int, int]:
        """The highest version stamp observed per file id (a copy).

        The public face of the internal version ledger: shard merges
        (:func:`repro.pipeline.scaleout.merge_oracle_versions`) read
        this instead of reaching into ``_versions``.
        """
        return dict(self._versions)

    def assert_clean(self) -> None:
        """Raise on the first recorded violation (collection mode)."""
        if self.violations:
            raise InvariantViolation(self.violations[0])
