"""File-to-server placement for the sharded cluster.

The measured cluster had **four** file servers; files were partitioned
across them by subtree (Nelson et al.'s Sprite design), and Tables 1, 2,
and 7 of the paper report activity per server.  The simulator models
that partition with a seeded hash of the file id: every file lives on
exactly one server, the mapping is a pure function of
``(file_id, num_servers, seed)``, and it is therefore stable across
runs, worker counts, and replay seeds -- the properties the pipeline
cache and the per-server tables rely on.

With one server the placement is the constant 0 and costs nothing; the
multi-server hash is a splitmix64-style finalizer, which is cheap
enough for the per-operation routing the client kernel does and mixes
well enough that consecutive file ids spread evenly.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a fast, well-distributed 64-bit mix."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Placement:
    """The deterministic file -> server map for one cluster.

    ``shard_of`` is the whole interface.  Negative file ids (the
    simulator's "no particular file" sentinel, used by directory
    passthrough) land on server 0.
    """

    __slots__ = ("num_servers", "seed", "_salt")

    def __init__(self, num_servers: int, seed: int = 0) -> None:
        if num_servers < 1:
            raise ConfigError(f"need at least one server, got {num_servers}")
        self.num_servers = num_servers
        self.seed = seed
        # One up-front mix of the seed; per-file work is a single mix.
        self._salt = _mix64(seed * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)

    def shard_of(self, file_id: int) -> int:
        if self.num_servers == 1 or file_id < 0:
            return 0
        return _mix64(file_id ^ self._salt) % self.num_servers

    __call__ = shard_of

    def replicas_of(self, file_id: int, r: int) -> tuple[int, ...]:
        """The ``r`` distinct servers holding ``file_id``.

        The first element is always ``shard_of(file_id)`` -- the
        primary -- so ``replicas_of(fid, 1) == (shard_of(fid),)`` and
        replication factor 1 changes nothing.  The remaining replicas
        are drawn without replacement by re-chaining the splitmix64
        hash, so the full chain ``replicas_of(fid, num_servers)`` is a
        stable per-file preference order over every server; the
        re-replication manager walks it to pick substitute hosts.
        """
        if r < 1 or r > self.num_servers:
            raise ConfigError(
                f"replica count {r} must be in [1, {self.num_servers}]"
            )
        primary = self.shard_of(file_id)
        if r == 1:
            return (primary,)
        if file_id < 0:
            # The "no particular file" sentinel: first r servers.
            return tuple(range(r))
        remaining = [s for s in range(self.num_servers) if s != primary]
        chosen = [primary]
        h = _mix64(file_id ^ self._salt)
        for _ in range(r - 1):
            h = _mix64(h + 0x9E3779B97F4A7C15)
            chosen.append(remaining.pop(h % len(remaining)))
        return tuple(chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Placement(num_servers={self.num_servers}, seed={self.seed})"
