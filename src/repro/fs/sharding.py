"""File-to-server placement for the sharded cluster.

The measured cluster had **four** file servers; files were partitioned
across them by subtree (Nelson et al.'s Sprite design), and Tables 1, 2,
and 7 of the paper report activity per server.  The simulator models
that partition with a seeded hash of the file id: every file lives on
exactly one server, the mapping is a pure function of
``(file_id, num_servers, seed)``, and it is therefore stable across
runs, worker counts, and replay seeds -- the properties the pipeline
cache and the per-server tables rely on.

With one server the placement is the constant 0 and costs nothing; the
multi-server hash is a splitmix64-style finalizer, which is cheap
enough for the per-operation routing the client kernel does and mixes
well enough that consecutive file ids spread evenly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar

from repro.common.errors import ConfigError, SimulationError

_MASK64 = (1 << 64) - 1

_T = TypeVar("_T")


class MachineRoster:
    """An owned-only shard's window onto a global machine list.

    A partitioned shard constructs only its groups' machines, but the
    rest of the simulator speaks *global* ids.  The roster keeps the
    global arithmetic intact while holding only the owned machines:

    * ``len(roster)`` is the **global** machine count, so every
      ``id % len(...)`` modulo stays the identity it always was;
    * ``roster[global_id]`` returns the owned machine, and raises a
      loud :class:`SimulationError` for a machine this shard does not
      own -- the routing stub that turns a confinement bug into an
      immediate, attributable failure instead of silently-diverging
      state;
    * iteration yields the owned machines in global-id order, which is
      exactly the order the unpartitioned replay visits them in.
    """

    __slots__ = ("kind", "_total", "_items", "_by_id")

    def __init__(
        self, kind: str, total: int, items: Iterable[_T],
        ids: Iterable[int],
    ) -> None:
        self.kind = kind
        self._total = total
        self._items = list(items)
        self._by_id = dict(zip(ids, self._items))
        if len(self._by_id) != len(self._items):
            raise ConfigError(
                f"{kind} roster ids do not match its items "
                f"({len(self._by_id)} ids, {len(self._items)} items)"
            )

    def __len__(self) -> int:
        return self._total

    def __iter__(self) -> Iterator[_T]:
        return iter(self._items)

    def __getitem__(self, machine_id: int) -> _T:
        try:
            return self._by_id[machine_id]
        except (KeyError, TypeError):
            raise SimulationError(
                f"{self.kind} {machine_id} is not owned by this shard "
                f"(owned {self.kind}s: {sorted(self._by_id)})"
            ) from None

    @property
    def owned_ids(self) -> list[int]:
        return sorted(self._by_id)

    def like(self, items: Iterable[_T], kind: str | None = None) -> "MachineRoster":
        """A parallel roster over the same ids (e.g. the transports
        matching an owned server slice)."""
        return MachineRoster(kind or self.kind, self._total, items, self._by_id)


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a fast, well-distributed 64-bit mix."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Placement:
    """The deterministic file -> server map for one cluster.

    ``shard_of`` is the whole interface.  Negative file ids (the
    simulator's "no particular file" sentinel, used by directory
    passthrough) land on server 0.
    """

    __slots__ = ("num_servers", "seed", "_salt")

    def __init__(self, num_servers: int, seed: int = 0) -> None:
        if num_servers < 1:
            raise ConfigError(f"need at least one server, got {num_servers}")
        self.num_servers = num_servers
        self.seed = seed
        # One up-front mix of the seed; per-file work is a single mix.
        self._salt = _mix64(seed * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)

    def shard_of(self, file_id: int) -> int:
        if self.num_servers == 1 or file_id < 0:
            return 0
        return _mix64(file_id ^ self._salt) % self.num_servers

    __call__ = shard_of

    @property
    def chain_width(self) -> int:
        """How long a full preference chain is (``replicas_of``'s upper
        bound on ``r``): every server for the global placement, the
        slice size for a group view."""
        return self.num_servers

    def replicas_of(self, file_id: int, r: int) -> tuple[int, ...]:
        """The ``r`` distinct servers holding ``file_id``.

        The first element is always ``shard_of(file_id)`` -- the
        primary -- so ``replicas_of(fid, 1) == (shard_of(fid),)`` and
        replication factor 1 changes nothing.  The remaining replicas
        are drawn without replacement by re-chaining the splitmix64
        hash, so the full chain ``replicas_of(fid, num_servers)`` is a
        stable per-file preference order over every server; the
        re-replication manager walks it to pick substitute hosts.
        """
        if r < 1 or r > self.num_servers:
            raise ConfigError(
                f"replica count {r} must be in [1, {self.num_servers}]"
            )
        primary = self.shard_of(file_id)
        if r == 1:
            return (primary,)
        if file_id < 0:
            # The "no particular file" sentinel: first r servers.
            return tuple(range(r))
        remaining = [s for s in range(self.num_servers) if s != primary]
        chosen = [primary]
        h = _mix64(file_id ^ self._salt)
        for _ in range(r - 1):
            h = _mix64(h + 0x9E3779B97F4A7C15)
            chosen.append(remaining.pop(h % len(remaining)))
        return tuple(chosen)

    def group_view(self, group: int, groups: int) -> "GroupPlacement":
        """A placement view confined to one client group's server slice.

        Partitioned replay divides ``num_servers`` into ``groups``
        contiguous equal slices; a group's clients route *every* file
        -- group files, shared binaries, directory sentinels -- into
        their own slice, so no server ever sees traffic from two
        groups.  That per-group confinement is what makes shard replays
        byte-identical to the unpartitioned replay: a server's state
        evolves from exactly one group's operations either way.
        """
        if groups < 1 or self.num_servers % groups != 0:
            raise ConfigError(
                f"{groups} groups must evenly divide "
                f"{self.num_servers} servers"
            )
        if not 0 <= group < groups:
            raise ConfigError(f"group {group} out of range for {groups}")
        return GroupPlacement(self, group, groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Placement(num_servers={self.num_servers}, seed={self.seed})"


class GroupPlacement:
    """One group's window onto a :class:`Placement`.

    ``shard_of`` hashes within the group's slice (``slice_start ..
    slice_start + slice_size - 1``); negative file ids land on the
    slice's first server (the group-local analogue of the classic
    "sentinels go to server 0").  ``replicas_of`` confines the
    replication chain to the same slice: a group's copies live only on
    the group's servers, so replication never couples groups.
    """

    __slots__ = ("base", "group", "groups", "num_servers", "_start", "_size", "_salt")

    def __init__(self, base: Placement, group: int, groups: int) -> None:
        self.base = base
        self.group = group
        self.groups = groups
        self.num_servers = base.num_servers
        self._size = base.num_servers // groups
        self._start = group * self._size
        self._salt = base._salt

    def shard_of(self, file_id: int) -> int:
        if self._size == 1 or file_id < 0:
            return self._start
        return self._start + _mix64(file_id ^ self._salt) % self._size

    __call__ = shard_of

    @property
    def chain_width(self) -> int:
        return self._size

    def replicas_of(self, file_id: int, r: int) -> tuple[int, ...]:
        """The ``r`` distinct slice servers holding ``file_id``.

        Mirrors :meth:`Placement.replicas_of` exactly, but the
        candidate pool is the group's slice: the primary is
        ``shard_of(file_id)`` and the rest of the chain is drawn
        without replacement from the slice's other members by the same
        re-chained splitmix64 hash.  Negative (sentinel) file ids take
        the slice's first ``r`` servers, the group-local analogue of
        the global map's ``range(r)``.
        """
        if r < 1 or r > self._size:
            raise ConfigError(
                f"replica count {r} must be in [1, {self._size}] "
                f"(group {self.group}'s server slice)"
            )
        primary = self.shard_of(file_id)
        if r == 1:
            return (primary,)
        if file_id < 0:
            return tuple(range(self._start, self._start + r))
        remaining = [
            s for s in range(self._start, self._start + self._size)
            if s != primary
        ]
        chosen = [primary]
        h = _mix64(file_id ^ self._salt)
        for _ in range(r - 1):
            h = _mix64(h + 0x9E3779B97F4A7C15)
            chosen.append(remaining.pop(h % len(remaining)))
        return tuple(chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupPlacement(group={self.group}/{self.groups}, "
            f"servers=[{self._start}..{self._start + self._size - 1}])"
        )
