"""Section 5.3's latency and network back-of-envelope analysis.

The paper argues against local disks for paging with three numbers:

* fetching a 4-KB page from the server's cache over Ethernet takes
  6-7 ms -- already well under a local disk's 20-30 ms;
* the whole 40-workstation cluster generates only ~42 KB/s of paging,
  about 4% of an Ethernet;
* putting backing files on local disks would cut server traffic by
  only ~20%.

This module reproduces that analysis from a cluster replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.render import render_table
from repro.common.units import (
    DISK_ACCESS_SECONDS,
    ETHERNET_BANDWIDTH,
    KB,
    REMOTE_PAGE_FETCH_SECONDS,
)
from repro.fs.cluster import ClusterResult


@dataclass
class PagingLatencyAnalysis:
    """The Section 5.3 numbers derived from one or more replays."""

    paging_bytes_per_second: float
    ethernet_utilization: float
    remote_fetch_ms: float
    local_disk_ms: float
    #: Fraction of server bytes that would move to a local disk if
    #: backing files were kept locally.
    backing_share_of_server_traffic: float
    client_count: int

    @property
    def remote_faster_than_disk(self) -> bool:
        return self.remote_fetch_ms < self.local_disk_ms

    @property
    def pages_per_client_per_second(self) -> float:
        page = 4 * KB
        if self.client_count == 0:
            return 0.0
        return self.paging_bytes_per_second / page / self.client_count

    def render(self) -> str:
        rows = [
            ["Cluster paging rate (KB/s)",
             f"{self.paging_bytes_per_second / KB:.1f}",
             "~42 (paper)"],
            ["Ethernet utilization from paging",
             f"{100 * self.ethernet_utilization:.1f}%", "~4% (paper)"],
            ["Seconds between pages, per client",
             f"{1 / self.pages_per_client_per_second:.1f}"
             if self.pages_per_client_per_second else "inf",
             "3-4 s mid-day (paper)"],
            ["Remote server-cache page fetch",
             f"{self.remote_fetch_ms:.1f} ms", "6-7 ms (paper)"],
            ["Local disk access",
             f"{self.local_disk_ms:.1f} ms", "20-30 ms (paper)"],
            ["Server traffic saved by local paging disks",
             f"{100 * self.backing_share_of_server_traffic:.1f}%",
             "~20% (paper)"],
        ]
        verdict = (
            "paging over the network beats a local disk"
            if self.remote_faster_than_disk
            else "a local disk would beat the network here"
        )
        return render_table(
            "Paging latency and network analysis (Section 5.3)",
            ["Quantity", "Measured", "Paper"],
            rows,
            note=f"Verdict: {verdict}; spend money on memory, not local disks.",
        )


def analyze_paging_latency(
    results: list[ClusterResult],
    remote_fetch_seconds: float = REMOTE_PAGE_FETCH_SECONDS,
    disk_seconds: float = DISK_ACCESS_SECONDS,
    ethernet_bandwidth: float = ETHERNET_BANDWIDTH,
) -> PagingLatencyAnalysis:
    """Derive the Section 5.3 analysis from cluster replays."""
    total_paging_bytes = 0
    total_server_bytes = 0
    total_backing_bytes = 0
    total_duration = 0.0
    client_count = 0
    for result in results:
        total_duration += result.duration
        client_count = max(client_count, result.config.client_count)
        for counters in result.final_counters.values():
            total_paging_bytes += counters.raw_paging_bytes
            total_server_bytes += counters.server_bytes
            total_backing_bytes += (
                counters.paging_backing_bytes_read
                + counters.paging_backing_bytes_written
            )
    per_second = (
        total_paging_bytes / total_duration if total_duration else 0.0
    )
    return PagingLatencyAnalysis(
        paging_bytes_per_second=per_second,
        ethernet_utilization=per_second / ethernet_bandwidth,
        remote_fetch_ms=remote_fetch_seconds * 1000.0,
        local_disk_ms=disk_seconds * 1000.0,
        backing_share_of_server_traffic=(
            total_backing_bytes / total_server_bytes
            if total_server_bytes
            else 0.0
        ),
        client_count=client_count,
    )
