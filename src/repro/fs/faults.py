"""Fault injection and crash recovery.

The paper measures a healthy cluster, but its Section 5 caveats are all
about failure: Sprite's 30-second delayed writes can lose up to 30
seconds of work on a crash, and its stateful servers must rebuild their
open-file state from the clients when they reboot.  This module turns
those caveats into measurable experiments:

* a :class:`FaultSchedule` -- a deterministic, seeded list of
  :class:`FaultEvent`\\ s (server crashes, client crashes, network
  partitions) generated from the rates in :class:`FaultConfig`;
* a :class:`FaultInjector` that arms the schedule on the cluster's
  event engine, so faults interleave with the trace replay exactly like
  the writeback daemons and counter snapshots do;
* the accounting helpers for RPC retry with exponential backoff.

Recovery follows Sprite's stateful reopen protocol (Section 5.6 of the
paper and the Sprite recovery papers): when the server returns, each
client re-registers its open files (reopen RPCs), re-validates every
cached file against the server's durable version stamp (dropping stale
blocks), and immediately replays dirty blocks whose writeback came due
while the server was unreachable.

Accounting conventions (the replay is open-loop, so the global clock
never stalls):

* A stalled operation books the retries and the stall time it *would*
  have experienced -- ``stall_seconds`` is process-seconds, summed over
  stalled operations, and can exceed the wall-clock downtime when many
  operations stall concurrently.
* Naming operations (open, close, fsync, delete) always use "stall"
  semantics: they eventually execute, logically at recovery time.
  Data operations (block fetches, passthrough reads/writes) honour
  ``degraded_mode``: ``"stall"`` behaves like a hard mount, ``"fail"``
  gives up after ``rpc_timeout`` and drops the transfer.
* With every rate at its default of zero the subsystem is inert: no
  events are scheduled, no random stream is consumed, and no counter
  moves -- fault-free runs are byte-identical to a build without this
  module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.common.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.cluster import Cluster

#: ``FaultEvent.target`` value meaning server 0 -- *the* server of a
#: single-server cluster.  In a sharded cluster a server crash may also
#: target an explicit server id >= 0.
SERVER_TARGET = -1


class FaultKind(enum.Enum):
    """What breaks."""

    SERVER_CRASH = "server_crash"
    CLIENT_CRASH = "client_crash"
    PARTITION = "partition"


class DiskFaultKind(enum.Enum):
    """How a disk lies (see :mod:`repro.fs.integrity`)."""

    #: A durable block's stored payload is garbled in place.
    BIT_ROT = "bit_rot"
    #: The next write persists garbled bytes under the intended checksum.
    TORN_WRITE = "torn_write"
    #: The next write is acknowledged but never persisted.
    LOST_WRITE = "lost_write"


@dataclass(frozen=True, slots=True)
class DiskFaultEvent:
    """One injected disk fault.  Unlike a :class:`FaultEvent`, nothing
    heals: corruption persists until detected and repaired, which is the
    whole point of the integrity layer."""

    time: float
    kind: DiskFaultKind
    server_id: int
    #: Pre-drawn uniform in [0, 1) picking the bit-rot victim among the
    #: server's durable blocks at fire time (unused by the armed kinds);
    #: drawing it at schedule time keeps the replay RNG untouched.
    selector: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"disk fault scheduled before time zero: {self.time}")
        if self.server_id < 0:
            raise ConfigError(f"disk fault needs a server id, got {self.server_id}")
        if not 0.0 <= self.selector < 1.0:
            raise ConfigError(f"disk fault selector must be in [0, 1): {self.selector}")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault: something breaks at ``time`` and heals
    ``duration`` seconds later."""

    time: float
    kind: FaultKind
    #: Client id; or for server crashes a server id (SERVER_TARGET = -1
    #: aliases server 0, the only server of a classic cluster).
    target: int
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"fault scheduled before time zero: {self.time}")
        if self.duration <= 0:
            raise ConfigError(f"fault needs a positive duration: {self.duration}")
        if self.kind is FaultKind.SERVER_CRASH and self.target < SERVER_TARGET:
            raise ConfigError(
                "server crashes must target SERVER_TARGET or a server id"
            )
        if self.kind is not FaultKind.SERVER_CRASH and self.target < 0:
            raise ConfigError(f"client fault needs a client target, got {self.target}")

    @property
    def end_time(self) -> float:
        return self.time + self.duration


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection knobs; all rates default to zero (no faults).

    Rates are events per simulated *hour* (per client-hour for client
    faults), turned into exponential inter-arrival gaps by
    :meth:`FaultSchedule.generate`.  Downtimes and partition durations
    are exponential means, floored at one second.
    """

    #: Server crashes per simulated hour (0 = never).
    server_crash_rate: float = 0.0
    #: Mean seconds the server stays down per crash.
    server_downtime: float = 60.0
    #: Client crashes per client per simulated hour.
    client_crash_rate: float = 0.0
    #: Mean seconds a crashed client stays down.
    client_downtime: float = 120.0
    #: Network partitions per client per simulated hour.
    partition_rate: float = 0.0
    #: Mean seconds a partition lasts.
    partition_duration: float = 30.0

    #: A client gives up on an unreachable server after this much
    #: cumulative backoff (data operations in ``"fail"`` mode only).
    rpc_timeout: float = 30.0
    #: First retry delay; doubles (``rpc_backoff_factor``) up to
    #: ``rpc_max_backoff`` -- classic exponential backoff.
    rpc_initial_backoff: float = 0.1
    rpc_backoff_factor: float = 2.0
    rpc_max_backoff: float = 5.0
    #: What a data operation does when the timeout expires with the
    #: server still unreachable: ``"stall"`` keeps waiting (hard mount),
    #: ``"fail"`` drops the transfer (fail open).
    degraded_mode: str = "stall"

    #: Message-level network faults (see :mod:`repro.fs.rpc`).  Each is
    #: the per-message probability that the lossy channel drops,
    #: duplicates, holds back (reorders), or delays a packet.  All
    #: default to zero: the transport then never consumes randomness
    #: and replays stay byte-identical to a build without it.
    message_loss_rate: float = 0.0
    message_duplicate_rate: float = 0.0
    message_reorder_rate: float = 0.0
    message_delay_rate: float = 0.0
    #: Mean seconds a delayed message is late (exponential).
    message_delay_mean: float = 0.05

    #: Disk faults (see :mod:`repro.fs.integrity`), events per server
    #: per simulated hour.  All default to zero: no integrity layer is
    #: built and replays stay byte-identical to builds without it.
    disk_corruption_rate: float = 0.0  # bit-rot events
    disk_torn_write_rate: float = 0.0
    disk_lost_write_rate: float = 0.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject impossible knob combinations with a :class:`ConfigError`."""
        for name in ("server_crash_rate", "client_crash_rate", "partition_rate"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        for name in ("server_downtime", "client_downtime", "partition_duration"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.rpc_timeout <= 0:
            raise ConfigError("rpc_timeout must be positive")
        if self.rpc_initial_backoff <= 0 or self.rpc_max_backoff <= 0:
            raise ConfigError("backoff delays must be positive")
        if self.rpc_backoff_factor < 1.0:
            raise ConfigError("rpc_backoff_factor must be >= 1")
        if self.degraded_mode not in ("stall", "fail"):
            raise ConfigError(
                f"degraded_mode must be 'stall' or 'fail', got {self.degraded_mode!r}"
            )
        for name in (
            "message_loss_rate",
            "message_duplicate_rate",
            "message_reorder_rate",
            "message_delay_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.message_delay_mean <= 0:
            raise ConfigError(
                f"message_delay_mean must be positive, got {self.message_delay_mean}"
            )
        for name in (
            "disk_corruption_rate",
            "disk_torn_write_rate",
            "disk_lost_write_rate",
        ):
            rate = getattr(self, name)
            if rate < 0:
                raise ConfigError(
                    f"{name} must be >= 0 events per server-hour, got {rate}"
                )

    @property
    def any_faults(self) -> bool:
        """True when any outage fault can actually occur."""
        return (
            self.server_crash_rate > 0
            or self.client_crash_rate > 0
            or self.partition_rate > 0
        )

    @property
    def any_network_faults(self) -> bool:
        """True when the message channel can misbehave."""
        return (
            self.message_loss_rate > 0
            or self.message_duplicate_rate > 0
            or self.message_reorder_rate > 0
            or self.message_delay_rate > 0
        )

    @property
    def any_disk_faults(self) -> bool:
        """True when a disk can lie (the integrity layer is needed)."""
        return (
            self.disk_corruption_rate > 0
            or self.disk_torn_write_rate > 0
            or self.disk_lost_write_rate > 0
        )


@dataclass
class FaultSchedule:
    """A time-ordered list of fault events for one replay.

    Build one explicitly for scripted scenarios, or derive one from the
    rates in a :class:`FaultConfig` with :meth:`generate` -- the same
    config, population, duration, and stream always yield the same
    schedule, no matter what else consumes randomness.
    """

    events: list[FaultEvent] = field(default_factory=list)
    #: Disk faults (bit rot, torn writes, lost writes); a separate list
    #: because nothing heals them -- they have no duration, and they are
    #: applied through the integrity layer, not the outage machinery.
    disk_events: list[DiskFaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(
            self.events, key=lambda e: (e.time, e.kind.value, e.target)
        )
        self.disk_events = sorted(
            self.disk_events, key=lambda e: (e.time, e.kind.value, e.server_id)
        )

    def __len__(self) -> int:
        return len(self.events) + len(self.disk_events)

    @classmethod
    def generate(
        cls,
        config: FaultConfig,
        client_count: int,
        duration: float,
        rng: RngStream,
        num_servers: int = 1,
    ) -> "FaultSchedule":
        """Draw a schedule over ``[0, duration)``.

        Each failure process (every server, each client's crashes, each
        client's partitions) draws from its own forked stream, and the
        next fault is drawn from the end of the previous outage, so
        faults of one kind never overlap on one target.  Server 0 keeps
        the historical ``"server"`` stream and ``SERVER_TARGET`` target,
        so single-server schedules are unchanged; each extra shard is an
        independent crash process at the full ``server_crash_rate``.
        """
        events: list[FaultEvent] = []

        def draw(
            stream: RngStream,
            rate_per_hour: float,
            mean_downtime: float,
            kind: FaultKind,
            target: int,
        ) -> None:
            if rate_per_hour <= 0:
                return
            mean_gap = 3600.0 / rate_per_hour
            t = 0.0
            while True:
                t += stream.exponential(mean_gap)
                if t >= duration:
                    return
                down = max(1.0, stream.exponential(mean_downtime))
                events.append(FaultEvent(t, kind, target, down))
                t += down

        draw(
            rng.fork("server"),
            config.server_crash_rate,
            config.server_downtime,
            FaultKind.SERVER_CRASH,
            SERVER_TARGET,
        )
        for server_id in range(1, num_servers):
            draw(
                rng.fork(f"server-{server_id}"),
                config.server_crash_rate,
                config.server_downtime,
                FaultKind.SERVER_CRASH,
                server_id,
            )
        for client_id in range(client_count):
            draw(
                rng.fork(f"client-crash-{client_id}"),
                config.client_crash_rate,
                config.client_downtime,
                FaultKind.CLIENT_CRASH,
                client_id,
            )
            draw(
                rng.fork(f"partition-{client_id}"),
                config.partition_rate,
                config.partition_duration,
                FaultKind.PARTITION,
                client_id,
            )

        disk_events: list[DiskFaultEvent] = []

        def draw_disk(
            stream: RngStream,
            rate_per_hour: float,
            kind: DiskFaultKind,
            server_id: int,
        ) -> None:
            if rate_per_hour <= 0:
                return
            mean_gap = 3600.0 / rate_per_hour
            t = 0.0
            while True:
                t += stream.exponential(mean_gap)
                if t >= duration:
                    return
                # The bit-rot victim selector is drawn here, at schedule
                # time, so applying the fault consumes no replay RNG.
                disk_events.append(
                    DiskFaultEvent(t, kind, server_id, stream.random())
                )

        for server_id in range(num_servers):
            draw_disk(
                rng.fork(f"disk-bitrot-{server_id}"),
                config.disk_corruption_rate,
                DiskFaultKind.BIT_ROT,
                server_id,
            )
            draw_disk(
                rng.fork(f"disk-torn-{server_id}"),
                config.disk_torn_write_rate,
                DiskFaultKind.TORN_WRITE,
                server_id,
            )
            draw_disk(
                rng.fork(f"disk-lost-{server_id}"),
                config.disk_lost_write_rate,
                DiskFaultKind.LOST_WRITE,
                server_id,
            )
        return cls(events, disk_events)

    @classmethod
    def generate_grouped(
        cls,
        config: FaultConfig,
        duration: float,
        rng: RngStream,
        *,
        groups: int,
        group_sizes: tuple[int, ...],
        servers_per_group: int,
        owned_groups: tuple[int, ...] | None = None,
    ) -> "FaultSchedule":
        """Draw a per-group schedule for a grouped cluster.

        Every machine stream hangs off its group's fork
        (``rng.fork(f"group-{g}")``), and ``fork`` is a pure function of
        the parent key and name -- so group ``g``'s timeline is a pure
        function of ``(config, duration, seed, g)``, independent of how
        many other groups exist or which shard generates it.  A shard
        passing only its ``owned_groups`` therefore produces exactly
        the events the unpartitioned replay's full schedule holds for
        those groups, and :meth:`__post_init__`'s canonical sort makes
        the concatenation order irrelevant.

        Server crashes always carry an explicit server id (never the
        historical ``SERVER_TARGET`` alias), and disk streams use the
        same per-kind names as :meth:`generate` but under the group
        fork, so grouped and ungrouped schedules never share a stream.
        """
        if len(group_sizes) != groups:
            raise ConfigError(
                f"got {len(group_sizes)} group sizes for {groups} groups"
            )
        events: list[FaultEvent] = []
        disk_events: list[DiskFaultEvent] = []

        def draw(
            stream: RngStream,
            rate_per_hour: float,
            mean_downtime: float,
            kind: FaultKind,
            target: int,
        ) -> None:
            if rate_per_hour <= 0:
                return
            mean_gap = 3600.0 / rate_per_hour
            t = 0.0
            while True:
                t += stream.exponential(mean_gap)
                if t >= duration:
                    return
                down = max(1.0, stream.exponential(mean_downtime))
                events.append(FaultEvent(t, kind, target, down))
                t += down

        def draw_disk(
            stream: RngStream,
            rate_per_hour: float,
            kind: DiskFaultKind,
            server_id: int,
        ) -> None:
            if rate_per_hour <= 0:
                return
            mean_gap = 3600.0 / rate_per_hour
            t = 0.0
            while True:
                t += stream.exponential(mean_gap)
                if t >= duration:
                    return
                disk_events.append(
                    DiskFaultEvent(t, kind, server_id, stream.random())
                )

        offsets = [0]
        for size in group_sizes:
            offsets.append(offsets[-1] + size)
        for group in owned_groups if owned_groups is not None else range(groups):
            if not 0 <= group < groups:
                raise ConfigError(f"group {group} out of range for {groups}")
            grng = rng.fork(f"group-{group}")
            first_server = group * servers_per_group
            for server_id in range(first_server, first_server + servers_per_group):
                draw(
                    grng.fork(f"server-{server_id}"),
                    config.server_crash_rate,
                    config.server_downtime,
                    FaultKind.SERVER_CRASH,
                    server_id,
                )
                draw_disk(
                    grng.fork(f"disk-bitrot-{server_id}"),
                    config.disk_corruption_rate,
                    DiskFaultKind.BIT_ROT,
                    server_id,
                )
                draw_disk(
                    grng.fork(f"disk-torn-{server_id}"),
                    config.disk_torn_write_rate,
                    DiskFaultKind.TORN_WRITE,
                    server_id,
                )
                draw_disk(
                    grng.fork(f"disk-lost-{server_id}"),
                    config.disk_lost_write_rate,
                    DiskFaultKind.LOST_WRITE,
                    server_id,
                )
            for client_id in range(offsets[group], offsets[group + 1]):
                draw(
                    grng.fork(f"client-crash-{client_id}"),
                    config.client_crash_rate,
                    config.client_downtime,
                    FaultKind.CLIENT_CRASH,
                    client_id,
                )
                draw(
                    grng.fork(f"partition-{client_id}"),
                    config.partition_rate,
                    config.partition_duration,
                    FaultKind.PARTITION,
                    client_id,
                )
        return cls(events, disk_events)


class FaultInjector:
    """Arms a schedule on a cluster's event engine.

    Crashes and their recoveries are ordinary engine events, so they
    fire deterministically between trace records -- a fault at the same
    timestamp as a record fires first (the engine runs up to the record
    time before the record is dispatched).  Recoveries scheduled past
    the replay's end simply never fire: the run ends with the fault
    outstanding and the counters say so.
    """

    def __init__(self, cluster: "Cluster", schedule: FaultSchedule) -> None:
        self._cluster = cluster
        self.schedule = schedule
        self.injected = 0

    def arm(self) -> None:
        engine = self._cluster.engine
        obs = getattr(self._cluster, "obs", None)
        for event in self.schedule.events:
            engine.schedule_at(event.time, _Apply(self, event))
            if obs is not None:
                obs.on_fault_armed(event)
        for disk_event in self.schedule.disk_events:
            engine.schedule_at(disk_event.time, _ApplyDisk(self, disk_event))

    def apply(self, event: FaultEvent) -> None:
        cluster = self._cluster
        self.injected += 1
        obs = getattr(cluster, "obs", None)
        if obs is not None:
            obs.on_fault_fired(cluster.engine.now, event)
        if event.kind is FaultKind.SERVER_CRASH:
            server_id = 0 if event.target < 0 else event.target
            server_id %= len(cluster.servers)
            cluster.crash_server(event.end_time, server_id)
            cluster.engine.schedule_at(
                event.end_time, _RecoverServer(cluster, server_id)
            )
        elif event.kind is FaultKind.CLIENT_CRASH:
            client = cluster.clients[event.target % len(cluster.clients)]
            cluster.crash_client(client)
            cluster.engine.schedule_at(
                event.end_time, _Reboot(cluster, client)
            )
        else:
            client = cluster.clients[event.target % len(cluster.clients)]
            cluster.partition_client(client, event.end_time)
            cluster.engine.schedule_at(
                event.end_time, _Heal(cluster, client)
            )

    def apply_disk(self, event: DiskFaultEvent) -> None:
        """Fire one disk fault through the cluster's integrity layer.

        A no-op on a cluster built without one (a scripted disk schedule
        against a config that never asked for integrity): the fault has
        no store to corrupt.
        """
        cluster = self._cluster
        integrity = getattr(cluster, "integrity", None)
        if integrity is None:
            return
        self.injected += 1
        now = cluster.engine.now
        server_id = event.server_id % len(cluster.servers)
        obs = getattr(cluster, "obs", None)
        if obs is not None:
            obs.on_disk_fault(now, server_id, event.kind.value)
        if event.kind is DiskFaultKind.BIT_ROT:
            integrity.inject_bit_rot(now, server_id, event.selector)
        elif event.kind is DiskFaultKind.TORN_WRITE:
            integrity.arm_torn(server_id)
        else:
            integrity.arm_lost(server_id)


class _Apply:
    """Picklable-free callback shims (plain closures would also work;
    classes keep reprs useful when debugging the event heap)."""

    __slots__ = ("_injector", "_event")

    def __init__(self, injector: FaultInjector, event: FaultEvent) -> None:
        self._injector = injector
        self._event = event

    def __call__(self) -> None:
        self._injector.apply(self._event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Apply({self._event!r})"


class _ApplyDisk:
    __slots__ = ("_injector", "_event")

    def __init__(self, injector: FaultInjector, event: DiskFaultEvent) -> None:
        self._injector = injector
        self._event = event

    def __call__(self) -> None:
        self._injector.apply_disk(self._event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ApplyDisk({self._event!r})"


class _RecoverServer:
    __slots__ = ("_cluster", "_server_id")

    def __init__(self, cluster: "Cluster", server_id: int) -> None:
        self._cluster = cluster
        self._server_id = server_id

    def __call__(self) -> None:
        self._cluster.recover_server(self._server_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_RecoverServer(server_id={self._server_id})"


class _Reboot:
    __slots__ = ("_cluster", "_client")

    def __init__(self, cluster: "Cluster", client) -> None:
        self._cluster = cluster
        self._client = client

    def __call__(self) -> None:
        self._cluster.reboot_client(self._client)


class _Heal:
    __slots__ = ("_cluster", "_client")

    def __init__(self, cluster: "Cluster", client) -> None:
        self._cluster = cluster
        self._client = client

    def __call__(self) -> None:
        self._cluster.heal_client(self._client)
