"""The virtual memory side of the memory-trading negotiation.

Section 5.1/5.4: caches "vary in size depending on the needs of the file
system and the virtual memory system", and the VM system receives
preference -- "a physical page used for virtual memory cannot be
converted to a file cache page unless it has been unreferenced for at
least 20 minutes."

The model keeps aggregate page counts rather than individual pages:

* ``active`` -- pages in live working sets (untouchable by the cache);
* an *aging queue* -- pages released by exiting/idle processes, each
  batch stamped with its release time; a batch becomes stealable by the
  file cache once it has aged ``preference`` seconds;
* ``cache`` -- pages currently lent to the file cache;
* ``free`` -- everything else.

A demand spike (process start, migrated process arrival) takes free
pages first, then un-ages its own aging pages, and finally forces the
file cache to give pages back -- the Table 8 "given to virtual memory"
evictions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.errors import SimulationError


@dataclass
class _AgingBatch:
    released_at: float
    pages: int


class VirtualMemory:
    """Aggregate page accounting for one client."""

    def __init__(
        self,
        total_pages: int,
        preference_seconds: float,
        base_demand_pages: int = 0,
        cache_floor_pages: int = 0,
    ) -> None:
        if total_pages <= 0:
            raise SimulationError(f"no pages to manage: {total_pages}")
        if base_demand_pages + cache_floor_pages > total_pages:
            raise SimulationError("base VM demand + cache floor exceeds memory")
        self.total_pages = total_pages
        self.preference = preference_seconds
        self.active = base_demand_pages
        self.cache = 0
        #: Pages the VM may never take: the file cache's minimum size.
        self.cache_floor = cache_floor_pages
        self._aging: deque[_AgingBatch] = deque()
        #: Running total of ``_aging`` pages -- ``free`` (and through it
        #: every claim/demand) used to re-sum the whole deque per call.
        self._aging_total = 0

    # --- inspection -----------------------------------------------------------

    @property
    def aging(self) -> int:
        return self._aging_total

    @property
    def free(self) -> int:
        free = self.total_pages - self.active - self._aging_total - self.cache
        if free < 0:
            raise SimulationError(
                f"page accounting broken: active={self.active} "
                f"aging={self.aging} cache={self.cache} total={self.total_pages}"
            )
        return free

    @property
    def vm_resident_pages(self) -> int:
        """Pages the VM system holds (active + not-yet-stealable aging)."""
        return self.active + self.aging

    def _stealable_aged(self, now: float) -> int:
        """Aged pages the cache is allowed to claim."""
        cutoff = now - self.preference
        return sum(b.pages for b in self._aging if b.released_at <= cutoff)

    def available_for_cache(self, now: float) -> int:
        """Pages the cache could claim right now."""
        return self.free + self._stealable_aged(now)

    # --- cache side -----------------------------------------------------------

    def claim_for_cache(self, now: float, pages: int = 1) -> int:
        """The cache asks for pages; returns how many it got."""
        if pages <= 0:
            return 0
        granted = 0
        take_free = min(self.free, pages)
        self.cache += take_free
        granted += take_free
        while granted < pages and self._aging:
            batch = self._aging[0]
            if batch.released_at > now - self.preference:
                break  # everything older is in front; nothing stealable
            take = min(batch.pages, pages - granted)
            batch.pages -= take
            self._aging_total -= take
            if batch.pages == 0:
                self._aging.popleft()
            self.cache += take
            granted += take
        return granted

    def release_from_cache(self, pages: int = 1) -> None:
        """The cache hands pages back (eviction on behalf of VM)."""
        if pages < 0 or pages > self.cache:
            raise SimulationError(
                f"cache released {pages} pages but holds {self.cache}"
            )
        self.cache -= pages

    # --- VM side ----------------------------------------------------------------

    def demand(self, now: float, pages: int) -> int:
        """A working set grows by ``pages``.

        Takes free pages first, then reclaims the VM's own aging pages
        (newest first).  Returns the *shortfall* -- pages that can only
        come from the file cache.  The caller evicts that many blocks
        (:meth:`ClientKernel.surrender_pages`, which calls
        :meth:`release_from_cache`) and then calls :meth:`absorb` for
        the pages actually obtained.
        """
        if pages <= 0:
            return 0
        # The VM system may never squeeze the file cache below its
        # floor; trim the demand to what memory can actually provide
        # (a real machine would be thrashing at this point).
        headroom = max(
            0, self.total_pages - self.cache_floor - self.active - self.aging
        )
        stealable_cache = max(0, self.cache - self.cache_floor)
        pages = min(pages, headroom + stealable_cache)
        needed = pages
        take_free = min(self.free, needed)
        self.active += take_free
        needed -= take_free
        while needed > 0 and self._aging:
            batch = self._aging[-1]
            take = min(batch.pages, needed)
            batch.pages -= take
            self._aging_total -= take
            if batch.pages == 0:
                self._aging.pop()
            self.active += take
            needed -= take
        return min(needed, max(0, self.cache - self.cache_floor))

    def absorb(self, pages: int) -> None:
        """Pages surrendered by the cache become active VM pages."""
        if pages < 0:
            raise SimulationError(f"cannot absorb {pages} pages")
        if self.active + pages + self.aging + self.cache > self.total_pages:
            raise SimulationError("absorb would overcommit memory")
        self.active += pages

    def release(self, now: float, pages: int) -> None:
        """A working set shrinks: pages begin aging toward stealability."""
        if pages <= 0:
            return
        pages = min(pages, self.active)
        self.active -= pages
        if pages:
            self._aging.append(_AgingBatch(released_at=now, pages=pages))
            self._aging_total += pages
