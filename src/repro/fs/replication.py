"""Block replication: failover reads, failure detection, re-replication.

The paper's availability story is stark: a Sprite file lived on exactly
one server, so a server crash blacked out every file on it until reboot
(Section 8 measures those outages).  This module adds the standard
remedy on top of the PR 5 sharded cluster:

* **Placement** (:meth:`repro.fs.sharding.Placement.replicas_of`) maps
  each file to ``r`` distinct servers -- the primary plus ``r - 1``
  splitmix64-chained picks -- stable across runs, workers, and seeds.
* **Failover reads**: the client kernel routes every per-file operation
  to the first *live* replica instead of stalling on a crashed primary
  (see ``ClientKernel._route_replicated``).
* **Write propagation**: the replica that serves an open/close/writeback
  runs the full consistency protocol; the client then mirrors the
  outcome to the other live replicas (``replica_open``/``replica_close``
  RPCs and a ``write_block`` fan-out), keeping registrations and version
  stamps convergent so a later failover is seamless.  Pushes a down
  replica misses are queued here as a **pending log** and applied when
  it recovers -- before the clients' reopen sweeps run.
* **Failure detection**: a heartbeat tick (a ``SharedTicker``
  subscription, sharing the writeback scan's coalesced engine event at
  the default period) counts consecutive missed beats per server and
  declares a server dead after ``heartbeat_miss_threshold`` misses.
* **Re-replication**: a dead declaration triggers a background copy of
  every file the dead server hosted onto the next live server in the
  file's placement chain, restoring ``r`` reachable copies.  Substitute
  replicas are dropped again when the dead server reboots (its durable
  copy, patched from the pending log, rejoins the replica set).

With ``replication_factor=1`` none of this is constructed: no manager,
no heartbeat subscription, no fan-out -- replays are byte-identical to
builds that predate this module.

The divergence *check* lives in :mod:`repro.fs.oracle` (a final sweep
comparing version stamps across each file's live replicas); this module
only hands it the replica map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.common.errors import ConfigError, SimulationError
from repro.common.render import format_number, render_table
from repro.common.units import KB
from repro.fs.sharding import Placement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.cluster import ClusterResult
    from repro.fs.server import Server


class ReplicaMap:
    """The current file -> replica-set map.

    The *base* replicas are the pure placement function and are cached
    per file; *substitute* replicas added by re-replication are layered
    on top and dropped when the server they stood in for recovers.
    """

    __slots__ = ("placement", "replication_factor", "_base", "_extra")

    def __init__(self, placement: Placement, replication_factor: int) -> None:
        self.placement = placement
        self.replication_factor = replication_factor
        self._base: dict[int, tuple[int, ...]] = {}
        #: file_id -> {substitute server -> dead server it stands in for}
        self._extra: dict[int, dict[int, int]] = {}

    def base_replicas(self, file_id: int) -> tuple[int, ...]:
        replicas = self._base.get(file_id)
        if replicas is None:
            replicas = self._base[file_id] = self.placement.replicas_of(
                file_id, self.replication_factor
            )
        return replicas

    def replicas(self, file_id: int) -> tuple[int, ...]:
        """Base replicas plus any live substitutes, primary first."""
        base = self.base_replicas(file_id)
        extra = self._extra.get(file_id)
        if not extra:
            return base
        return base + tuple(sorted(extra))

    def add_substitute(self, file_id: int, target: int, dead: int) -> None:
        self._extra.setdefault(file_id, {})[target] = dead

    def drop_substitutes_for(self, dead: int) -> None:
        """The dead server recovered: its stand-ins retire."""
        empty = []
        for file_id, extra in self._extra.items():
            for target in [t for t, d in extra.items() if d == dead]:
                del extra[target]
            if not extra:
                empty.append(file_id)
        for file_id in empty:
            del self._extra[file_id]

    def forget(self, file_id: int) -> None:
        """The file was deleted."""
        self._extra.pop(file_id, None)


class GroupReplication:
    """One client group's window onto the cluster ReplicationManager.

    A grouped cluster keeps a single manager (one heartbeat tick, one
    pending log, one dead-set) but one :class:`ReplicaMap` per group,
    because shared file ids -- the negative sentinels and the read-only
    binaries -- resolve to a *different* server slice per group.  The
    client kernel talks to this facade exactly as it would to the
    manager: same pending log and test hooks, the group's own map.
    """

    __slots__ = ("manager", "replica_map")

    def __init__(self, manager: "ReplicationManager", replica_map: ReplicaMap):
        self.manager = manager
        self.replica_map = replica_map

    @property
    def skip_propagation_to(self) -> set[int]:
        return self.manager.skip_propagation_to

    def flush_pending(self, server_id: int) -> None:
        self.manager.flush_pending(server_id)

    def queue_pending(
        self, server_id: int, file_id: int, version: int | None
    ) -> None:
        self.manager.queue_pending(server_id, file_id, version)

    def on_delete(self, file_id: int) -> None:
        self.replica_map.forget(file_id)


class ReplicationManager:
    """Heartbeat failure detector + pending log + re-replication.

    One per cluster, constructed only when ``replication_factor > 1``.
    Everything it does is driven by deterministic engine events (the
    heartbeat tick) or by explicit cluster calls, so replays stay
    byte-identical across worker counts.

    With ``groups > 1`` the manager carries one :class:`ReplicaMap` per
    (owned) group instead of the single ``replica_map`` -- each over
    the group's :meth:`~repro.fs.sharding.Placement.group_view` -- and
    every lookup resolves the map through the server id it concerns
    (``sid // servers_per_group`` names the group).  Clients go through
    :meth:`group_view`.
    """

    def __init__(
        self,
        engine,
        servers: "list[Server]",
        placement: Placement,
        replication_factor: int,
        miss_threshold: int,
        ticker,
        groups: int = 1,
        owned_groups: "tuple[int, ...] | None" = None,
    ) -> None:
        self.engine = engine
        self.servers = servers
        self.groups = groups
        if groups == 1:
            self.replica_map = ReplicaMap(placement, replication_factor)
            self._group_maps: dict[int, ReplicaMap] | None = None
            self._servers_per_group = placement.num_servers
        else:
            self.replica_map = None
            owned = tuple(range(groups)) if owned_groups is None else owned_groups
            self._group_maps = {
                group: ReplicaMap(
                    placement.group_view(group, groups), replication_factor
                )
                for group in owned
            }
            self._servers_per_group = placement.num_servers // groups
        self.miss_threshold = miss_threshold
        self._missed = [0] * len(servers)
        #: Servers currently declared dead by the detector (a superset
        #: snapshot lag is fine: declaration needs k missed beats, so a
        #: crashed server is routed around long before it is declared).
        self._dead: set[int] = set()
        #: Pushes a down replica missed: server -> {file ->
        #: (delete_pending, version)}.  ``delete_pending`` records that
        #: the file was deleted while the replica was down, so its stale
        #: durable copy must be invalidated -- *before* any version is
        #: applied, because a deleted-then-recreated file's new version
        #: must not max-merge against the pre-delete stamp.  Applied (in
        #: file order) at recovery, before the clients' reopen sweeps
        #: re-register.
        self._pending: dict[int, dict[int, tuple[bool, int | None]]] = {}
        #: Test hook: servers that silently drop propagation (both the
        #: live fan-out and the pending log).  Used by the oracle's
        #: negative tests to manufacture replica divergence.
        self.skip_propagation_to: set[int] = set()
        #: Optional observability hook (repro.obs); every use is guarded.
        self.obs = None
        #: Integrity layer (repro.fs.integrity), set by the cluster when
        #: built; re-replication then copies verified block content too.
        self.integrity = None
        self._subscription = ticker.subscribe(self._heartbeat_tick)

    # --- grouped plumbing --------------------------------------------------------

    def group_view(self, group: int) -> GroupReplication:
        """The facade a grouped client routes through."""
        if self._group_maps is None:
            raise ConfigError(
                "group_view on an ungrouped ReplicationManager"
            )
        return GroupReplication(self, self._group_maps[group])

    def group_maps(self) -> "dict[int, ReplicaMap] | None":
        """Per-group maps (None when ungrouped); the integrity layer
        and oracle resolve shared file ids through these."""
        return self._group_maps

    def _map_for_server(self, server_id: int) -> ReplicaMap:
        if self._group_maps is None:
            return self.replica_map
        group = server_id // self._servers_per_group
        rmap = self._group_maps.get(group)
        if rmap is None:
            raise SimulationError(
                f"server {server_id} (group {group}) is not owned by this "
                f"shard (owned groups: {sorted(self._group_maps)})"
            )
        return rmap

    # --- the failure detector ----------------------------------------------------

    def _heartbeat_tick(self) -> None:
        now = self.engine.now
        for server in self.servers:
            sid = server.server_id
            if server.up:
                self._missed[sid] = 0
                continue
            self._missed[sid] += 1
            server.counters.heartbeats_missed += 1
            if self._missed[sid] == self.miss_threshold and sid not in self._dead:
                self._dead.add(sid)
                server.counters.failure_detections += 1
                if self.obs is not None:
                    self.obs.on_failure_detected(now, sid, self._missed[sid])
                self._rereplicate(now, sid)

    # --- the pending log ---------------------------------------------------------

    def queue_pending(self, server_id: int, file_id: int, version: int | None) -> None:
        """Record a push a down replica missed (``None`` = a delete).

        The log keeps outcomes, not history: a delete *drops* any
        version queued earlier (replaying a push for a file that no
        longer exists would resurrect it), and a later push for a
        deleted file marks it deleted-then-recreated so recovery
        invalidates the stale durable copy before stamping the new
        version.
        """
        if server_id in self.skip_propagation_to:
            return
        log = self._pending.setdefault(server_id, {})
        if version is None:
            log[file_id] = (True, None)
            return
        entry = log.get(file_id)
        if entry is not None and entry[0]:
            log[file_id] = (True, version)
        else:
            log[file_id] = (False, version)

    def flush_pending(self, server_id: int) -> None:
        """Apply (and clear) a server's pending log.

        Runs at recovery, and also when a client is forced to route an
        operation to a still-down server (every replica down): the
        operation logically executes at that server's recovery, so the
        pushes it missed must land first to keep versions monotonic.
        """
        pending = self._pending.pop(server_id, None)
        if not pending:
            return
        server = self.servers[server_id]
        for file_id in sorted(pending):
            deleted, version = pending[file_id]
            if deleted:
                # Invalidate first: after it, the server reads as
                # version 0, so a recreate's version applies exactly
                # rather than max-merging against the pre-delete stamp.
                server.invalidate_file(file_id)
            if version is not None:
                server.apply_replica_version(file_id, version)

    # --- cluster transitions -----------------------------------------------------

    def on_server_recovered(self, now: float, server_id: int) -> None:
        """The server rebooted: patch its durable state from the pending
        log, retire its substitutes, and reset the detector."""
        self.flush_pending(server_id)
        self._map_for_server(server_id).drop_substitutes_for(server_id)
        self._missed[server_id] = 0
        self._dead.discard(server_id)

    def on_delete(self, file_id: int) -> None:
        if self.replica_map is None:
            raise SimulationError(
                "grouped cluster: deletes must go through a group_view "
                "facade, not the cluster ReplicationManager"
            )
        self.replica_map.forget(file_id)

    # --- re-replication ----------------------------------------------------------

    def _rereplicate(self, now: float, dead_id: int) -> None:
        """Restore ``r`` reachable copies of every file the dead server
        hosted.

        The hosted set is discovered from the live replicas' durable
        state (the dead server cannot be asked).  Each file's substitute
        is the first live server in its full placement chain that is not
        already a replica; it receives the freshest live version stamp
        and a copy of the freshest replica's resident cache blocks.
        Registrations are not copied -- they converge through the normal
        open/close fan-out.  Files created after this declaration stay
        at ``r - 1`` copies until the dead server returns (the detector
        declares once per outage).
        """
        servers = self.servers
        rmap = self._map_for_server(dead_id)
        placement = rmap.placement
        candidates: set[int] = set()
        if self._group_maps is None:
            pool = list(servers)
        else:
            # Only the dead server's own group slice can hold (or
            # receive) copies of its files.
            first = (dead_id // self._servers_per_group) * self._servers_per_group
            pool = [
                servers[s]
                for s in range(first, first + self._servers_per_group)
            ]
        for server in pool:
            if server.up:
                candidates.update(server._files.keys())
        for file_id in sorted(candidates):
            replicas = rmap.replicas(file_id)
            if dead_id not in replicas:
                continue
            live = [s for s in replicas if servers[s].up]
            if not live:
                continue
            target_id = None
            for cand in placement.replicas_of(file_id, placement.chain_width):
                if cand not in replicas and servers[cand].up:
                    target_id = cand
                    break
            if target_id is None:
                continue  # no live server left to copy onto
            src = max(
                live, key=lambda s: (servers[s].peek_version(file_id), -s)
            )
            version = servers[src].peek_version(file_id)
            target = servers[target_id]
            target.apply_replica_version(file_id, version)
            blocks = sorted(servers[src].cache._by_file.get(file_id, ()))
            for index in blocks:
                target.cache.install(file_id, index, now)
            target.counters.rereplicated_files += 1
            target.counters.rereplication_blocks += len(blocks)
            rmap.add_substitute(file_id, target_id, dead_id)
            if self.integrity is not None:
                self.integrity.copy_file(now, src, target_id, file_id)
            if self.obs is not None:
                self.obs.on_rereplication(
                    now, dead_id, target_id, file_id, len(blocks)
                )


# --- Table A: availability and data loss vs. replication factor ---------------


@dataclass
class ReplicationCell:
    """Availability and replication-cost totals for one replay."""

    label: str
    replication_factor: int

    server_crashes: int = 0
    downtime_seconds: float = 0.0
    stall_seconds: float = 0.0
    rpc_retries: int = 0
    lost_dirty_blocks: int = 0
    lost_dirty_bytes: int = 0

    failover_reads: int = 0
    failover_ops: int = 0
    replica_writeback_blocks: int = 0
    replica_version_pushes: int = 0
    rereplicated_files: int = 0
    rereplication_blocks: int = 0
    heartbeats_missed: int = 0
    failure_detections: int = 0

    oracle_checks: int = 0
    oracle_violations: int = 0

    @classmethod
    def from_result(
        cls, label: str, result: "ClusterResult", oracle: Any = None
    ) -> "ReplicationCell":
        cell = cls(
            label=label,
            replication_factor=result.config.replication_factor,
            server_crashes=result.server_counters.crashes,
            downtime_seconds=result.server_counters.downtime_seconds,
            replica_version_pushes=(
                result.server_counters.replica_version_pushes
            ),
            rereplicated_files=result.server_counters.rereplicated_files,
            rereplication_blocks=result.server_counters.rereplication_blocks,
            heartbeats_missed=result.server_counters.heartbeats_missed,
            failure_detections=result.server_counters.failure_detections,
        )
        for counters in result.final_counters.values():
            cell.stall_seconds += counters.stall_seconds
            cell.rpc_retries += counters.rpc_retries
            cell.lost_dirty_blocks += counters.lost_dirty_blocks
            cell.lost_dirty_bytes += counters.lost_dirty_bytes
            cell.failover_reads += counters.failover_reads
            cell.failover_ops += counters.failover_ops
            cell.replica_writeback_blocks += counters.replica_writeback_blocks
        if oracle is not None:
            cell.oracle_checks = oracle.checks_run
            cell.oracle_violations = len(oracle.violations)
        return cell

    @property
    def lost_kbytes(self) -> float:
        return self.lost_dirty_bytes / KB


@dataclass
class ReplicationStudyResult:
    """The sweep: one cell per replication factor, same fault timeline."""

    cells: list[ReplicationCell] = field(default_factory=list)

    def cell_for(self, label: str) -> ReplicationCell:
        for cell in self.cells:
            if cell.label == label:
                return cell
        raise KeyError(f"no sweep cell labelled {label!r}")

    def render(self) -> str:
        headers = ["Measurement"] + [cell.label for cell in self.cells]

        def row(label: str, getter, precision: int = 1) -> list[str]:
            return [label] + [
                format_number(getter(cell), precision) for cell in self.cells
            ]

        rows = [
            row("Process-seconds stalled", lambda c: c.stall_seconds, 1),
            row("RPC retries (backoff)", lambda c: float(c.rpc_retries), 0),
            row("Dirty Kbytes lost to crashes", lambda c: c.lost_kbytes, 1),
            row("Failover reads", lambda c: float(c.failover_reads), 0),
            row("Ops routed around a down replica",
                lambda c: float(c.failover_ops), 0),
            row("Replica writeback fan-out (blocks)",
                lambda c: float(c.replica_writeback_blocks), 0),
            row("Replica version pushes",
                lambda c: float(c.replica_version_pushes), 0),
            row("Failure detections", lambda c: float(c.failure_detections), 0),
            row("Files re-replicated", lambda c: float(c.rereplicated_files), 0),
            row("Blocks copied by re-replication",
                lambda c: float(c.rereplication_blocks), 0),
            row("Oracle checks", lambda c: float(c.oracle_checks), 0),
            row("Oracle violations", lambda c: float(c.oracle_violations), 0),
        ]
        first = self.cells[0] if self.cells else None
        note = None
        if first is not None:
            note = (
                f"Same trace and fault timeline in every column "
                f"({first.server_crashes} server crashes, "
                f"{format_number(first.downtime_seconds, 0)} s server "
                f"downtime); only the replication factor varies.  With one "
                f"copy a crash blacks out the file's shard; extra replicas "
                f"turn those stalls into failover reads, and the heartbeat "
                f"detector re-replicates the dead server's files so the "
                f"cluster returns to full redundancy before the reboot."
            )
        return render_table(
            "Table A. Availability and data loss vs. replication factor",
            headers,
            rows,
            note=note,
        )


def compute_replication_study(
    labelled_results: list[tuple[str, "ClusterResult", Any]],
) -> ReplicationStudyResult:
    """Pool each replay of the replication sweep into one table cell."""
    return ReplicationStudyResult(
        cells=[
            ReplicationCell.from_result(label, result, oracle)
            for label, result, oracle in labelled_results
        ]
    )
