"""The paging model.

Section 5.3: paging was about 35% of all bytes transferred, split
roughly 50% backing files, 40% code pages, and 10% unmodified
initialized-data pages.  Backing files are never cached on clients;
code and data faults check the file cache (and hit often, because
Sprite keeps code pages around and re-runs of a program find its pages
still cached).

The model is event-driven: the cluster pulses it on every open.  A
pulse usually causes a small amount of paging proportional to activity;
a pulse after a long idle period is a *process-startup burst* -- a
spray of code/data faults against the program's executable plus a VM
working-set demand that may force the file cache to give pages back
(Table 8's "given to virtual memory" evictions).  Working sets decay
later, feeding the 20-minute aging pipeline that lets the cache grow
again (Table 4's size variation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import RngStream
from repro.common.units import KB, MB
from repro.fs.client import ClientKernel
from repro.sim.engine import Engine


#: File ids at or above this value are synthetic executables/binaries,
#: outside the trace generator's id space.
EXECUTABLE_FILE_ID_BASE = 50_000_000


@dataclass(frozen=True)
class _Binary:
    file_id: int
    code_bytes: int
    data_bytes: int


class PagingModel:
    """Per-client paging driver."""

    #: A client is "cold" after this much inactivity; the next pulse is
    #: treated as a process-startup burst.
    IDLE_THRESHOLD = 600.0

    def __init__(
        self,
        client: ClientKernel,
        engine: Engine,
        rng: RngStream,
        binaries: list[_Binary],
        intensity: float = 1.0,
    ) -> None:
        self.client = client
        self.engine = engine
        self.rng = rng
        self.binaries = binaries
        self.intensity = intensity
        self._last_activity = -1e9

    @staticmethod
    def build_binaries(rng: RngStream, count: int = 24) -> list[_Binary]:
        """The cluster's shared program binaries (shells, editors,
        compilers, simulators...)."""
        binaries = []
        for index in range(count):
            total = int(rng.lognormal(mu=12.3, sigma=0.8))  # median ~220 KB
            total = max(48 * KB, min(total, 4 * MB))
            binaries.append(
                _Binary(
                    file_id=EXECUTABLE_FILE_ID_BASE + index,
                    code_bytes=int(total * 0.7),
                    data_bytes=total - int(total * 0.7),
                )
            )
        return binaries

    def _pick_binary(self) -> _Binary:
        """Zipf-popular binaries: everyone runs the same shell and
        editor; the big simulators are rare."""
        rank = self.rng.zipf_rank(len(self.binaries), s=1.1)
        return self.binaries[rank]

    def on_activity(self, now: float, migrated: bool) -> None:
        """Called for every open the client performs."""
        idle_for = now - self._last_activity
        self._last_activity = now
        if idle_for > self.IDLE_THRESHOLD:
            self._startup_burst(now, migrated)
            return
        # Steady-state paging: a little traffic per pulse, tuned so
        # paging lands near the measured share of total bytes.
        pages = self.rng.poisson(1.4 * self.intensity)
        for _ in range(pages):
            self._one_fault(now)

    def _one_fault(self, now: float) -> None:
        rng = self.rng
        block = self.client.config.block_size
        kind = rng.random()
        if kind < 0.5:
            # Backing-file traffic: never client-cached.  Page-outs of
            # dirty pages slightly outnumber page-ins.
            is_write = rng.bernoulli(0.55)
            self.client.paging_backing(now, block, is_write)
        elif kind < 0.9:
            binary = self._pick_binary()
            offset = rng.randint(0, max(0, binary.code_bytes - block))
            self.client.read(
                now, binary.file_id, offset, block, paging_kind="code"
            )
        else:
            binary = self._pick_binary()
            offset = binary.code_bytes + rng.randint(
                0, max(0, binary.data_bytes - block)
            )
            self.client.read(
                now, binary.file_id, offset, block, paging_kind="data"
            )

    def _startup_burst(self, now: float, migrated: bool) -> None:
        """A process starts after idleness: fault in a chunk of its
        binary, demand a working set from VM, release it later."""
        rng = self.rng
        binary = self._pick_binary()
        block = self.client.config.block_size

        # Code faults: the program's resident set of code pages.
        code_span = min(
            binary.code_bytes, int(rng.uniform(16 * KB, 160 * KB) * self.intensity)
        )
        if code_span > 0:
            start = rng.randint(0, max(0, binary.code_bytes - code_span))
            self.client.read(
                now, binary.file_id, start, code_span, paging_kind="code"
            )
        # Initialized data: copied from the file cache at first touch.
        data_span = min(binary.data_bytes, rng.randint(4 * KB, 32 * KB))
        if data_span > 0:
            self.client.read(
                now,
                binary.file_id,
                binary.code_bytes,
                data_span,
                paging_kind="data",
            )

        # Working-set demand.  Migrated arrivals evict more (the paper's
        # "user returns to a workstation used by migrated processes").
        ws_mb = rng.uniform(0.3, 2.0) * (1.6 if migrated else 1.0)
        ws_pages = int(ws_mb * MB) // block
        shortfall = self.client.vm.demand(now, ws_pages)
        if shortfall > 0:
            surrendered = self.client.surrender_pages(now, shortfall)
            self.client.vm.absorb(surrendered)

        # The working set decays some tens of minutes later.
        release_pages = ws_pages
        self.engine.schedule_after(
            rng.uniform(6 * 60.0, 25 * 60.0),
            lambda: self.client.vm.release(self.engine.now, release_pages),
        )
