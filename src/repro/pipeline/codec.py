"""Fast artifact serialization for the cache.

Plain pickling is correct but slow for trace-shaped artifacts: a day
trace is ~100k tiny frozen dataclass records, and pickle spends several
microseconds per object rebuilding each one.  Loading a cached trace
that way costs a substantial fraction of regenerating it, which would
cap the warm-cache speedup well below what the hardware allows.

This codec stores record streams row-packed instead: per-class field
tables plus one primitive tuple per record, serialized with
:mod:`marshal` (C-speed for primitives), and rebuilt on load by
generated per-class constructors that write fields directly with
``object.__setattr__`` -- skipping ``__init__`` and ``__post_init__``,
which already ran when the artifact was first built.  Loads run with
the cyclic GC paused; the rebuilt graphs are trees.

Payloads are tagged by their first byte:

* ``T`` -- a :class:`~repro.workload.SyntheticTrace` (row-packed records,
  pickled profile/users/validation).
* ``I`` -- a per-trace ``list[Access]`` in *index form*: open/close
  records stored as indexes into the owning trace's record list, which
  the caller supplies as decode context (the records are then shared
  with the already-decoded trace instead of rebuilt).
* ``A`` -- a per-trace ``list[Access]`` standalone (row-packed open and
  close records); the fallback when no trace context is available.
* ``R`` -- a :class:`~repro.fs.cluster.ClusterResult` (row-packed
  counter snapshots, pickled config).
* ``O`` -- a :class:`~repro.obs.sampler.CounterTimeseries` (per-machine
  sample tables, pure marshal -- no pickle at all).
* ``C`` -- a columnar-only :class:`~repro.workload.SyntheticTrace`
  (``materialize=False`` scale-out generation): the
  :class:`~repro.trace.columnar.ColumnarTrace` payload marshal-packed,
  profile/users/validation pickled.  Decoding never materializes a
  record list.
* ``P`` -- anything else, plain pickle.
"""

from __future__ import annotations

import enum
import gc
import marshal
import pickle
import typing
from contextlib import contextmanager
from dataclasses import fields
from typing import Any, Callable, Sequence

from repro.analysis.episodes import Access, LogicalRun
from repro.fs.cluster import ClusterResult
from repro.fs.counters import ClientCounters, CounterSnapshot, ServerCounters
from repro.obs.sampler import CounterTimeseries
from repro.trace.records import TraceRecord
from repro.workload.generator import SyntheticTrace

_TAG_PICKLE = b"P"
_TAG_TRACE = b"T"
_TAG_ACCESSES = b"A"
_TAG_ACCESSES_INDEXED = b"I"
_TAG_REPLAY = b"R"
_TAG_OBS = b"O"
_TAG_COLUMNAR_TRACE = b"C"

#: marshal format version (stable, supported by every CPython we target).
_MARSHAL_VERSION = 2


# --------------------------------------------------------------------------
# row packing
# --------------------------------------------------------------------------


class _RowPacker:
    """Accumulates per-class field tables and packs instances to rows."""

    def __init__(self) -> None:
        self.tables: list[tuple[str, tuple[str, ...], tuple[int, ...]]] = []
        self._index: dict[type, int] = {}
        self._specs: list[tuple[tuple[str, ...], tuple[int, ...]]] = []

    def row_for(self, record: TraceRecord) -> tuple:
        cls = type(record)
        index = self._index.get(cls)
        if index is None:
            names = tuple(f.name for f in fields(cls))
            enum_cols = tuple(
                i
                for i, name in enumerate(names)
                if isinstance(getattr(record, name), enum.Enum)
            )
            index = len(self.tables)
            self._index[cls] = index
            self.tables.append((cls.kind, names, enum_cols))
            self._specs.append((names, enum_cols))
        names, enum_cols = self._specs[index]
        row = [index]
        row.extend(getattr(record, name) for name in names)
        for col in enum_cols:
            row[col + 1] = row[col + 1].value
        return tuple(row)


def _make_maker(
    cls: type, names: Sequence[str], enum_cols: Sequence[int], offset: int = 1
) -> Callable[[tuple], Any]:
    """Generate ``make(row) -> cls`` writing fields via object.__setattr__.

    ``offset`` is where the first field sits in the row (row[0] is the
    class index for record rows, absent for run rows).
    """
    enum_types: dict[int, type] = {}
    if enum_cols:
        hints = typing.get_type_hints(cls)
        enum_types = {col: hints[names[col]] for col in enum_cols}
    lines = [
        "def make(row, _new=_new, _cls=_cls, _osa=_osa"
        + "".join(f", _E{col}=_E{col}" for col in enum_cols)
        + "):",
        "    obj = _new(_cls)",
    ]
    for i, name in enumerate(names):
        value = f"row[{i + offset}]"
        if i in enum_types:
            value = f"_E{i}({value})"
        lines.append(f"    _osa(obj, {name!r}, {value})")
    lines.append("    return obj")
    namespace: dict[str, Any] = {
        "_new": object.__new__,
        "_cls": cls,
        "_osa": object.__setattr__,
        **{f"_E{col}": enum_type for col, enum_type in enum_types.items()},
    }
    exec("\n".join(lines), namespace)
    return namespace["make"]


def _record_makers(
    tables: Sequence[tuple[str, tuple[str, ...], tuple[int, ...]]],
) -> list[Callable[[tuple], TraceRecord]]:
    makers = []
    for kind, names, enum_cols in tables:
        cls = TraceRecord._registry.get(kind)
        if cls is None:
            raise ValueError(f"packed artifact references unknown kind {kind!r}")
        makers.append(_make_maker(cls, names, enum_cols))
    return makers


@contextmanager
def _gc_paused():
    """Pause cyclic GC while allocating large acyclic object graphs."""
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


# --------------------------------------------------------------------------
# traces
# --------------------------------------------------------------------------
#
# Traces pack *columnar*: per record class, a tuple of original positions
# plus one column tuple per field.  The decode loop for a class is a
# single generated function that zips the columns back together, so the
# per-record cost is just the field writes -- no per-record dispatch,
# call, or row-tuple allocation.


def _make_filler(
    cls: type, names: Sequence[str], enum_cols: Sequence[int]
) -> Callable[[Sequence[int], Sequence[tuple], list], None]:
    """Generate ``fill(positions, cols, out)`` rebuilding one class's
    records into their original slots of ``out``."""
    enum_types: dict[int, type] = {}
    if enum_cols:
        hints = typing.get_type_hints(cls)
        enum_types = {col: hints[names[col]] for col in enum_cols}
    lines = [
        "def fill(positions, cols, out, _new=_new, _cls=_cls, _osa=_osa, _zip=zip"
        + "".join(f", _E{col}=_E{col}" for col in enum_cols)
        + "):",
        "    for pos, vals in _zip(positions, _zip(*cols)):",
        "        obj = _new(_cls)",
    ]
    for i, name in enumerate(names):
        value = f"vals[{i}]"
        if i in enum_types:
            value = f"_E{i}({value})"
        lines.append(f"        _osa(obj, {name!r}, {value})")
    lines.append("        out[pos] = obj")
    namespace: dict[str, Any] = {
        "_new": object.__new__,
        "_cls": cls,
        "_osa": object.__setattr__,
        **{f"_E{col}": enum_type for col, enum_type in enum_types.items()},
    }
    exec("\n".join(lines), namespace)
    return namespace["fill"]


def _encode_trace(trace: SyntheticTrace) -> bytes:
    tables: list[tuple[str, tuple[str, ...], tuple[int, ...]]] = []
    groups: list[tuple[list[int], list[TraceRecord]]] = []
    index_of: dict[type, int] = {}
    for position, record in enumerate(trace.records):
        cls = type(record)
        index = index_of.get(cls)
        if index is None:
            names = tuple(f.name for f in fields(cls))
            enum_cols = tuple(
                i
                for i, name in enumerate(names)
                if isinstance(getattr(record, name), enum.Enum)
            )
            index = len(tables)
            index_of[cls] = index
            tables.append((cls.kind, names, enum_cols))
            groups.append(([], []))
        positions, members = groups[index]
        positions.append(position)
        members.append(record)
    packed = []
    for (kind, names, enum_cols), (positions, members) in zip(tables, groups):
        enum_set = set(enum_cols)
        cols = tuple(
            tuple(getattr(r, name).value for r in members)
            if i in enum_set
            else tuple(getattr(r, name) for r in members)
            for i, name in enumerate(names)
        )
        packed.append((tuple(positions), cols))
    body = pickle.dumps(
        {
            "records": marshal.dumps(
                (tables, len(trace.records), packed), _MARSHAL_VERSION
            ),
            "profile": trace.profile,
            "seed": trace.seed,
            "scale": trace.scale,
            "users": trace.users,
            "validation": trace.validation,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _TAG_TRACE + body


def _decode_trace(body: bytes) -> SyntheticTrace:
    state = pickle.loads(body)
    tables, count, packed = marshal.loads(state["records"])
    records: list[TraceRecord | None] = [None] * count
    with _gc_paused():
        for (kind, names, enum_cols), (positions, cols) in zip(tables, packed):
            cls = TraceRecord._registry.get(kind)
            if cls is None:
                raise ValueError(
                    f"packed artifact references unknown kind {kind!r}"
                )
            _make_filler(cls, names, enum_cols)(positions, cols, records)
    if any(record is None for record in records):
        raise ValueError("packed trace has gaps")
    return SyntheticTrace(
        profile=state["profile"],
        seed=state["seed"],
        scale=state["scale"],
        records=records,
        users=state["users"],
        validation=state["validation"],
    )


def _encode_columnar_trace(trace: SyntheticTrace) -> bytes:
    assert trace.columnar is not None
    body = pickle.dumps(
        {
            "columnar": marshal.dumps(
                trace.columnar.to_payload(), _MARSHAL_VERSION
            ),
            "profile": trace.profile,
            "seed": trace.seed,
            "scale": trace.scale,
            "users": trace.users,
            "validation": trace.validation,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _TAG_COLUMNAR_TRACE + body


def _decode_columnar_trace(body: bytes) -> SyntheticTrace:
    from repro.trace.columnar import ColumnarTrace

    state = pickle.loads(body)
    return SyntheticTrace(
        profile=state["profile"],
        seed=state["seed"],
        scale=state["scale"],
        records=[],
        users=state["users"],
        validation=state["validation"],
        columnar=ColumnarTrace.from_payload(marshal.loads(state["columnar"])),
    )


# --------------------------------------------------------------------------
# accesses
# --------------------------------------------------------------------------

_RUN_FIELDS = tuple(f.name for f in fields(LogicalRun))
_ACCESS_FIELDS = ("open_record", "close_record", "runs", "reposition_count")


def _encode_accesses(accesses: Sequence[Access]) -> bytes:
    packer = _RowPacker()
    entries = []
    for access in accesses:
        entries.append(
            (
                packer.row_for(access.open_record),
                packer.row_for(access.close_record),
                [
                    (run.is_write, run.offset, run.length, run.end_time)
                    for run in access.runs
                ],
                access.reposition_count,
            )
        )
    blob = marshal.dumps((packer.tables, entries), _MARSHAL_VERSION)
    return _TAG_ACCESSES + pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)


def _encode_accesses_indexed(
    accesses: Sequence[Access], records: Sequence[TraceRecord]
) -> bytes | None:
    """Pack accesses as indexes into ``records``, or None if they don't
    all resolve (then the standalone form is used instead).

    Records are matched by equality, not identity: when the stage ran in
    a worker process the Access objects came back through pickle and no
    longer alias the parent's trace records.
    """
    index_of: dict[TraceRecord, int] = {
        record: index for index, record in enumerate(records)
    }
    entries = []
    for access in accesses:
        open_index = index_of.get(access.open_record)
        close_index = index_of.get(access.close_record)
        if open_index is None or close_index is None:
            return None
        entries.append(
            (
                open_index,
                close_index,
                [
                    (run.is_write, run.offset, run.length, run.end_time)
                    for run in access.runs
                ],
                access.reposition_count,
            )
        )
    return _TAG_ACCESSES_INDEXED + marshal.dumps(entries, _MARSHAL_VERSION)


def _decode_accesses_indexed(
    body: bytes, records: Sequence[TraceRecord]
) -> list[Access]:
    entries = marshal.loads(body)
    make_run = _make_maker(LogicalRun, _RUN_FIELDS, (), offset=0)
    _new, _osa = object.__new__, object.__setattr__
    out: list[Access] = []
    with _gc_paused():
        for open_index, close_index, run_rows, repositions in entries:
            access = _new(Access)
            _osa(access, "open_record", records[open_index])
            _osa(access, "close_record", records[close_index])
            _osa(access, "runs", [make_run(row) for row in run_rows])
            _osa(access, "reposition_count", repositions)
            out.append(access)
    return out


def _decode_accesses(body: bytes) -> list[Access]:
    tables, entries = marshal.loads(pickle.loads(body))
    makers = _record_makers(tables)
    make_run = _make_maker(LogicalRun, _RUN_FIELDS, (), offset=0)
    _new, _osa = object.__new__, object.__setattr__
    out: list[Access] = []
    with _gc_paused():
        for open_row, close_row, run_rows, repositions in entries:
            access = _new(Access)
            _osa(access, "open_record", makers[open_row[0]](open_row))
            _osa(access, "close_record", makers[close_row[0]](close_row))
            _osa(access, "runs", [make_run(row) for row in run_rows])
            _osa(access, "reposition_count", repositions)
            out.append(access)
    return out


# --------------------------------------------------------------------------
# cluster replays
# --------------------------------------------------------------------------

# Counter rows are the counters' own declaration-order value tuples
# (``as_row``), which is exactly the field order the dataclass-era
# codec marshalled -- the wire layout is unchanged.


def _encode_replay(result: ClusterResult) -> bytes:
    counters = marshal.dumps(
        (
            result.server_counters.as_row(),
            {cid: c.as_row() for cid, c in result.final_counters.items()},
            {
                cid: [
                    (s.time, s.client_id, s.counters.as_row()) for s in snaps
                ]
                for cid, snaps in result.snapshots.items()
            },
            tuple(c.as_row() for c in result.per_server_counters),
        ),
        _MARSHAL_VERSION,
    )
    body = pickle.dumps(
        {
            "config": result.config,
            "duration": result.duration,
            "records_replayed": result.records_replayed,
            "counters": counters,
            "server_ids": result.server_ids,
            "construction_seconds": result.construction_seconds,
            "tick_events": result.tick_events,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _TAG_REPLAY + body


def _decode_replay(body: bytes) -> ClusterResult:
    state = pickle.loads(body)
    unpacked = marshal.loads(state["counters"])
    if len(unpacked) == 4:
        server_row, final_rows, snapshot_rows, per_server_rows = unpacked
    else:
        # Pre-sharding payload: one server, its aggregate IS the shard.
        server_row, final_rows, snapshot_rows = unpacked
        per_server_rows = (server_row,)
    make_client = ClientCounters.from_row
    make_server = ServerCounters.from_row
    _new, _osa = object.__new__, object.__setattr__
    with _gc_paused():
        snapshots: dict[int, list[CounterSnapshot]] = {}
        for cid, rows in snapshot_rows.items():
            per_client = snapshots[cid] = []
            for time, client_id, counter_row in rows:
                snap = _new(CounterSnapshot)
                _osa(snap, "time", time)
                _osa(snap, "client_id", client_id)
                _osa(snap, "counters", make_client(counter_row))
                per_client.append(snap)
        final_counters = {
            cid: make_client(row) for cid, row in final_rows.items()
        }
    return ClusterResult(
        config=state["config"],
        duration=state["duration"],
        snapshots=snapshots,
        final_counters=final_counters,
        server_counters=make_server(server_row),
        records_replayed=state["records_replayed"],
        per_server_counters=tuple(
            make_server(row) for row in per_server_rows
        ),
        # Pre-owned-shard payloads carry none of these; the defaults
        # (positional server ids, zero gauges) reproduce their meaning.
        server_ids=tuple(state.get("server_ids", ())),
        construction_seconds=state.get("construction_seconds", 0.0),
        tick_events=state.get("tick_events", 0),
    )


# --------------------------------------------------------------------------
# counter timeseries (repro.obs)
# --------------------------------------------------------------------------


def _encode_timeseries(timeseries: CounterTimeseries) -> bytes:
    # The payload is primitives all the way down (field-name tuples,
    # time lists, value-row tuples), so marshal carries it whole.
    return _TAG_OBS + marshal.dumps(timeseries.to_payload(), _MARSHAL_VERSION)


def _decode_timeseries(body: bytes) -> CounterTimeseries:
    return CounterTimeseries.from_payload(marshal.loads(body))


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------


def encode_artifact(artifact: Any, context: dict[str, Any] | None = None) -> bytes:
    """Serialize an artifact to a tagged payload.

    ``context`` may carry the owning trace's record list (``"records"``),
    letting access lists pack as record *indexes* rather than copies.
    """
    if isinstance(artifact, SyntheticTrace):
        if not artifact.records and artifact.columnar is not None:
            return _encode_columnar_trace(artifact)
        return _encode_trace(artifact)
    if isinstance(artifact, ClusterResult):
        return _encode_replay(artifact)
    if isinstance(artifact, CounterTimeseries):
        return _encode_timeseries(artifact)
    if (
        isinstance(artifact, list)
        and artifact
        and all(isinstance(item, Access) for item in artifact)
    ):
        if context is not None and context.get("records") is not None:
            payload = _encode_accesses_indexed(artifact, context["records"])
            if payload is not None:
                return payload
        return _encode_accesses(artifact)
    return _TAG_PICKLE + pickle.dumps(
        artifact, protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_artifact(payload: bytes, context: dict[str, Any] | None = None) -> Any:
    """Inverse of :func:`encode_artifact`.

    Index-form access payloads need the same ``context`` they were
    encoded with; without it they fail to decode (a cache miss, never an
    error, at the cache layer).
    """
    tag, body = payload[:1], payload[1:]
    if tag == _TAG_TRACE:
        return _decode_trace(body)
    if tag == _TAG_COLUMNAR_TRACE:
        return _decode_columnar_trace(body)
    if tag == _TAG_REPLAY:
        return _decode_replay(body)
    if tag == _TAG_ACCESSES_INDEXED:
        if context is None or context.get("records") is None:
            raise ValueError("index-form access payload needs trace records")
        return _decode_accesses_indexed(body, context["records"])
    if tag == _TAG_ACCESSES:
        return _decode_accesses(body)
    if tag == _TAG_OBS:
        return _decode_timeseries(body)
    if tag == _TAG_PICKLE:
        with _gc_paused():
            return pickle.loads(body)
    raise ValueError(f"unknown artifact tag {tag!r}")
