"""Scale-out replay: partitioned trace generation and sharded replay.

The classic pipeline generates one trace and replays it in one process;
at ``scale >= 10`` (hundreds of clients, tens of millions of records)
that is hours of wall clock and many gigabytes of records.  This module
makes big scales practical by making the *population* partitionable:

* the user population is built as ``groups`` independent blocks, each
  generated at ``scale / groups`` from its own seed -- generation
  parallelizes perfectly and no process ever holds more than one
  group's trace;
* each group's ids are strided into a disjoint residue class
  (``file_id % groups`` names the owning group) and its clients are
  shifted to a contiguous block, so the merged population looks exactly
  like one big cluster whose users happen not to share files across
  groups;
* the replay cluster is built with ``ClusterConfig.client_groups``, so
  every client routes into its group's private server slice and the
  per-close fsync decision is a pure hash -- groups share *nothing*;
* replay then shards by group: each shard task replays only its groups'
  records against an *owned-only* cluster -- only the owned groups'
  machines are constructed; roster stubs refuse foreign traffic loudly
  -- and :func:`repro.fs.cluster.merge_cluster_results` selects every
  machine's state from the shard that owns it.  The merged result is
  byte-identical to replaying the whole merged trace in one process
  (``tests/test_partitioned_replay.py`` pins this), including under
  per-group faults, replication, and scrubbing.

The determinism argument, in one line per layer: group traces are pure
functions of ``(profile, group seed, group scale)``; the merged record
order is a strict total order (time, group rank, within-trace order),
so a shard's dispatch order is the unpartitioned order restricted to
its groups; grouped clusters give a group's operations no way to
observe another group (disjoint servers, disjoint ids, no shared RNG);
therefore each machine's end state is a pure function of its own
group's records, which every shard computes identically.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import ConfigError, SimulationError
from repro.fs.cluster import Cluster, ClusterResult, merge_cluster_results
from repro.fs.config import ClusterConfig
from repro.fs.faults import FaultConfig
from repro.fs.paging import EXECUTABLE_FILE_ID_BASE
from repro.pipeline.runner import PipelineReport, run_stage
from repro.trace.columnar import ColumnarTrace
from repro.workload.generator import SyntheticTrace, generate_trace
from repro.workload.profiles import TraceProfile

#: Seed stride between groups.  Any constant works (each group is an
#: independent population); a prime keeps group seeds from colliding
#: with the registry's ``seed + 101 * offset`` replay-seed scheme.
GROUP_SEED_STRIDE = 7919


@dataclass(frozen=True)
class ScaleOutPlan:
    """Everything that addresses one partitioned generate+replay run.

    The plan is the cache key: group traces and shard replays are pure
    functions of these fields, so two runs of the same plan -- serial
    or parallel, partitioned or not -- produce identical artifacts.
    """

    profile: TraceProfile
    seed: int = 1991
    scale: float = 1.0
    #: Independent population blocks; also ``ClusterConfig.client_groups``.
    groups: int = 4
    #: Server slice width per group (the merged cluster has
    #: ``groups * servers_per_group`` servers).
    servers_per_group: int = 1
    replay_seed: int = 7
    #: Per-group replication factor (must fit ``servers_per_group``),
    #: scrub period, and fault rates -- all confined to each group's
    #: own server slice and RNG fork, so they compose with sharding.
    replication_factor: int = 1
    scrub_interval: float = 0.0
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ConfigError(f"need at least one group, got {self.groups}")
        if self.servers_per_group < 1:
            raise ConfigError(
                f"need at least one server per group, got "
                f"{self.servers_per_group}"
            )
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.groups > self.client_count:
            raise ConfigError(
                f"groups={self.groups} exceeds the {self.client_count}-"
                f"client population at scale {self.scale:g} (every group "
                f"needs at least one client)"
            )

    @property
    def group_scale(self) -> float:
        return self.scale / self.groups

    @property
    def client_count(self) -> int:
        """The registry's ``max(4, round(40 * scale))`` client scaling,
        applied to the *total* scale -- a scale-100 plan fields exactly
        the clients a scale-100 unpartitioned experiment would."""
        return max(4, round(40 * self.scale))

    @property
    def group_client_counts(self) -> tuple[int, ...]:
        """Per-group client counts: the registry total split as evenly
        as possible, the remainder going to the first groups."""
        base, extra = divmod(self.client_count, self.groups)
        return tuple(
            base + 1 if group < extra else base
            for group in range(self.groups)
        )

    @property
    def group_client_offsets(self) -> tuple[int, ...]:
        """Prefix sums of :attr:`group_client_counts` (length
        ``groups + 1``): group ``g`` owns client ids
        ``[offsets[g], offsets[g + 1])``."""
        offsets = [0]
        for count in self.group_client_counts:
            offsets.append(offsets[-1] + count)
        return tuple(offsets)

    @property
    def num_servers(self) -> int:
        return self.groups * self.servers_per_group

    def group_seed(self, group: int) -> int:
        return self.seed + GROUP_SEED_STRIDE * group

    def cluster_config(self) -> ClusterConfig:
        sizes = self.group_client_counts
        return ClusterConfig(
            client_count=self.client_count,
            num_servers=self.num_servers,
            client_groups=self.groups,
            # Only an unequal split needs spelling out; an equal one is
            # the historical divisible layout.
            client_group_sizes=(sizes if len(set(sizes)) > 1 else ()),
            replication_factor=self.replication_factor,
            scrub_interval=self.scrub_interval,
            faults=self.faults,
        )

    def key_fields(self) -> dict[str, Any]:
        return {
            "kind": "scale-out-plan",
            "profile": self.profile,
            "seed": self.seed,
            "scale": self.scale,
            "groups": self.groups,
            "servers_per_group": self.servers_per_group,
            "replay_seed": self.replay_seed,
            "replication_factor": self.replication_factor,
            "scrub_interval": self.scrub_interval,
            "faults": self.faults,
        }


def shard_partition(groups: int, shards: int) -> list[list[int]]:
    """Contiguous near-equal split of group indices across shards."""
    if not 1 <= shards <= groups:
        raise ConfigError(
            f"shards must be in [1, groups={groups}], got {shards}"
        )
    base, extra = divmod(groups, shards)
    out: list[list[int]] = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


def check_id_space(columnar: ColumnarTrace, group: int) -> None:
    """Refuse remapped traces whose strided file ids reach the paging
    binaries' reserved range (they share the servers' block space)."""
    largest = columnar.max_file_id()
    if largest >= EXECUTABLE_FILE_ID_BASE:
        raise ConfigError(
            f"group {group}: remapped file id {largest} collides with "
            f"the executable id space (>= {EXECUTABLE_FILE_ID_BASE}); "
            f"lower scale or groups"
        )


# --------------------------------------------------------------------------
# pipeline tasks
# --------------------------------------------------------------------------


@dataclass
class GroupTraceTask:
    """Generate one group's trace (columnar, never materialized) and
    relabel it into the merged cluster's id space."""

    profile: TraceProfile
    seed: int
    scale: float
    client_count: int
    group: int
    groups: int
    #: First merged-cluster client id of this group's block.  With the
    #: registry-derived unequal split the blocks are no longer uniform,
    #: so the base is planned (``ScaleOutPlan.group_client_offsets``),
    #: not derived from ``group * client_count``.
    client_base: int = 0

    def key_fields(self) -> dict[str, Any]:
        return {
            "kind": "group-trace",
            "profile": self.profile,
            "seed": self.seed,
            "scale": self.scale,
            "client_count": self.client_count,
            "group": self.group,
            "groups": self.groups,
            "client_base": self.client_base,
        }

    def run(self) -> SyntheticTrace:
        trace = generate_trace(
            self.profile,
            seed=self.seed,
            scale=self.scale,
            client_count=self.client_count,
            materialize=False,
        )
        assert trace.columnar is not None
        remapped = trace.columnar.remap_group(
            self.group, self.groups, client_base=self.client_base
        )
        check_id_space(remapped, self.group)
        trace.columnar = remapped
        return trace

    def codec_context(self) -> dict[str, Any] | None:
        return None


@dataclass
class ShardReplayTask:
    """Replay one shard's groups against an owned-only cluster.

    The cluster constructs only the shard's groups' clients and servers
    (:class:`~repro.fs.sharding.MachineRoster` stubs refuse foreign
    traffic loudly), so per-shard memory and construction time scale
    with the owned slice, not the whole cluster -- and the result
    already carries exactly the owned machines' counters, no slimming
    pass needed.  The replay streams records chunk-at-a-time
    (:meth:`ColumnarTrace.iter_records`), so peak memory is bounded by
    the columns plus one chunk, never a whole day's record list.
    """

    plan_fields: dict[str, Any]
    group_traces: list[tuple[int, ColumnarTrace]]
    config: ClusterConfig
    duration: float
    seed: int
    chunk_size: int = ColumnarTrace.DEFAULT_CHUNK

    def key_fields(self) -> dict[str, Any]:
        return {
            "kind": "shard-replay",
            "plan": self.plan_fields,
            "groups": tuple(group for group, _ in self.group_traces),
            "config": self.config,
            "duration": self.duration,
            "seed": self.seed,
        }

    def run(self) -> ClusterResult:
        merged = ColumnarTrace.merge(
            [trace for _, trace in self.group_traces],
            ranks=[group for group, _ in self.group_traces],
        )
        cluster = Cluster(
            self.config,
            seed=self.seed,
            owned_groups=[group for group, _ in self.group_traces],
        )
        return cluster.replay(
            merged.iter_records(self.chunk_size), self.duration
        )

    def codec_context(self) -> dict[str, Any] | None:
        return None


# --------------------------------------------------------------------------
# the scale-out stages
# --------------------------------------------------------------------------


def build_group_traces(
    plan: ScaleOutPlan,
    *,
    workers: int | None = 1,
    cache=None,
    report: PipelineReport | None = None,
) -> list[SyntheticTrace]:
    """Generate (or load) every group's remapped columnar trace."""
    counts = plan.group_client_counts
    offsets = plan.group_client_offsets
    tasks = [
        GroupTraceTask(
            profile=plan.profile,
            seed=plan.group_seed(group),
            scale=plan.group_scale,
            client_count=counts[group],
            group=group,
            groups=plan.groups,
            client_base=offsets[group],
        )
        for group in range(plan.groups)
    ]
    return run_stage(
        "group-traces", tasks, workers=workers, cache=cache, report=report
    )


def merged_trace(traces: Sequence[SyntheticTrace]) -> ColumnarTrace:
    """All groups merged into the one big sorted trace (rank = group)."""
    return ColumnarTrace.merge([trace.columnar for trace in traces])


def run_partitioned_replay(
    plan: ScaleOutPlan,
    traces: Sequence[SyntheticTrace] | None = None,
    *,
    shards: int | None = None,
    workers: int | None = 1,
    cache=None,
    report: PipelineReport | None = None,
) -> ClusterResult:
    """The scale-out replay: shard by group, replay, merge.

    ``shards`` defaults to one per group (maximum parallelism); any
    value in ``[1, groups]`` yields the identical merged result.
    """
    if traces is None:
        traces = build_group_traces(
            plan, workers=workers, cache=cache, report=report
        )
    if shards is None:
        shards = plan.groups
    owned = shard_partition(plan.groups, shards)
    config = plan.cluster_config()
    duration = traces[0].duration
    plan_fields = plan.key_fields()
    tasks = [
        ShardReplayTask(
            plan_fields=plan_fields,
            group_traces=[(group, traces[group].columnar) for group in groups],
            config=config,
            duration=duration,
            seed=plan.replay_seed,
        )
        for groups in owned
    ]
    results = run_stage(
        "shard-replays", tasks, workers=workers, cache=cache, report=report
    )
    return merge_cluster_results(results, owned)


def run_unpartitioned_replay(
    plan: ScaleOutPlan,
    traces: Sequence[SyntheticTrace] | None = None,
    *,
    oracle=None,
    obs=None,
) -> ClusterResult:
    """Replay the whole merged trace in one cluster -- the reference
    the partitioned replay is pinned against (and the path the
    identity tests and the ``scale_out`` experiment run)."""
    if traces is None:
        traces = build_group_traces(plan)
    merged = merged_trace(traces)
    cluster = Cluster(
        plan.cluster_config(), seed=plan.replay_seed, oracle=oracle, obs=obs
    )
    return cluster.replay(merged.iter_records(), traces[0].duration)


# --------------------------------------------------------------------------
# cross-shard merge of the observability layers
# --------------------------------------------------------------------------


def merge_obs_timeseries(
    series: Sequence, owned_groups: Sequence[Sequence[int]], plan: ScaleOutPlan
):
    """Merge per-shard obs timeseries by machine ownership.

    An owned-only shard's sampler saw just its own groups' machines, so
    the merged series walks the union of every shard's machine names
    (sorted -- the order an unpartitioned observed replay registers
    them in) and takes each machine from the shard owning its group.
    A machine no shard accounts for is a partitioning bug and raises a
    contextual error rather than a bare ``KeyError``.
    """
    from repro.obs.sampler import CounterTimeseries

    owner: dict[int, Any] = {}
    for ts, groups in zip(series, owned_groups):
        for group in groups:
            owner[group] = ts
    offsets = plan.group_client_offsets
    servers_per_group = plan.servers_per_group
    merged = CounterTimeseries(series[0].sample_interval)
    names = sorted(set().union(*(ts.machines.keys() for ts in series)))
    for name in names:
        if name.startswith("client-"):
            group = bisect_right(offsets, int(name.split("-")[1])) - 1
        elif name.startswith("server-"):
            group = int(name.split("-")[1]) // servers_per_group
        else:  # a lone "server" only exists in ungrouped clusters
            group = 0
        ts = owner.get(group)
        if ts is None or name not in ts.machines:
            raise SimulationError(
                f"machine {name!r} belongs to group {group}, which no "
                f"shard in the merge owns (owned groups: "
                f"{sorted(owner)}; shards sampled {len(names)} machines)"
            )
        merged.machines[name] = ts.machines[name]
    return merged


def merge_oracle_versions(
    oracles: Sequence, owned_groups: Sequence[Sequence[int]], groups: int
) -> dict[int, int]:
    """Merge per-shard oracle version maps by file-id residue class.

    A shard's oracle observes its own groups' file ids (``file_id %
    groups`` names the owner), so those merge as a disjoint union.
    Negative (sentinel) ids are shared: every shard whose clients did
    directory passthrough may have observed them, and determinism
    demands the shards *agree* -- a disagreement means the partitioning
    leaked state between groups, so it raises a seed-carrying error
    instead of silently keeping the last writer.
    """
    merged: dict[int, int] = {}
    shared_sources: dict[int, Any] = {}
    for oracle, owned in zip(oracles, owned_groups):
        owned_set = set(owned)
        for file_id, version in oracle.version_map().items():
            if file_id < 0:
                prior = merged.get(file_id)
                if prior is not None and prior != version:
                    raise SimulationError(
                        f"shards disagree on shared sentinel file "
                        f"{file_id}: one shard (owning groups "
                        f"{sorted(shared_sources[file_id])}) observed "
                        f"version {prior}, another (owning groups "
                        f"{sorted(owned_set)}) observed {version} "
                        f"(oracle seed {oracle.seed})"
                    )
                merged[file_id] = version
                shared_sources.setdefault(file_id, owned_set)
            elif file_id % groups in owned_set:
                merged[file_id] = version
    return merged
