"""Stage execution: cache probe, process-pool fan-out, timing report.

A stage is a list of independent tasks.  :func:`run_stage` first probes
the artifact cache for each task, then runs the misses -- serially for
``workers<=1``, otherwise on a :class:`~concurrent.futures.ProcessPoolExecutor`
-- and finally stores the fresh artifacts back.  Results always come
back in task order, so a parallel stage is indistinguishable from a
serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from time import perf_counter
from typing import Any, Sequence

from repro.fs.cluster import ClusterResult
from repro.fs.config import ClusterConfig
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.tasks import AccessTask, ReplayTask, TraceTask, run_task
from repro.workload.generator import SyntheticTrace
from repro.workload.profiles import STANDARD_PROFILES, TraceProfile


def resolve_workers(workers: int | None) -> int:
    """Normalize the ``workers=`` knob: None/1 serial, 0 one per core."""
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


@dataclass
class StageTiming:
    """One stage's entry in the pipeline report.

    ``workers`` is what the caller *asked for* (after
    :func:`resolve_workers`); ``workers_effective`` is what actually
    ran -- 0 for an all-hit stage (nothing executed), 1 when the misses
    ran serially (including the one-miss fallback of a pool request),
    and the pool size otherwise.  The old single field conflated the
    two: a ``workers=8`` stage with one miss reported ``1`` as if the
    caller had asked for serial.
    """

    stage: str
    seconds: float
    workers: int
    tasks: int
    cache_hits: int
    cache_misses: int
    workers_effective: int = 0


@dataclass
class PipelineReport:
    """Per-stage wall time and cache traffic for one context's builds."""

    stages: list[StageTiming] = field(default_factory=list)

    def record(self, timing: StageTiming) -> None:
        self.stages.append(timing)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages)

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stages)

    @property
    def cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.stages)

    def as_dict(self) -> dict[str, Any]:
        return {
            "stages": [asdict(s) for s in self.stages],
            "totals": {
                "seconds": self.total_seconds,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
            },
        }


def run_stage(
    stage: str,
    tasks: Sequence,
    *,
    workers: int | None = 1,
    cache: ArtifactCache | None = None,
    report: PipelineReport | None = None,
) -> list:
    """Run one stage of independent tasks; results in task order."""
    start = perf_counter()
    results: list[Any] = [None] * len(tasks)
    keys: list[str | None] = [None] * len(tasks)
    misses: list[int] = []
    hits = 0
    for index, task in enumerate(tasks):
        if cache is not None:
            keys[index] = cache.key_for(task.key_fields())
            artifact = cache.load(keys[index], task.codec_context())
            if artifact is not None:
                results[index] = artifact
                hits += 1
                continue
        misses.append(index)

    requested = resolve_workers(workers)
    pool_size = min(requested, len(misses))
    if misses:
        if pool_size <= 1:
            pool_size = 1
            for index in misses:
                results[index] = tasks[index].run()
        else:
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                futures = {
                    index: pool.submit(run_task, tasks[index])
                    for index in misses
                }
                for index in misses:
                    results[index] = futures[index].result()
        if cache is not None:
            for index in misses:
                cache.store(keys[index], results[index], tasks[index].codec_context())

    if report is not None:
        report.record(
            StageTiming(
                stage=stage,
                seconds=perf_counter() - start,
                workers=requested,
                tasks=len(tasks),
                cache_hits=hits,
                cache_misses=len(misses),
                workers_effective=pool_size if misses else 0,
            )
        )
    return results


# --------------------------------------------------------------------------
# the three stages
# --------------------------------------------------------------------------


def trace_tasks(
    scale: float,
    seed: int,
    client_count: int,
    profiles: Sequence[TraceProfile] = STANDARD_PROFILES,
) -> list[TraceTask]:
    """The study's trace set as task specs (seed + index per trace,
    matching :func:`repro.workload.generate_standard_traces`)."""
    return [
        TraceTask(
            profile=profile,
            seed=seed + index,
            scale=scale,
            client_count=client_count,
        )
        for index, profile in enumerate(profiles)
    ]


def build_traces(
    scale: float,
    seed: int,
    client_count: int,
    profiles: Sequence[TraceProfile] = STANDARD_PROFILES,
    *,
    workers: int | None = 1,
    cache: ArtifactCache | None = None,
    report: PipelineReport | None = None,
) -> list[SyntheticTrace]:
    """Generate (or load) the eight synthetic day traces."""
    tasks = trace_tasks(scale, seed, client_count, profiles)
    return run_stage("traces", tasks, workers=workers, cache=cache, report=report)


def build_accesses(
    traces: Sequence[SyntheticTrace],
    tasks: Sequence[TraceTask],
    *,
    workers: int | None = 1,
    cache: ArtifactCache | None = None,
    report: PipelineReport | None = None,
) -> list:
    """Assemble per-trace access lists in workers, pooled in trace order."""
    access_tasks = [
        AccessTask(trace_fields=task.key_fields(), records=trace.records)
        for task, trace in zip(tasks, traces)
    ]
    per_trace = run_stage(
        "accesses", access_tasks, workers=workers, cache=cache, report=report
    )
    pooled: list = []
    for accesses in per_trace:
        pooled.extend(accesses)
    return pooled


def build_cluster_results(
    traces: Sequence[SyntheticTrace],
    tasks: Sequence[TraceTask],
    indexes: Sequence[int],
    config: ClusterConfig,
    seed: int,
    *,
    workers: int | None = 1,
    cache: ArtifactCache | None = None,
    report: PipelineReport | None = None,
) -> list[ClusterResult]:
    """Replay the selected traces through the cluster, one per worker.

    Replay seeds follow the registry's historical scheme
    (``seed + 101 * offset``) so results match the serial code exactly.
    """
    replay_tasks = [
        ReplayTask(
            trace_fields=tasks[index].key_fields(),
            records=traces[index].records,
            duration=traces[index].duration,
            config=config,
            seed=seed + 101 * offset,
        )
        for offset, index in enumerate(indexes)
    ]
    return run_stage(
        "replays", replay_tasks, workers=workers, cache=cache, report=report
    )
