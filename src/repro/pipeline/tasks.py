"""Picklable task specs for the pipeline stages.

A task carries everything a worker process needs to produce one
artifact, plus the fields that address that artifact in the cache.
Seeds are baked into the spec (one per trace, one per replay), so the
same task produces the same artifact no matter which process runs it,
in what order, or alongside what else -- parallel output is identical
to serial output by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.fs.cluster import ClusterResult, run_cluster_on_trace
from repro.fs.config import ClusterConfig
from repro.trace.records import TraceRecord
from repro.workload.generator import SyntheticTrace, generate_trace
from repro.workload.profiles import TraceProfile


@dataclass
class TraceTask:
    """Generate one synthetic day trace."""

    profile: TraceProfile
    seed: int
    scale: float
    client_count: int

    def key_fields(self) -> dict[str, Any]:
        # The full profile goes into the key, so recalibrating a knob
        # invalidates exactly the traces it affects.
        return {
            "kind": "trace",
            "profile": self.profile,
            "seed": self.seed,
            "scale": self.scale,
            "client_count": self.client_count,
        }

    def run(self) -> SyntheticTrace:
        return generate_trace(
            self.profile,
            seed=self.seed,
            scale=self.scale,
            client_count=self.client_count,
        )

    def codec_context(self) -> dict[str, Any] | None:
        return None


@dataclass
class AccessTask:
    """Assemble one trace's completed accesses (open..close episodes).

    ``trace_fields`` is the owning :class:`TraceTask`'s key fields; the
    records ride along for execution but stay out of the cache key (the
    trace is a pure function of its fields).
    """

    trace_fields: dict[str, Any]
    records: Sequence[TraceRecord]

    def key_fields(self) -> dict[str, Any]:
        return {"kind": "accesses", "trace": self.trace_fields}

    def run(self) -> list:
        from repro.analysis.episodes import assemble_accesses

        return list(assemble_accesses(self.records))

    def codec_context(self) -> dict[str, Any] | None:
        # Lets the codec store accesses as indexes into the trace's
        # records, shared on decode with the already-loaded trace.
        return {"records": self.records}


@dataclass
class ReplayTask:
    """Replay one trace through a simulated cluster."""

    trace_fields: dict[str, Any]
    records: Sequence[TraceRecord]
    duration: float
    config: ClusterConfig
    seed: int

    def key_fields(self) -> dict[str, Any]:
        return {
            "kind": "replay",
            "trace": self.trace_fields,
            "duration": self.duration,
            "config": self.config,
            "seed": self.seed,
        }

    def run(self) -> ClusterResult:
        return run_cluster_on_trace(
            self.records, self.duration, self.config, seed=self.seed
        )

    def codec_context(self) -> dict[str, Any] | None:
        return None


def run_task(task) -> Any:
    """Top-level entry point for worker processes (must be picklable)."""
    return task.run()
