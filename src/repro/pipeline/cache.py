"""Content-addressed on-disk cache for pipeline artifacts.

A cache entry is addressed by the SHA-256 of a canonical JSON encoding
of everything that determines the artifact: the task kind, the full
generation parameters (profile knobs, seeds, scale, client count,
cluster configuration), the schema version, and the library version.
Change any input and the key changes; nothing is ever invalidated in
place.

Entries are serialized by :mod:`repro.pipeline.codec` (row-packed for
trace-shaped artifacts, plain pickle otherwise) and prefixed with a
magic string and a payload checksum.  Writes go to a temporary file in the destination directory
followed by an atomic :func:`os.replace`, so a crashed or concurrent
writer can never leave a half-written entry under a valid name.  Reads
treat *any* problem -- missing file, bad magic, checksum mismatch,
unpicklable payload -- as a cache miss, never an error; corrupt entries
are deleted so the next store replaces them.

The cache root is ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import __version__
from repro.pipeline.codec import decode_artifact, encode_artifact

#: Bump when the serialized artifact layout changes (new fields on trace
#: records, counters, etc.) so stale entries miss instead of loading.
SCHEMA_VERSION = 5  # 5: integrity counters appended to counter rows

_MAGIC = b"repro-artifact\n"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def _jsonable(value: Any) -> Any:
    """Canonicalize a key field value for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot build a cache key from {type(value).__name__}")


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced in the pipeline timing report."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class ArtifactCache:
    """A content-addressed pickle store with atomic writes."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache(root={str(self.root)!r}, stats={self.stats})"

    # --- keys ----------------------------------------------------------------

    def key_for(self, fields: dict[str, Any]) -> str:
        """Hash the key fields (plus schema/library version) to a hex key."""
        payload = {
            "schema": SCHEMA_VERSION,
            "library": __version__,
            **fields,
        }
        blob = json.dumps(
            _jsonable(payload), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def path_for(self, key: str) -> Path:
        """Where an entry with this key lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.pkl"

    # --- I/O -----------------------------------------------------------------

    def load(self, key: str, context: dict[str, Any] | None = None) -> Any | None:
        """Return the cached artifact, or None on a miss.

        Corrupt entries (truncated, bad checksum, unpicklable) count as
        misses and are unlinked so they cannot shadow a future store.
        ``context`` is the codec decode context (see
        :func:`repro.pipeline.codec.decode_artifact`); an entry whose
        payload needs a context the caller didn't supply reads as
        corrupt.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            digest, _, payload = blob[len(_MAGIC):].partition(b"\n")
            if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
                raise ValueError("checksum mismatch")
            artifact = decode_artifact(payload, context)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return artifact

    def store(
        self, key: str, artifact: Any, context: dict[str, Any] | None = None
    ) -> bool:
        """Write an artifact under ``key``; False (not an error) on failure."""
        path = self.path_for(key)
        tmp_name: str | None = None
        try:
            payload = encode_artifact(artifact, context)
            blob = (
                _MAGIC
                + hashlib.sha256(payload).hexdigest().encode("ascii")
                + b"\n"
                + payload
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
            tmp_name = None
        except (OSError, pickle.PicklingError, TypeError, ValueError):
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False
        self.stats.stores += 1
        return True


def resolve_cache(
    cache: ArtifactCache | bool | str | os.PathLike | None,
) -> ArtifactCache | None:
    """Normalize the user-facing ``cache=`` knob.

    ``True`` means the default directory, ``False``/``None`` disables
    caching, a path string uses that directory, and an
    :class:`ArtifactCache` passes through (so callers can share stats).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ArtifactCache()
    if isinstance(cache, ArtifactCache):
        return cache
    return ArtifactCache(cache)
