"""The parallel trace/replay pipeline and its artifact cache.

Every entry point (the experiments registry, the CLI, the bench suite,
the examples) needs the same expensive inputs: the eight synthetic day
traces, the pooled access list, and the cluster replays.  The traces
and the per-trace replays are mutually independent, so this package

* fans the work out across worker processes (:func:`run_stage` over
  picklable task specs with deterministic per-trace seeds, so parallel
  output is identical to serial output), and
* memoizes the results in a content-addressed on-disk cache
  (:class:`ArtifactCache`) keyed by every parameter that influences the
  artifact, so repeat runs skip regeneration entirely.
"""

from repro.pipeline.cache import (
    SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    default_cache_dir,
    resolve_cache,
)
from repro.pipeline.runner import (
    PipelineReport,
    StageTiming,
    build_accesses,
    build_cluster_results,
    build_traces,
    resolve_workers,
    run_stage,
    trace_tasks,
)
from repro.pipeline.tasks import AccessTask, ReplayTask, TraceTask

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactCache",
    "CacheStats",
    "default_cache_dir",
    "resolve_cache",
    "PipelineReport",
    "StageTiming",
    "build_accesses",
    "build_cluster_results",
    "build_traces",
    "resolve_workers",
    "run_stage",
    "trace_tasks",
    "AccessTask",
    "ReplayTask",
    "TraceTask",
]
