"""Reproduction of Baker, Hartman, Kupfer, Shirriff & Ousterhout,
"Measurements of a Distributed File System" (SOSP 1991).

The library contains everything needed to regenerate the paper's tables
and figures on synthetic Sprite-style workloads:

* :mod:`repro.workload` -- the synthetic trace generator (eight
  calibrated 24-hour traces).
* :mod:`repro.trace` -- the trace record format and tooling.
* :mod:`repro.analysis` -- the "BSD study revisited" analyses
  (Section 4: Tables 1-3, Figures 1-4).
* :mod:`repro.fs` -- the Sprite cluster simulator (client caches, VM,
  delayed writes, consistency, paging, migration).
* :mod:`repro.caching` -- cache-counter post-processing (Tables 4-9).
* :mod:`repro.consistency` -- consistency-scheme simulators
  (Tables 10-12).
* :mod:`repro.experiments` -- one runnable entry point per table/figure.

Quickstart::

    from repro.workload import generate_standard_traces
    from repro.experiments import run_experiment

    traces = generate_standard_traces(scale=0.05, seed=1991)
    result = run_experiment("table2", traces=traces)
    print(result.rendered)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
