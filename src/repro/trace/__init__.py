"""Sprite-style file system traces.

The paper's data came from kernel-call-level traces gathered on the four
Sprite file servers: opens, closes, repositions, deletes, truncates, and
-- for files undergoing write-sharing -- individual read/write requests.
This package defines that record vocabulary, a streaming JSON-lines
serialization, a multi-server merge, the filters the paper applied
(dropping tracer self-traffic and nightly backups), and a validator for
the per-file event grammar.
"""

from repro.trace.records import (
    CloseRecord,
    CreateRecord,
    DeleteRecord,
    DirectoryReadRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    TruncateRecord,
    WriteRunRecord,
    AccessMode,
)
from repro.trace.reader import TraceReader, read_trace
from repro.trace.writer import TraceWriter, write_trace
from repro.trace.merge import merge_streams
from repro.trace.filters import drop_users, drop_self_traffic, time_window
from repro.trace.validate import validate_stream
from repro.trace.tools import TraceSummary, split_by_duration, summarize

__all__ = [
    "AccessMode",
    "TraceRecord",
    "OpenRecord",
    "CloseRecord",
    "ReadRunRecord",
    "WriteRunRecord",
    "RepositionRecord",
    "CreateRecord",
    "DeleteRecord",
    "TruncateRecord",
    "SharedReadRecord",
    "SharedWriteRecord",
    "DirectoryReadRecord",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "merge_streams",
    "drop_users",
    "drop_self_traffic",
    "time_window",
    "validate_stream",
    "TraceSummary",
    "summarize",
    "split_by_duration",
]
