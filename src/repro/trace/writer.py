"""Streaming trace writer (JSON lines, optionally gzip-compressed).

One line per record keeps the format greppable and allows traces far
larger than memory to be produced and consumed as streams, which matters
for day-long synthetic traces with hundreds of thousands of events.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import IO, Iterable

from repro.common.errors import TraceError
from repro.trace.records import TraceRecord


class TraceWriter:
    """Writes trace records to a JSON-lines file.

    Use as a context manager::

        with TraceWriter(path) as writer:
            writer.write(record)
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._handle: IO[str] | None = None
        self.records_written = 0

    def __enter__(self) -> "TraceWriter":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def open(self) -> None:
        if self._handle is not None:
            raise TraceError(f"trace writer for {self.path} is already open")
        if self.path.endswith(".gz"):
            self._handle = gzip.open(self.path, "wt", encoding="utf-8")
        else:
            self._handle = open(self.path, "w", encoding="utf-8")

    def write(self, record: TraceRecord) -> None:
        """Append one record."""
        if self._handle is None:
            raise TraceError("trace writer is not open")
        json.dump(record.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> int:
        """Append many records; returns how many were written."""
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def write_trace(path: str | os.PathLike[str], records: Iterable[TraceRecord]) -> int:
    """Write an entire record stream to ``path``; returns the count."""
    with TraceWriter(path) as writer:
        return writer.write_all(records)
