"""Merging per-server trace streams.

Each Sprite server logged its own trace files; the paper's tooling merged
them into a single time-ordered stream.  :func:`merge_streams` is a
stable k-way merge: records are ordered by timestamp, with ties broken by
stream index and then arrival order, so merging is deterministic.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.common.errors import TraceOrderError
from repro.trace.records import TraceRecord


def merge_streams(
    streams: Iterable[Iterable[TraceRecord]],
    check_sorted: bool = True,
) -> Iterator[TraceRecord]:
    """Merge timestamp-sorted record streams into one sorted stream.

    Each input stream must itself be sorted by time; with
    ``check_sorted`` (the default) a violation raises
    :class:`TraceOrderError` naming the offending stream.
    """
    iterators = [iter(stream) for stream in streams]
    heap: list[tuple[float, int, int, TraceRecord]] = []
    last_time = [float("-inf")] * len(iterators)
    sequence = 0

    def push(stream_index: int) -> None:
        nonlocal sequence
        try:
            record = next(iterators[stream_index])
        except StopIteration:
            return
        if check_sorted and record.time < last_time[stream_index]:
            raise TraceOrderError(
                f"stream {stream_index} went backwards: "
                f"{record.time} after {last_time[stream_index]}"
            )
        last_time[stream_index] = record.time
        heapq.heappush(heap, (record.time, stream_index, sequence, record))
        sequence += 1

    for index in range(len(iterators)):
        push(index)

    while heap:
        _, stream_index, _, record = heapq.heappop(heap)
        yield record
        push(stream_index)


def merge_sorted(records: Iterable[TraceRecord]) -> list[TraceRecord]:
    """Sort an arbitrary record collection by time (stable).

    The workload generator emits per-entity record lists that are easier
    to produce unsorted; this is the final ordering pass.
    """
    return sorted(records, key=lambda record: record.time)
