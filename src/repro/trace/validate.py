"""Trace grammar validation.

A well-formed trace obeys a small grammar per open episode:

* every ``close``/``read_run``/``write_run``/``reposition`` names an
  ``open_id`` that was opened earlier and not yet closed;
* runs and repositions on an episode carry the same ``file_id`` as its
  open;
* timestamps never decrease across the stream;
* at end of stream no episode is left open (unless ``allow_open_at_end``,
  since a 24-hour window can cut an episode in half -- the paper's
  48-hour captures were split the same way).

The validator is used by generator tests (the generator must emit legal
traces) and by the analyses' defensive mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import TraceError, TraceOrderError
from repro.trace.records import (
    CloseRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    TraceRecord,
    WriteRunRecord,
)


@dataclass
class ValidationReport:
    """Summary counts from a validation pass."""

    records: int = 0
    opens: int = 0
    closes: int = 0
    unclosed_open_ids: list[int] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        return not self.unclosed_open_ids


def validate_stream(
    records: Iterable[TraceRecord],
    allow_open_at_end: bool = True,
) -> ValidationReport:
    """Validate a time-ordered record stream; raises on violations."""
    report = ValidationReport()
    open_files: dict[int, int] = {}  # open_id -> file_id
    last_time = float("-inf")

    for record in records:
        report.records += 1
        if record.time < last_time:
            raise TraceOrderError(
                f"record #{report.records} ({record.kind}) at {record.time} "
                f"is earlier than previous record at {last_time}"
            )
        last_time = record.time

        if isinstance(record, OpenRecord):
            if record.open_id in open_files:
                raise TraceError(
                    f"open_id {record.open_id} opened twice without a close"
                )
            open_files[record.open_id] = record.file_id
            report.opens += 1
        elif isinstance(record, CloseRecord):
            expected = open_files.pop(record.open_id, None)
            if expected is None:
                raise TraceError(
                    f"close of unknown open_id {record.open_id} at {record.time}"
                )
            if expected != record.file_id:
                raise TraceError(
                    f"close of open_id {record.open_id} names file "
                    f"{record.file_id} but it was opened on file {expected}"
                )
            report.closes += 1
        elif isinstance(record, (ReadRunRecord, WriteRunRecord, RepositionRecord)):
            expected = open_files.get(record.open_id)
            if expected is None:
                raise TraceError(
                    f"{record.kind} on unopened open_id {record.open_id} "
                    f"at {record.time}"
                )
            if expected != record.file_id:
                raise TraceError(
                    f"{record.kind} on open_id {record.open_id} names file "
                    f"{record.file_id} but the episode is on file {expected}"
                )
            if isinstance(record, (ReadRunRecord, WriteRunRecord)):
                if record.length < 0 or record.offset < 0:
                    raise TraceError(
                        f"negative offset/length in {record.kind} at {record.time}"
                    )

    report.unclosed_open_ids = sorted(open_files)
    if report.unclosed_open_ids and not allow_open_at_end:
        raise TraceError(
            f"{len(report.unclosed_open_ids)} episodes never closed: "
            f"{report.unclosed_open_ids[:10]}"
        )
    return report
