"""Columnar trace storage: the scale-out representation of a trace.

A day of trace activity at ``scale >= 10`` is millions of records; a
Python object per record costs ~150 bytes plus allocator churn, and a
whole-day list is the single biggest RSS line item in a replay.  This
module stores the same stream as *columns* -- one flat array per field
per record kind, plus a global time-sorted order index -- so that:

* generation appends plain value rows (no dataclass construction),
* sorting is an ``argsort`` over one float array instead of an object
  sort,
* replay materializes :class:`~repro.trace.records.TraceRecord`
  objects chunk-at-a-time (transient, bounded memory) or never, and
* shard math (remapping a group's ids into a disjoint global id space,
  merging group streams into one time-ordered stream) is vectorized
  array arithmetic.

Byte-identity contract: materializing a columnar trace yields records
whose types and field values are exactly what the classic list path
produced -- columns round-trip ``float``/``int``/``bool`` losslessly
(float64/int64 carry every value the generator emits) and the sort is
stable with emission order as the tie-break, matching the classic
``list.sort(key=time)`` on an emission-ordered list.

NumPy is used when available (it is in the supported toolchain); every
operation has a pure-Python fallback so the module imports and works
without it, just slower and fatter.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Iterator, Sequence

from repro.common.errors import TraceError
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    CreateRecord,
    DeleteRecord,
    DirectoryReadRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    TruncateRecord,
    WriteRunRecord,
)

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

#: Pinned kind order: the codec-visible layout of a columnar trace.
#: Append only -- positions are part of the payload format.
RECORD_CLASSES: tuple[type[TraceRecord], ...] = (
    OpenRecord,
    CloseRecord,
    ReadRunRecord,
    WriteRunRecord,
    RepositionRecord,
    CreateRecord,
    DeleteRecord,
    TruncateRecord,
    SharedReadRecord,
    SharedWriteRecord,
    DirectoryReadRecord,
)

_KIND_INDEX: dict[type[TraceRecord], int] = {
    cls: index for index, cls in enumerate(RECORD_CLASSES)
}

_MODES: tuple[AccessMode, ...] = tuple(AccessMode)
_MODE_CODES: dict[AccessMode, int] = {mode: i for i, mode in enumerate(_MODES)}

#: dtype code per annotated field type ('f8' float64, 'i8' int64,
#: 'b1' bool, 'u1' enum code).
_DTYPE_BY_ANNOTATION = {
    "float": "f8",
    "int": "i8",
    "bool": "b1",
    "AccessMode": "u1",
}


def _field_specs(cls: type[TraceRecord]) -> tuple[tuple[str, str], ...]:
    specs = []
    for item in dataclass_fields(cls):
        annotation = item.type if isinstance(item.type, str) else item.type.__name__
        dtype = _DTYPE_BY_ANNOTATION.get(annotation)
        if dtype is None:  # pragma: no cover - future field types
            raise TraceError(
                f"{cls.__name__}.{item.name}: no columnar dtype for "
                f"field type {annotation!r}"
            )
        specs.append((item.name, dtype))
    return tuple(specs)


_SPECS: tuple[tuple[tuple[str, str], ...], ...] = tuple(
    _field_specs(cls) for cls in RECORD_CLASSES
)

_new = object.__new__
_set = object.__setattr__


def _make_filler(kind_index: int):
    """exec-codegen a per-kind object builder.

    ``fill(out, positions, cols)`` materializes ``len(positions)``
    records from parallel Python-list columns and stores them at the
    given positions of ``out`` -- the same ``object.__new__`` +
    ``object.__setattr__`` trick the artifact codec uses (no
    ``__init__``, no default processing, one C call per field).
    """
    cls = RECORD_CLASSES[kind_index]
    specs = _SPECS[kind_index]
    unpack = ", ".join(f"c{i}" for i in range(len(specs)))
    lines = [
        "def fill(out, positions, cols):",
        f"    {unpack}{',' if len(specs) == 1 else ''} = cols",
        "    j = 0",
        "    for pos in positions:",
        "        r = _new(_cls)",
    ]
    for i, (name, dtype) in enumerate(specs):
        if dtype == "u1":
            lines.append(f"        _set(r, {name!r}, _MODES[c{i}[j]])")
        else:
            lines.append(f"        _set(r, {name!r}, c{i}[j])")
    lines.append("        out[pos] = r")
    lines.append("        j += 1")
    namespace = {"_new": _new, "_set": _set, "_cls": cls, "_MODES": _MODES}
    exec("\n".join(lines), namespace)
    return namespace["fill"]


_FILLERS = tuple(_make_filler(i) for i in range(len(RECORD_CLASSES)))


# --- small array-shim helpers (numpy when present, lists otherwise) -------


def _as_column(values: list[Any], dtype: str):
    if _np is None:
        return values
    return _np.asarray(values, dtype=dtype)


def _column_list(column) -> list:
    """A full Python-value copy of a column."""
    if _np is None:
        return list(column)
    return column.tolist()


def _gather_list(column, indexes) -> list:
    """Python values of ``column`` at ``indexes`` (in index order)."""
    if _np is None:
        return [column[i] for i in indexes]
    return column[indexes].tolist()


def _column_len(column) -> int:
    return len(column)


class _Table:
    """Sealed per-kind columns (parallel arrays, one per field)."""

    __slots__ = ("kind_index", "columns", "count")

    def __init__(self, kind_index: int, columns: list, count: int) -> None:
        self.kind_index = kind_index
        self.columns = columns  # aligned with _SPECS[kind_index]
        self.count = count


class ColumnarTraceBuilder:
    """Row sink the emitter appends into; ``seal`` produces the trace.

    Rows are plain value tuples in dataclass field order; a global
    sequence number per row preserves emission order for the stable
    sort's tie-break.
    """

    __slots__ = ("_rows", "_seqs", "_count")

    def __init__(self) -> None:
        self._rows: list[list[tuple]] = [[] for _ in RECORD_CLASSES]
        self._seqs: list[list[int]] = [[] for _ in RECORD_CLASSES]
        self._count = 0

    def append(self, cls: type[TraceRecord], row: tuple) -> None:
        index = _KIND_INDEX[cls]
        self._rows[index].append(row)
        self._seqs[index].append(self._count)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def emission_order_records(self) -> list[TraceRecord]:
        """All rows as records, in emission order (the classic
        ``emitter.records`` view; unfiltered, unsorted)."""
        out: list[TraceRecord] = [None] * self._count  # type: ignore[list-item]
        for index, cls in enumerate(RECORD_CLASSES):
            for seq, row in zip(self._seqs[index], self._rows[index]):
                out[seq] = cls(*row)
        return out

    def seal(self, duration: float | None = None) -> "ColumnarTrace":
        """Freeze rows into columns, drop records outside
        ``[0, duration)`` when given, and time-sort (stable, emission
        order as tie-break)."""
        tables: list[_Table | None] = []
        times_parts: list = []
        seqs_parts: list = []
        kind_parts: list = []
        row_parts: list = []
        for index in range(len(RECORD_CLASSES)):
            rows = self._rows[index]
            if not rows:
                tables.append(None)
                continue
            specs = _SPECS[index]
            transposed = list(zip(*rows))
            columns = []
            for (name, dtype), raw in zip(specs, transposed):
                if dtype == "u1":
                    raw = [_MODE_CODES[value] for value in raw]
                columns.append(_as_column(list(raw), dtype))
            count = len(rows)
            tables.append(_Table(index, columns, count))
            times_parts.append(columns[0])  # field 0 is always `time`
            seqs_parts.append(_as_column(self._seqs[index], "i8"))
            if _np is not None:
                kind_parts.append(_np.full(count, index, dtype="u1"))
                row_parts.append(_np.arange(count, dtype="i8"))
            else:
                kind_parts.append([index] * count)
                row_parts.append(list(range(count)))

        if not times_parts:
            return ColumnarTrace(tables, _as_column([], "u1"), _as_column([], "i8"), _as_column([], "f8"))

        if _np is not None:
            times = _np.concatenate(times_parts)
            seqs = _np.concatenate(seqs_parts)
            kinds = _np.concatenate(kind_parts)
            rows = _np.concatenate(row_parts)
            if duration is not None:
                mask = (times >= 0.0) & (times < duration)
                times, seqs, kinds, rows = (
                    times[mask], seqs[mask], kinds[mask], rows[mask],
                )
            order = _np.lexsort((seqs, times))
            return ColumnarTrace(tables, kinds[order], rows[order], times[order])

        times_l = [t for part in times_parts for t in part]
        seqs_l = [s for part in seqs_parts for s in part]
        kinds_l = [k for part in kind_parts for k in part]
        rows_l = [r for part in row_parts for r in part]
        selected = range(len(times_l))
        if duration is not None:
            selected = [
                i for i in selected if 0.0 <= times_l[i] < duration
            ]
        order = sorted(selected, key=lambda i: (times_l[i], seqs_l[i]))
        return ColumnarTrace(
            tables,
            [kinds_l[i] for i in order],
            [rows_l[i] for i in order],
            [times_l[i] for i in order],
        )


class ColumnarTrace:
    """A sealed, time-sorted trace in columnar form.

    Iteration materializes records chunk-at-a-time; the live set is one
    chunk, never the whole day.
    """

    #: Default materialization chunk (records); ~64k records of mixed
    #: kinds is a few MB of transient objects.
    DEFAULT_CHUNK = 65536

    __slots__ = ("tables", "kind_idx", "row_idx", "times")

    def __init__(self, tables, kind_idx, row_idx, times) -> None:
        self.tables = tables      # list aligned with RECORD_CLASSES (None = empty)
        self.kind_idx = kind_idx  # u1 per sorted position
        self.row_idx = row_idx    # i8 row within the kind's table
        self.times = times        # f8 per sorted position (sorted ascending)

    def __len__(self) -> int:
        return _column_len(self.kind_idx)

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.iter_records()

    # --- materialization ---------------------------------------------------

    def _materialize_slice(self, lo: int, hi: int) -> list[TraceRecord]:
        kind_slice = self.kind_idx[lo:hi]
        row_slice = self.row_idx[lo:hi]
        out: list[TraceRecord] = [None] * (hi - lo)  # type: ignore[list-item]
        if _np is not None:
            for index in _np.unique(kind_slice).tolist():
                positions = _np.nonzero(kind_slice == index)[0]
                rows = row_slice[positions]
                table = self.tables[index]
                cols = [column[rows].tolist() for column in table.columns]
                _FILLERS[index](out, positions.tolist(), cols)
        else:
            by_kind: dict[int, list[int]] = {}
            for j, index in enumerate(kind_slice):
                by_kind.setdefault(index, []).append(j)
            for index, positions in by_kind.items():
                rows = [row_slice[j] for j in positions]
                table = self.tables[index]
                cols = [_gather_list(column, rows) for column in table.columns]
                _FILLERS[index](out, positions, cols)
        return out

    def iter_chunks(
        self, chunk_size: int = DEFAULT_CHUNK
    ) -> Iterator[list[TraceRecord]]:
        """Materialize the stream as bounded record lists, in time order."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        total = len(self)
        for lo in range(0, total, chunk_size):
            yield self._materialize_slice(lo, min(lo + chunk_size, total))

    def iter_records(
        self, chunk_size: int = DEFAULT_CHUNK
    ) -> Iterator[TraceRecord]:
        """The record stream, materialized chunk-at-a-time."""
        for chunk in self.iter_chunks(chunk_size):
            yield from chunk

    def materialize(self) -> list[TraceRecord]:
        """The whole trace as a record list (the classic representation)."""
        if len(self) == 0:
            return []
        return self._materialize_slice(0, len(self))

    # --- shard math --------------------------------------------------------

    def max_file_id(self) -> int:
        """Largest file id referenced by any record (-1 when none) --
        what the scale-out id-space guard checks against the paging
        binaries' reserved range."""
        largest = -1
        for table in self.tables:
            if table is None:
                continue
            specs = _SPECS[table.kind_index]
            for (name, _), column in zip(specs, table.columns):
                if name == "file_id" and _column_len(column):
                    if _np is not None:
                        largest = max(largest, int(column.max()))
                    else:
                        largest = max(largest, max(column))
        return largest

    def remap_group(
        self, group: int, groups: int, client_base: int
    ) -> "ColumnarTrace":
        """Relabel a group-local trace into its global id space.

        File, open, and user ids are strided (``local * groups +
        group``) so every group owns a disjoint residue class --
        ``file_id % groups`` recovers the owning group.  Negative file
        ids (directory-read sentinels) pass through; client ids shift
        by ``client_base``.  Times and order are untouched, so the
        result is still sorted.
        """
        if not 0 <= group < groups:
            raise ValueError(f"group {group} out of range for {groups} groups")
        tables: list[_Table | None] = []
        for table in self.tables:
            if table is None:
                tables.append(None)
                continue
            specs = _SPECS[table.kind_index]
            columns = []
            for (name, _), column in zip(specs, table.columns):
                if name in ("open_id", "user_id"):
                    if _np is not None:
                        column = column * groups + group
                    else:
                        column = [v * groups + group for v in column]
                elif name == "file_id":
                    if _np is not None:
                        column = _np.where(
                            column >= 0, column * groups + group, column
                        )
                    else:
                        column = [
                            v * groups + group if v >= 0 else v for v in column
                        ]
                elif name == "client_id":
                    if _np is not None:
                        column = column + client_base
                    else:
                        column = [v + client_base for v in column]
                columns.append(column)
            tables.append(_Table(table.kind_index, columns, table.count))
        return ColumnarTrace(tables, self.kind_idx, self.row_idx, self.times)

    @staticmethod
    def merge(
        traces: Sequence["ColumnarTrace"],
        ranks: Sequence[int] | None = None,
    ) -> "ColumnarTrace":
        """Merge sorted traces into one sorted trace.

        Ties are broken by ``rank`` (the trace's global group index,
        defaulting to its position) and then within-trace order, so the
        merged order is a strict total order: merging any *subset* of
        the traces yields exactly the full merge restricted to that
        subset.  That restriction property is what makes partitioned
        replay's dispatch order provably consistent with the
        unpartitioned replay's.
        """
        if ranks is None:
            ranks = list(range(len(traces)))
        if len(ranks) != len(traces):
            raise ValueError("ranks and traces must align")
        if len(traces) == 1:
            return traces[0]
        if not traces:
            return ColumnarTraceBuilder().seal()

        # Concatenate per-kind tables, tracking each trace's row offset.
        merged_tables: list[_Table | None] = []
        offsets = [[0] * len(RECORD_CLASSES) for _ in traces]
        for index in range(len(RECORD_CLASSES)):
            parts = []
            running = 0
            for t, trace in enumerate(traces):
                offsets[t][index] = running
                table = trace.tables[index]
                if table is not None:
                    parts.append(table)
                    running += table.count
            if not parts:
                merged_tables.append(None)
                continue
            if len(parts) == 1:
                merged_tables.append(parts[0])
            else:
                columns = []
                for c in range(len(parts[0].columns)):
                    if _np is not None:
                        columns.append(
                            _np.concatenate([p.columns[c] for p in parts])
                        )
                    else:
                        joined: list = []
                        for p in parts:
                            joined.extend(p.columns[c])
                        columns.append(joined)
                merged_tables.append(_Table(index, columns, running))

        if _np is not None:
            times = _np.concatenate([t.times for t in traces])
            rank_arr = _np.concatenate(
                [
                    _np.full(len(t), rank, dtype="i8")
                    for t, rank in zip(traces, ranks)
                ]
            )
            pos_arr = _np.concatenate(
                [_np.arange(len(t), dtype="i8") for t in traces]
            )
            kind_all = _np.concatenate([t.kind_idx for t in traces])
            row_parts = []
            for t_index, trace in enumerate(traces):
                shift = _np.asarray(offsets[t_index], dtype="i8")
                row_parts.append(trace.row_idx + shift[trace.kind_idx])
            row_all = _np.concatenate(row_parts)
            order = _np.lexsort((pos_arr, rank_arr, times))
            return ColumnarTrace(
                merged_tables, kind_all[order], row_all[order], times[order]
            )

        entries = []
        for t_index, (trace, rank) in enumerate(zip(traces, ranks)):
            for pos in range(len(trace)):
                kind = trace.kind_idx[pos]
                entries.append(
                    (
                        trace.times[pos],
                        rank,
                        pos,
                        kind,
                        trace.row_idx[pos] + offsets[t_index][kind],
                    )
                )
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return ColumnarTrace(
            merged_tables,
            [e[3] for e in entries],
            [e[4] for e in entries],
            [e[0] for e in entries],
        )

    # --- wire format -------------------------------------------------------

    def to_payload(self) -> dict:
        """A marshal-compatible payload (the codec's ``C`` artifact body)."""
        kinds = []
        for table in self.tables:
            if table is None:
                kinds.append(None)
                continue
            specs = _SPECS[table.kind_index]
            columns = []
            for (name, dtype), column in zip(specs, table.columns):
                if _np is not None:
                    columns.append((dtype, _np.ascontiguousarray(column).tobytes()))
                else:
                    columns.append((dtype, list(column)))
            kinds.append((table.count, columns))
        if _np is not None:
            order = (
                _np.ascontiguousarray(self.kind_idx).tobytes(),
                _np.ascontiguousarray(self.row_idx).tobytes(),
                _np.ascontiguousarray(self.times).tobytes(),
            )
        else:
            order = (list(self.kind_idx), list(self.row_idx), list(self.times))
        return {"version": 1, "kinds": kinds, "order": order}

    @staticmethod
    def _column_from_payload(dtype: str, data):
        if isinstance(data, bytes):
            if _np is None:  # pragma: no cover - numpy removed between runs
                raise TraceError(
                    "columnar payload was written with numpy; numpy is "
                    "required to read it"
                )
            return _np.frombuffer(data, dtype=dtype)
        return _as_column(list(data), dtype)

    @classmethod
    def from_payload(cls, payload: dict) -> "ColumnarTrace":
        if payload.get("version") != 1:
            raise TraceError(
                f"unknown columnar payload version {payload.get('version')!r}"
            )
        tables: list[_Table | None] = []
        for index, entry in enumerate(payload["kinds"]):
            if entry is None:
                tables.append(None)
                continue
            count, columns_payload = entry
            columns = [
                cls._column_from_payload(dtype, data)
                for dtype, data in columns_payload
            ]
            tables.append(_Table(index, columns, count))
        kind_data, row_data, time_data = payload["order"]
        return ColumnarTrace(
            tables,
            cls._column_from_payload("u1", kind_data),
            cls._column_from_payload("i8", row_data),
            cls._column_from_payload("f8", time_data),
        )

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "ColumnarTrace":
        """Columnar view of an existing (time-sorted) record list."""
        builder = ColumnarTraceBuilder()
        for record in records:
            row = tuple(
                getattr(record, name)
                for name, _ in _SPECS[_KIND_INDEX[type(record)]]
            )
            builder.append(type(record), row)
        return builder.seal()
