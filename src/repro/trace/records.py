"""Trace record vocabulary.

The original traces recorded file activity at the level of kernel calls:
they logged opens, closes, and repositions (with the file offset before
and after), which is enough to deduce the exact range of bytes each
sequential run transferred.  We store each deduced run explicitly as a
``ReadRunRecord``/``WriteRunRecord`` emitted at the run's closing
boundary -- the same information the paper's analysis recovered, one
step earlier.

Deletions carry the write times of the file's oldest and newest bytes,
because that is exactly how the paper estimates lifetimes (Section 4.3):
per-file lifetime is the average of the oldest and newest byte ages;
per-byte lifetime assumes the file was written sequentially.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Type

from repro.common.errors import TraceError


class AccessMode(enum.Enum):
    """The mode a file was opened in (the *intent*; Table 3 classifies by
    what actually happened, which the analysis derives from the runs)."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """Base class: every record has a timestamp (seconds from trace start)
    and the server that logged it."""

    time: float
    server_id: int

    #: Registry of kind-string -> record class, populated by subclasses.
    _registry: ClassVar[dict[str, Type["TraceRecord"]]] = {}
    kind: ClassVar[str] = "base"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        # No zero-arg super() here: ``slots=True`` rebuilds TraceRecord,
        # which would leave this method's ``__class__`` cell pointing at
        # the discarded original.
        # ``@dataclass(slots=True)`` rebuilds the class, so every record
        # class registers twice under the same kind; the final (slotted)
        # class wins.  A *different* class reusing a kind is still an
        # error.
        existing = TraceRecord._registry.get(cls.kind)
        if existing is not None and existing.__qualname__ != cls.__qualname__:
            raise TraceError(f"duplicate trace record kind {cls.kind!r}")
        TraceRecord._registry[cls.kind] = cls

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a flat JSON-compatible dict."""
        data: dict[str, Any] = {"kind": self.kind}
        for item in fields(self):
            value = getattr(self, item.name)
            if isinstance(value, enum.Enum):
                value = value.value
            data[item.name] = value
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TraceRecord":
        """Deserialize a dict produced by :meth:`to_dict`."""
        try:
            kind = data["kind"]
        except KeyError:
            raise TraceError(f"trace record missing 'kind': {data!r}") from None
        cls = TraceRecord._registry.get(kind)
        if cls is None:
            raise TraceError(f"unknown trace record kind {kind!r}")
        kwargs = {k: v for k, v in data.items() if k != "kind"}
        if "mode" in kwargs and isinstance(kwargs["mode"], str):
            kwargs["mode"] = AccessMode(kwargs["mode"])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise TraceError(f"bad fields for {kind!r} record: {exc}") from exc


@dataclass(frozen=True, slots=True)
class OpenRecord(TraceRecord):
    """A file open.  ``open_id`` ties together the whole open..close
    episode; ``migrated`` marks activity performed by a migrated process
    (the basis of Table 2's migration column)."""

    kind: ClassVar[str] = "open"

    open_id: int = 0
    file_id: int = 0
    user_id: int = 0
    process_id: int = 0
    client_id: int = 0
    mode: AccessMode = AccessMode.READ
    size_at_open: int = 0
    migrated: bool = False


@dataclass(frozen=True, slots=True)
class CloseRecord(TraceRecord):
    """A file close, with the totals the server knew at close time."""

    kind: ClassVar[str] = "close"

    open_id: int = 0
    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    size_at_close: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    migrated: bool = False


@dataclass(frozen=True, slots=True)
class ReadRunRecord(TraceRecord):
    """One sequential read run within an open episode.

    A run is bounded at the start by the open or a reposition and at the
    end by the close or another reposition (Section 4.2's definition).
    ``time`` is the run's closing boundary.
    """

    kind: ClassVar[str] = "read_run"

    open_id: int = 0
    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    offset: int = 0
    length: int = 0
    migrated: bool = False


@dataclass(frozen=True, slots=True)
class WriteRunRecord(TraceRecord):
    """One sequential write run within an open episode."""

    kind: ClassVar[str] = "write_run"

    open_id: int = 0
    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    offset: int = 0
    length: int = 0
    migrated: bool = False


@dataclass(frozen=True, slots=True)
class RepositionRecord(TraceRecord):
    """An ``lseek`` that moved the file offset (random access marker)."""

    kind: ClassVar[str] = "reposition"

    open_id: int = 0
    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    offset_before: int = 0
    offset_after: int = 0
    migrated: bool = False


@dataclass(frozen=True, slots=True)
class CreateRecord(TraceRecord):
    """A file creation (new name in the hierarchy)."""

    kind: ClassVar[str] = "create"

    file_id: int = 0
    user_id: int = 0
    client_id: int = 0


@dataclass(frozen=True, slots=True)
class DeleteRecord(TraceRecord):
    """A file or directory removal.

    ``oldest_byte_time``/``newest_byte_time`` are the write times of the
    file's oldest and newest bytes, from which Section 4.3 estimates
    lifetimes.  They are negative (sentinel ``-1.0``) for files never
    written during the trace.
    """

    kind: ClassVar[str] = "delete"

    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    size: int = 0
    oldest_byte_time: float = -1.0
    newest_byte_time: float = -1.0


@dataclass(frozen=True, slots=True)
class TruncateRecord(TraceRecord):
    """A truncate-to-zero; the lifetime analysis treats it as a delete."""

    kind: ClassVar[str] = "truncate"

    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    size: int = 0
    oldest_byte_time: float = -1.0
    newest_byte_time: float = -1.0


@dataclass(frozen=True, slots=True)
class SharedReadRecord(TraceRecord):
    """A single read request on a file undergoing concurrent
    write-sharing.  While a file is uncacheable every request passes
    through to the server, so these were easy for the authors to log;
    they feed the consistency simulations of Sections 5.5 and 5.6."""

    kind: ClassVar[str] = "shared_read"

    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    offset: int = 0
    length: int = 0
    migrated: bool = False


@dataclass(frozen=True, slots=True)
class SharedWriteRecord(TraceRecord):
    """A single write request on a file undergoing write-sharing."""

    kind: ClassVar[str] = "shared_write"

    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    offset: int = 0
    length: int = 0
    migrated: bool = False


@dataclass(frozen=True, slots=True)
class DirectoryReadRecord(TraceRecord):
    """A user-level directory read (e.g. listing a directory); Sprite does
    not cache directories on clients, so these always reach the server."""

    kind: ClassVar[str] = "dir_read"

    file_id: int = 0
    user_id: int = 0
    client_id: int = 0
    length: int = 0


#: Records whose byte counts Table 1 reports as "read from files".
#: Shared-request records are the per-request server log for write-shared
#: files; their bytes are already covered by the coalesced run records,
#: so counting both would double-count.
READ_TRANSFER_KINDS = ("read_run",)

#: Records whose byte counts Table 1 reports as "written to files".
WRITE_TRANSFER_KINDS = ("write_run",)
