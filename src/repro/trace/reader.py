"""Streaming trace reader."""

from __future__ import annotations

import gzip
import json
import os
from typing import IO, Iterator

from repro.common.errors import TraceError
from repro.trace.records import TraceRecord


class TraceReader:
    """Iterates records from a JSON-lines trace file.

    Use as a context manager or with :func:`read_trace`.  The reader is
    a single-pass iterator; open a new reader to rescan.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._handle: IO[str] | None = None
        self.records_read = 0

    def __enter__(self) -> "TraceReader":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def open(self) -> None:
        if self._handle is not None:
            raise TraceError(f"trace reader for {self.path} is already open")
        if self.path.endswith(".gz"):
            self._handle = gzip.open(self.path, "rt", encoding="utf-8")
        else:
            self._handle = open(self.path, "r", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __iter__(self) -> Iterator[TraceRecord]:
        if self._handle is None:
            raise TraceError("trace reader is not open")
        for line_number, line in enumerate(self._handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{self.path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            self.records_read += 1
            yield TraceRecord.from_dict(data)


def read_trace(path: str | os.PathLike[str]) -> Iterator[TraceRecord]:
    """Yield every record in the trace file at ``path``."""
    with TraceReader(path) as reader:
        yield from reader
