"""Streaming trace reader."""

from __future__ import annotations

import gzip
import json
import os
from typing import IO, Iterator

from repro.common.errors import TraceError
from repro.trace.records import TraceRecord


class TraceReader:
    """Iterates records from a JSON-lines trace file.

    Use as a context manager or with :func:`read_trace`.  The reader is
    a single-pass iterator; open a new reader to rescan.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._handle: IO[str] | None = None
        self.records_read = 0

    def __enter__(self) -> "TraceReader":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def open(self) -> None:
        if self._handle is not None:
            raise TraceError(f"trace reader for {self.path} is already open")
        if self.path.endswith(".gz"):
            self._handle = gzip.open(self.path, "rt", encoding="utf-8")
        else:
            self._handle = open(self.path, "r", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __iter__(self) -> Iterator[TraceRecord]:
        if self._handle is None:
            raise TraceError("trace reader is not open")
        for line_number, line in enumerate(self._handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{self.path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            self.records_read += 1
            yield TraceRecord.from_dict(data)


class RecordStream:
    """Iterator over a trace file that keeps its progress observable.

    The old ``read_trace`` built its :class:`TraceReader` inside a
    generator, so ``records_read`` was unreachable from outside --
    streaming replays could not report progress.  This wrapper *is* the
    iterator (drop-in for the generator) while exposing the live count;
    the file closes at exhaustion, on :meth:`close`, or when used as a
    context manager.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._reader = TraceReader(path)
        self._reader.open()
        self._iterator: Iterator[TraceRecord] = iter(self._reader)

    @property
    def path(self) -> str:
        return self._reader.path

    @property
    def records_read(self) -> int:
        """Records yielded so far (the full count once exhausted)."""
        return self._reader.records_read

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "RecordStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> "RecordStream":
        return self

    def __next__(self) -> TraceRecord:
        try:
            return next(self._iterator)
        except StopIteration:
            self.close()
            raise


def read_trace(path: str | os.PathLike[str]) -> RecordStream:
    """Every record in the trace file at ``path``, as a
    :class:`RecordStream` whose ``records_read`` is live."""
    return RecordStream(path)
