"""Stream filters applied before analysis.

The paper's merge step "removed all records related to writing the trace
files themselves and all records related to the nightly tape backup";
it also reprocessed traces with the kernel-development group excluded to
test whether the large-file trend was an artifact.  These filters model
those operations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.trace.records import TraceRecord

#: Sentinel user ids the generator assigns to system activity that the
#: analysis must never see (mirrors the tracer + backup exclusions).
TRACER_USER_ID = -1
BACKUP_USER_ID = -2

SELF_TRAFFIC_USER_IDS = frozenset({TRACER_USER_ID, BACKUP_USER_ID})


def _record_user(record: TraceRecord) -> int | None:
    return getattr(record, "user_id", None)


def drop_self_traffic(
    records: Iterable[TraceRecord],
) -> Iterator[TraceRecord]:
    """Remove tracer self-traffic and nightly-backup records."""
    for record in records:
        if _record_user(record) in SELF_TRAFFIC_USER_IDS:
            continue
        yield record


def drop_users(
    records: Iterable[TraceRecord], user_ids: Iterable[int]
) -> Iterator[TraceRecord]:
    """Remove all records belonging to the given users (the paper's
    "ignore the kernel development group" reprocessing)."""
    excluded = frozenset(user_ids)
    for record in records:
        if _record_user(record) in excluded:
            continue
        yield record


def time_window(
    records: Iterable[TraceRecord], start: float, end: float
) -> Iterator[TraceRecord]:
    """Keep records with start <= time < end (splitting 48-hour captures
    into the paper's 24-hour trace halves)."""
    if end <= start:
        raise ValueError(f"empty time window: {start}..{end}")
    for record in records:
        if start <= record.time < end:
            yield record


def keep_kinds(
    records: Iterable[TraceRecord], kinds: Iterable[str]
) -> Iterator[TraceRecord]:
    """Keep only records of the named kinds."""
    wanted = frozenset(kinds)
    for record in records:
        if record.kind in wanted:
            yield record


def compose(
    *filters: Callable[[Iterable[TraceRecord]], Iterator[TraceRecord]],
) -> Callable[[Iterable[TraceRecord]], Iterator[TraceRecord]]:
    """Compose stream filters left-to-right into one filter."""

    def apply(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        stream: Iterable[TraceRecord] = records
        for item in filters:
            stream = item(stream)
        yield from stream

    return apply
