"""Trace utilities: summarization and splitting.

The paper's captures ran for 48 hours and were "divided into eight
24-hour periods"; :func:`split_by_duration` performs that division.
:func:`summarize` gives the quick per-trace profile used by the
examples and by anyone inspecting a trace file.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import TraceError
from repro.common.units import bytes_to_mbytes
from repro.trace.records import (
    ReadRunRecord,
    TraceRecord,
    WriteRunRecord,
)


@dataclass
class TraceSummary:
    """A quick profile of one record stream."""

    records: int = 0
    by_kind: Counter = field(default_factory=Counter)
    bytes_read: int = 0
    bytes_written: int = 0
    users: set[int] = field(default_factory=set)
    clients: set[int] = field(default_factory=set)
    files: set[int] = field(default_factory=set)
    first_time: float = float("inf")
    last_time: float = float("-inf")

    @property
    def span_seconds(self) -> float:
        if self.records == 0:
            return 0.0
        return self.last_time - self.first_time

    def render(self) -> str:
        lines = [
            f"records        : {self.records}",
            f"span           : {self.span_seconds / 3600:.1f} hours",
            f"users          : {len(self.users)}",
            f"clients        : {len(self.clients)}",
            f"distinct files : {len(self.files)}",
            f"Mbytes read    : {bytes_to_mbytes(self.bytes_read):.1f}",
            f"Mbytes written : {bytes_to_mbytes(self.bytes_written):.1f}",
            "events by kind :",
        ]
        for kind, count in sorted(self.by_kind.items()):
            lines.append(f"  {kind:<14} {count}")
        return "\n".join(lines)


def summarize(records: Iterable[TraceRecord]) -> TraceSummary:
    """Profile a record stream in one pass."""
    summary = TraceSummary()
    for record in records:
        summary.records += 1
        summary.by_kind[record.kind] += 1
        summary.first_time = min(summary.first_time, record.time)
        summary.last_time = max(summary.last_time, record.time)
        user = getattr(record, "user_id", None)
        if user is not None and user >= 0:
            summary.users.add(user)
        client = getattr(record, "client_id", None)
        if client is not None:
            summary.clients.add(client)
        file_id = getattr(record, "file_id", None)
        if file_id is not None and file_id >= 0:
            summary.files.add(file_id)
        if isinstance(record, ReadRunRecord):
            summary.bytes_read += record.length
        elif isinstance(record, WriteRunRecord):
            summary.bytes_written += record.length
    return summary


def split_by_duration(
    records: Iterable[TraceRecord],
    piece_duration: float,
    rebase_times: bool = True,
) -> Iterator[tuple[int, list[TraceRecord]]]:
    """Split a time-ordered stream into consecutive fixed-duration
    pieces (the paper's 48-hour -> 2 x 24-hour division).

    With ``rebase_times`` each piece's clock restarts at zero, so the
    pieces are standalone traces.  Episodes cut by a boundary simply
    lose their tail, exactly as the paper's split did; the analyses
    tolerate unbalanced episodes.
    """
    if piece_duration <= 0:
        raise TraceError(f"piece duration must be positive: {piece_duration}")
    pieces: dict[int, list[TraceRecord]] = {}
    last_time = float("-inf")
    for record in records:
        if record.time < last_time:
            raise TraceError("split_by_duration needs a time-ordered stream")
        last_time = record.time
        index = int(record.time // piece_duration)
        if rebase_times:
            data = record.to_dict()
            data["time"] = record.time - index * piece_duration
            record = TraceRecord.from_dict(data)
        pieces.setdefault(index, []).append(record)
    for index in sorted(pieces):
        yield index, pieces[index]
