"""Application behaviour models.

Section 2 lists the cluster's common applications: "interactive editors
of various types, program development and debugging, electronic mail,
document production, and simulation".  Each model here turns one
invocation of such an application into a legal sequence of trace
records, with I/O timing derived from a 10-MIPS-workstation processing
rate and network-file-system open latencies.

Every model is a function ``run_<app>(ctx, ...) -> float`` that emits
records through ``ctx.emitter`` and returns the wall-clock time at which
the invocation finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import ClientId, UserId
from repro.common.rng import RngStream
from repro.common.units import KB, MB
from repro.trace.records import AccessMode
from repro.workload.distributions import (
    FileSizeModel,
    SizeClass,
    io_duration,
    open_latency,
    process_rate,
)
from repro.workload.emitter import RecordEmitter
from repro.workload.filespace import FileState
from repro.workload.users import UserProfile


@dataclass
class UserFiles:
    """A user's persistent files, created lazily and reused across
    sessions so the workload has genuine locality."""

    sources: list[FileState] = field(default_factory=list)
    headers: list[FileState] = field(default_factory=list)
    objects: dict[int, FileState] = field(default_factory=dict)
    executable: FileState | None = None
    libraries: list[FileState] = field(default_factory=list)
    inbox: FileState | None = None
    sent_mbox: FileState | None = None
    documents: list[FileState] = field(default_factory=list)
    sim_input: FileState | None = None
    #: Shell history, appended to by nearly every shell invocation.
    history: FileState | None = None
    #: Build log, appended to by compiles.
    build_log: FileState | None = None
    #: A small record-structured file updated in place now and then.
    dbfile: FileState | None = None


@dataclass
class AppContext:
    """Everything an application invocation needs."""

    emitter: RecordEmitter
    rng: RngStream
    user: UserProfile
    files: UserFiles
    size_model: FileSizeModel
    #: Clients available as migration targets (excluding the home client).
    migration_hosts: list[ClientId]
    #: Knob from the trace profile: >1 makes simulation jobs bigger/longer.
    simulation_intensity: float = 1.0

    @property
    def user_id(self) -> UserId:
        return self.user.user_id

    @property
    def home(self) -> ClientId:
        return self.user.home_client


# ---------------------------------------------------------------------------
# small building blocks
# ---------------------------------------------------------------------------


def _dwell(rng: RngStream) -> float:
    """Extra time a process keeps the file open while it works on the
    contents.  Most opens close immediately; a minority are held while
    the application processes (the tail of Figure 3)."""
    if rng.bernoulli(0.22):
        if rng.bernoulli(0.12):
            return rng.uniform(2.0, 60.0)
        return rng.uniform(0.05, 2.0)
    return 0.0


def read_whole(
    ctx: AppContext,
    time: float,
    file: FileState,
    client: ClientId,
    migrated: bool = False,
    rate: float | None = None,
) -> float:
    """Open, read the whole file sequentially, close.  Returns end time."""
    rate = rate or process_rate(ctx.rng)
    episode = ctx.emitter.open_file(
        time, file, ctx.user_id, client, AccessMode.READ, migrated=migrated
    )
    end = time + io_duration(file.size, rate, open_latency(ctx.rng))
    if file.size > 0:
        episode.read(end, 0, file.size)
    end += _dwell(ctx.rng)
    episode.close(end)
    return end


def read_prefix(
    ctx: AppContext,
    time: float,
    file: FileState,
    client: ClientId,
    migrated: bool = False,
) -> float:
    """Open and read only a leading fraction of the file sequentially
    (head, an early-exiting grep, a pager quit part-way): the paper's
    "other sequential" read accesses."""
    rng = ctx.rng
    episode = ctx.emitter.open_file(
        time, file, ctx.user_id, client, AccessMode.READ, migrated=migrated
    )
    length = max(1, int(file.size * rng.uniform(0.1, 0.9)))
    end = time + io_duration(length, process_rate(rng), open_latency(rng))
    if file.size > 0:
        episode.read(end, 0, min(length, file.size))
    end += _dwell(rng)
    episode.close(end)
    return end


def write_whole(
    ctx: AppContext,
    time: float,
    file: FileState,
    client: ClientId,
    size: int,
    migrated: bool = False,
    rate: float | None = None,
) -> float:
    """Open with truncate, write ``size`` bytes sequentially, close."""
    rate = rate or process_rate(ctx.rng)
    episode = ctx.emitter.open_file(
        time,
        file,
        ctx.user_id,
        client,
        AccessMode.WRITE,
        migrated=migrated,
        truncate=True,
    )
    end = time + io_duration(size, rate, open_latency(ctx.rng))
    if size > 0:
        episode.write(end, 0, size)
    episode.close(end)
    return end


def write_random(
    ctx: AppContext,
    time: float,
    file: FileState,
    client: ClientId,
    pieces: int,
    migrated: bool = False,
) -> float:
    """Open and update scattered records in place (a write-only random
    access, e.g. a dbm-style index update)."""
    rng = ctx.rng
    episode = ctx.emitter.open_file(
        time, file, ctx.user_id, client, AccessMode.WRITE, migrated=migrated
    )
    rate = process_rate(rng)
    now = time + open_latency(rng)
    size = max(file.size, 1)
    max_chunk = max(512, min(size // 8, 256 * KB))
    for _ in range(max(1, pieces)):
        offset = rng.randint(0, max(0, size - 1))
        length = min(size - offset, rng.randint(64, max_chunk)) or 1
        now += io_duration(length, rate, 0.001)
        episode.write(now, offset, length)
    episode.close(now)
    return now


def append_run(
    ctx: AppContext,
    time: float,
    file: FileState,
    client: ClientId,
    size: int,
    migrated: bool = False,
) -> float:
    """Open for writing and append ``size`` bytes at the end."""
    episode = ctx.emitter.open_file(
        time, file, ctx.user_id, client, AccessMode.WRITE, migrated=migrated
    )
    end = time + io_duration(size, process_rate(ctx.rng), open_latency(ctx.rng))
    episode.write(end, file.size, size)
    episode.close(end)
    return end


def read_random(
    ctx: AppContext,
    time: float,
    file: FileState,
    client: ClientId,
    pieces: int,
    migrated: bool = False,
) -> float:
    """Open and read ``pieces`` scattered chunks (a Random access)."""
    episode = ctx.emitter.open_file(
        time, file, ctx.user_id, client, AccessMode.READ, migrated=migrated
    )
    rate = process_rate(ctx.rng)
    now = time + open_latency(ctx.rng)
    size = max(file.size, 1)
    # Chunk sizes scale with the file: random access into a font or data
    # file pulls proportionally bigger pieces.
    max_chunk = max(1024, min(size // 8, 256 * KB))
    for _ in range(max(1, pieces)):
        offset = ctx.rng.randint(0, max(0, size - 1))
        length = min(size - offset, ctx.rng.randint(200, max_chunk))
        if length <= 0:
            length = 1
            offset = max(0, size - 1)
        now += io_duration(length, rate, 0.001)
        episode.read(now, offset, length)
    episode.close(now)
    return now


def _fresh_file(
    ctx: AppContext, time: float, client: ClientId, size_class: SizeClass
) -> FileState:
    """Create a brand-new file of the given class (size applied on write)."""
    return ctx.emitter.create_file(time, ctx.user_id, client)


# ---------------------------------------------------------------------------
# the applications
# ---------------------------------------------------------------------------


def run_edit(ctx: AppContext, time: float) -> float:
    """An interactive editing burst: load a file, think, save it (via a
    short-lived backup copy, the classic editor pattern that gives the
    paper its sub-30-second file lifetimes)."""
    rng = ctx.rng
    client = ctx.home

    if not ctx.files.sources or rng.bernoulli(0.12):
        target = ctx.emitter.register_existing_file(
            time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
        )
        ctx.files.sources.append(target)
    else:
        target = rng.choice(ctx.files.sources)

    # Editors stat the directory and read their startup/config files.
    if rng.bernoulli(0.5):
        ctx.emitter.read_directory(time, ctx.user_id, client, rng.randint(256, 4 * KB))
    now = time + 0.01
    for _ in range(rng.randint(1, 3)):
        dotfile = ctx.emitter.register_existing_file(
            now, ctx.user_id, ctx.size_model.sample(rng, SizeClass.TINY)
        )
        now = read_whole(ctx, now, dotfile, client)

    now = read_whole(ctx, now, target, client)

    saves = rng.randint(1, 5)
    for _ in range(saves):
        now += rng.uniform(15.0, 180.0)  # typing
        new_size = max(
            64, int(target.size * rng.uniform(0.9, 1.15)) + rng.randint(-64, 256)
        )
        if rng.bernoulli(0.35):
            # Save through a backup file that is deleted a little later.
            backup = ctx.emitter.create_file(now, ctx.user_id, client)
            now = write_whole(ctx, now, backup, client, target.size or 64)
            now = write_whole(ctx, now + 0.01, target, client, new_size)
            now += rng.uniform(2.0, 45.0)
            ctx.emitter.delete_file(now, backup, ctx.user_id, client)
        else:
            now = write_whole(ctx, now + 0.01, target, client, new_size)
    return now


def run_compile(ctx: AppContext, time: float, migrated: bool) -> float:
    """A pmake build: read the Makefile, compile out-of-date targets
    (possibly fanned out to idle hosts via process migration), then link.

    Migration is where the paper's 6-7x burst factor comes from: several
    hosts compile simultaneously on one user's behalf, and the link step
    reads the objects seconds after remote clients wrote them (the
    server-recall pattern of Table 10).
    """
    rng = ctx.rng
    home = ctx.home

    # Ensure the user has a project.
    if not ctx.files.sources:
        for _ in range(rng.randint(4, 18)):
            ctx.files.sources.append(
                ctx.emitter.register_existing_file(
                    time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
                )
            )
    if not ctx.files.headers:
        for _ in range(rng.randint(3, 10)):
            ctx.files.headers.append(
                ctx.emitter.register_existing_file(
                    time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
                )
            )
    if not ctx.files.libraries:
        for _ in range(rng.randint(1, 3)):
            ctx.files.libraries.append(
                ctx.emitter.register_existing_file(
                    time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.MEDIUM)
                )
            )

    # pmake reads the makefile and scans the directory.
    makefile = ctx.files.sources[0]
    now = read_whole(ctx, time, makefile, home)
    ctx.emitter.read_directory(now, ctx.user_id, home, rng.randint(512, 8 * KB))

    # The build's progress is appended to a log as it goes.
    if ctx.files.build_log is None or not ctx.emitter.filespace.exists(
        ctx.files.build_log.file_id
    ):
        ctx.files.build_log = ctx.emitter.register_existing_file(
            now, ctx.user_id, rng.randint(256, 16 * KB)
        )
    now = append_run(ctx, now, ctx.files.build_log, home, rng.randint(100, 2 * KB))

    # Choose the out-of-date targets.  Migrated builds are the big ones:
    # a full pmake over the whole project (that is why it was migrated).
    if migrated:
        while len(ctx.files.sources) < 13:
            ctx.files.sources.append(
                ctx.emitter.register_existing_file(
                    time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
                )
            )
        count = rng.randint(8, len(ctx.files.sources) - 1)
    else:
        count = rng.randint(1, max(1, len(ctx.files.sources) - 1))
    pool = ctx.files.sources[1:] or ctx.files.sources
    targets = rng.sample(pool, min(count, len(pool)))

    hosts: list[ClientId]
    if migrated and ctx.migration_hosts:
        # Take the user's preferred hosts in order: host reuse across
        # builds keeps headers and sources warm in remote caches.
        fanout = min(len(ctx.migration_hosts), rng.randint(2, 8))
        hosts = list(ctx.migration_hosts[:fanout])
    else:
        hosts = [home]

    # Compile targets in parallel across hosts; track per-host clocks.
    # Each source always compiles on the same host (pmake's stable
    # scheduling), so re-reads of unchanged sources and headers hit the
    # remote caches on rebuilds.
    host_clock = {host: now for host in hosts}
    finished: list[tuple[float, FileState]] = []
    for source in targets:
        host = hosts[int(source.file_id) % len(hosts)]
        is_remote = host != home
        t = host_clock[host]
        rate = process_rate(rng)
        t = read_whole(ctx, t, source, host, migrated=is_remote, rate=rate)
        for header in rng.sample(
            ctx.files.headers, min(len(ctx.files.headers), rng.randint(2, 6))
        ):
            t = read_whole(ctx, t, header, host, migrated=is_remote, rate=rate)
        if rng.bernoulli(0.4):
            # Compiler temp file: written, read back, deleted in seconds.
            temp = ctx.emitter.create_file(t, ctx.user_id, host)
            temp_size = max(256, int(source.size * rng.uniform(0.5, 1.5)))
            t = write_whole(
                ctx, t, temp, host, temp_size, migrated=is_remote, rate=rate
            )
            t = read_whole(ctx, t + 0.01, temp, host, migrated=is_remote, rate=rate)
            ctx.emitter.delete_file(t + 0.01, temp, ctx.user_id, host)
            t += 0.02
        t += rng.uniform(0.3, 3.0)  # code generation CPU time
        # Object file: overwrite the previous version.
        obj = ctx.files.objects.get(int(source.file_id))
        if obj is None or not ctx.emitter.filespace.exists(obj.file_id):
            obj = ctx.emitter.create_file(t, ctx.user_id, host)
            ctx.files.objects[int(source.file_id)] = obj
        obj_size = max(512, int(source.size * rng.uniform(1.0, 2.0)))
        t = write_whole(ctx, t, obj, host, obj_size, migrated=is_remote, rate=rate)
        host_clock[host] = t
        finished.append((t, obj))

    if not finished:
        return now

    # Link on the home client as soon as the slowest host finishes.  The
    # freshly written objects are still dirty in remote caches.
    link_start = max(t for t, _ in finished) + rng.uniform(0.1, 1.0)
    t = link_start
    rate = process_rate(rng)
    for _, obj in finished:
        t = read_whole(ctx, t, obj, home, rate=rate)
    for library in ctx.files.libraries:
        t = read_whole(ctx, t, library, home, rate=rate)
    exe = ctx.files.executable
    if exe is None or not ctx.emitter.filespace.exists(exe.file_id):
        exe = ctx.emitter.create_file(t, ctx.user_id, home)
        ctx.files.executable = exe
    # Executables are about the size of their inputs; a minority of
    # builds are kernel-sized binaries (the paper's 2-10 Mbyte kernels).
    if rng.bernoulli(0.06):
        exe_size = ctx.size_model.sample(rng, SizeClass.LARGE)
    else:
        total_objects = sum(o.size for o in ctx.files.objects.values())
        exe_size = max(32 * KB, int(total_objects * rng.uniform(0.8, 1.2)))
    t = write_whole(ctx, t, exe, home, exe_size, rate=rate)
    return t


def run_simulation(ctx: AppContext, time: float, migrated: bool) -> float:
    """A simulation run: read a multi-megabyte input, compute, write a
    multi-megabyte output, post-process it, delete it.

    This is the workload of the paper's traces 3 and 4 (20-Mbyte inputs;
    a 10-Mbyte output "subsequently postprocessed and deleted") and the
    main source of million-byte sequential runs and long per-byte
    lifetimes.
    """
    rng = ctx.rng
    intensity = max(0.1, ctx.simulation_intensity)
    # A migrated simulation is a pmake parameter sweep: the runs execute
    # in parallel on several idle hosts, which is what makes migration
    # traffic so bursty (Table 2's 6-7x factor).
    sweep_hosts: list[ClientId] = [ctx.home]
    if migrated and ctx.migration_hosts:
        fanout = min(len(ctx.migration_hosts), rng.randint(2, 4))
        sweep_hosts = list(ctx.migration_hosts[:fanout])

    sim_input = ctx.files.sim_input
    if sim_input is None or not ctx.emitter.filespace.exists(sim_input.file_id):
        # Ordinary simulation inputs are a few hundred kilobytes; the hot
        # class-project workloads of traces 3-4 (intensity >= 2) read
        # the paper's 20-Mbyte inputs.
        if intensity >= 2.0:
            base = ctx.size_model.sample(rng, SizeClass.HUGE)
        else:
            base = int(
                ctx.size_model.sample(rng, SizeClass.MEDIUM) * rng.uniform(1.0, 4.0)
            )
        sim_input = ctx.emitter.register_existing_file(
            time, ctx.user_id, min(int(base), 24 * MB)
        )
        ctx.files.sim_input = sim_input

    if migrated:
        repeats = max(len(sweep_hosts), rng.poisson(0.6 * max(1.0, intensity)))
    else:
        repeats = max(1, rng.poisson(0.5 if intensity < 2.0 else 0.4 * intensity))
    host_clock: dict[int, float] = {int(h): time for h in sweep_hosts}
    home_clock = time
    for index in range(repeats):
        client = sweep_hosts[index % len(sweep_hosts)]
        is_remote = client != ctx.home
        now = host_clock[int(client)]
        rate = process_rate(rng)
        # Sequential read of the whole input.  Big simulators read in a
        # few long chunks (checkpointed phases) rather than one run.
        episode = ctx.emitter.open_file(
            now, sim_input, ctx.user_id, client, AccessMode.READ, migrated=is_remote
        )
        # Some runs only consume a leading portion of the input (a
        # shortened experiment): megabyte-scale "other sequential" reads.
        wanted = sim_input.size
        if rng.bernoulli(0.25):
            wanted = max(1, int(sim_input.size * rng.uniform(0.4, 0.95)))
        chunks = rng.randint(1, 3)
        chunk = wanted // chunks if chunks else wanted
        t = now + open_latency(rng)
        offset = 0
        for i in range(chunks):
            length = chunk if i < chunks - 1 else wanted - offset
            if length <= 0:
                break
            t += io_duration(length, rate, 0.0)
            episode.read(t, offset, length)
            offset += length
        episode.close(t)
        now = t + rng.uniform(20.0, 120.0)  # compute phase

        # Output file.  Usually created fresh and written whole; some
        # simulators instead append each run to a growing results file,
        # and some update a preallocated results matrix in place.
        output = ctx.emitter.create_file(now, ctx.user_id, client)
        out_size = max(
            64 * KB, min(int(sim_input.size * rng.uniform(0.3, 0.8)), 12 * MB)
        )
        style = rng.random()
        if style < 0.6:
            now = write_whole(ctx, now, output, client, out_size, migrated=is_remote)
        elif style < 0.85:
            # Seed the file, then append the bulk: an other-sequential
            # write run carrying megabytes.
            now = write_whole(
                ctx, now, output, client, max(1024, out_size // 16),
                migrated=is_remote,
            )
            now = append_run(
                ctx, now + 0.5, output, client, out_size, migrated=is_remote
            )
        else:
            # Preallocate, then fill slices in place: random write bytes.
            now = write_whole(ctx, now, output, client, out_size, migrated=is_remote)
            now = write_random(
                ctx, now + 0.5, output, client, rng.randint(4, 10),
                migrated=is_remote,
            )
        host_clock[int(client)] = now

        # Post-process: read the output, write a small summary, delete
        # the output minutes after its bytes were written.  Under pmake
        # the postprocess step usually runs remotely too; otherwise it
        # happens back on the home client.
        if is_remote and rng.bernoulli(0.7):
            pp_client, pp_migrated = client, True
        else:
            pp_client, pp_migrated = ctx.home, False
        now = max(home_clock, now) + rng.uniform(2.0, 20.0)
        now = read_whole(ctx, now, output, pp_client, migrated=pp_migrated)
        summary = ctx.emitter.create_file(now, ctx.user_id, pp_client)
        now = write_whole(
            ctx, now, summary, pp_client,
            ctx.size_model.sample(rng, SizeClass.SMALL), migrated=pp_migrated,
        )
        now += rng.uniform(1.0, 30.0)
        ctx.emitter.delete_file(now, output, ctx.user_id, pp_client)
        home_clock = now + rng.uniform(5.0, 60.0)
    return max([home_clock, *host_clock.values()])


def run_mail(ctx: AppContext, time: float) -> float:
    """A mail session: scan the inbox, read messages (random access into
    the mbox), maybe compose (draft created, appended to the sent mbox,
    deleted)."""
    rng = ctx.rng
    client = ctx.home
    if ctx.files.inbox is None or not ctx.emitter.filespace.exists(
        ctx.files.inbox.file_id
    ):
        ctx.files.inbox = ctx.emitter.register_existing_file(
            time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.MEDIUM)
        )
    if ctx.files.sent_mbox is None or not ctx.emitter.filespace.exists(
        ctx.files.sent_mbox.file_id
    ):
        ctx.files.sent_mbox = ctx.emitter.register_existing_file(
            time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
        )

    inbox = ctx.files.inbox
    # Headers scan: a partial sequential read of the front of the inbox.
    episode = ctx.emitter.open_file(
        time, inbox, ctx.user_id, client, AccessMode.READ
    )
    scan = max(1, min(inbox.size, rng.randint(2 * KB, 32 * KB)))
    t = time + io_duration(scan, process_rate(rng), open_latency(rng))
    episode.read(t, 0, scan)
    episode.close(t)
    now = t + rng.uniform(2.0, 20.0)

    # Read individual messages: random access into the inbox.
    if inbox.size > 4 * KB and rng.bernoulli(0.8):
        now = read_random(ctx, now, inbox, client, pieces=rng.randint(2, 6))
        now += rng.uniform(5.0, 60.0)

    # Compose and send.
    if rng.bernoulli(0.5):
        draft = ctx.emitter.create_file(now, ctx.user_id, client)
        draft_size = rng.randint(300, 6 * KB)
        now = write_whole(ctx, now, draft, client, draft_size)
        now += rng.uniform(10.0, 120.0)  # typing the message
        now = read_whole(ctx, now, draft, client)  # mailer re-reads it
        now = append_run(ctx, now, ctx.files.sent_mbox, client, draft_size)
        now += rng.uniform(0.5, 5.0)
        ctx.emitter.delete_file(now, draft, ctx.user_id, client)

    # Rewrite the inbox after deleting messages.
    if rng.bernoulli(0.4):
        new_size = max(1 * KB, int(inbox.size * rng.uniform(0.5, 1.05)))
        now = write_whole(ctx, now + 1.0, inbox, client, new_size)
    return now


def run_document(ctx: AppContext, time: float) -> float:
    """Document production: edit the source, format it (reads of style
    and font files, some random), write the output device file."""
    rng = ctx.rng
    client = ctx.home
    if not ctx.files.documents:
        for _ in range(rng.randint(1, 3)):
            ctx.files.documents.append(
                ctx.emitter.register_existing_file(
                    time, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
                )
            )
    doc = rng.choice(ctx.files.documents)

    now = read_whole(ctx, time, doc, client)
    now += rng.uniform(30.0, 300.0)  # editing
    new_size = max(512, int(doc.size * rng.uniform(0.95, 1.2)))
    now = write_whole(ctx, now, doc, client, new_size)

    # Formatter pass: read the source, a few style/macro files, fonts
    # with random access, then write the output.
    now = read_whole(ctx, now + 1.0, doc, client)
    for _ in range(rng.randint(2, 6)):
        style = ctx.emitter.register_existing_file(
            now, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
        )
        now = read_whole(ctx, now, style, client)
    if rng.bernoulli(0.6):
        font = ctx.emitter.register_existing_file(
            now, ctx.user_id, ctx.size_model.sample(rng, SizeClass.MEDIUM)
        )
        now = read_random(ctx, now, font, client, pieces=rng.randint(3, 10))
    output = ctx.emitter.create_file(now, ctx.user_id, client)
    out_size = max(2 * KB, int(new_size * rng.uniform(1.5, 4.0)))
    now = write_whole(ctx, now, output, client, out_size)

    # Previewer reads the output with repositions (random).
    if rng.bernoulli(0.5):
        now = read_random(ctx, now + 2.0, output, client, pieces=rng.randint(3, 8))
    return now


def run_browse(ctx: AppContext, time: float) -> float:
    """Poking around the shared hierarchy: directory listings and
    whole-file reads (ls, more, grep...)."""
    rng = ctx.rng
    client = ctx.home
    now = time
    for _ in range(rng.randint(2, 8)):
        ctx.emitter.read_directory(
            now, ctx.user_id, client, rng.randint(256, 16 * KB)
        )
        now += rng.uniform(1.0, 15.0)
        reads = rng.randint(1, 5)
        for _ in range(reads):
            size_class = (
                SizeClass.TINY if rng.bernoulli(0.5) else SizeClass.SMALL
            )
            victim = ctx.emitter.register_existing_file(
                now, ctx.user_id, ctx.size_model.sample(rng, size_class)
            )
            if rng.bernoulli(0.35):
                now = read_prefix(ctx, now, victim, client)  # pager quit early
            else:
                now = read_whole(ctx, now, victim, client)
            now += rng.uniform(0.5, 10.0)
    return now


def run_shell(ctx: AppContext, time: float) -> float:
    """Shell and script activity: greps over sources, `make depend`,
    status files, tool rc files -- dozens of whole-file reads of tiny
    files with the odd short-lived /tmp file.

    This is where the bulk of the paper's open *count* lives: enormous
    numbers of accesses that move almost no bytes.
    """
    rng = ctx.rng
    client = ctx.home
    now = time

    if ctx.files.history is None or not ctx.emitter.filespace.exists(
        ctx.files.history.file_id
    ):
        ctx.files.history = ctx.emitter.register_existing_file(
            now, ctx.user_id, rng.randint(512, 32 * KB)
        )

    sweeps = rng.randint(1, 3)
    for _ in range(sweeps):
        ctx.emitter.read_directory(
            now, ctx.user_id, client, rng.randint(256, 8 * KB)
        )
        # Sweep the user's project files plus assorted small files.
        victims: list[FileState] = list(ctx.files.sources)
        extras = rng.randint(8, 30)
        for _ in range(extras):
            size_class = SizeClass.TINY if rng.bernoulli(0.6) else SizeClass.SMALL
            victims.append(
                ctx.emitter.register_existing_file(
                    now, ctx.user_id, ctx.size_model.sample(rng, size_class)
                )
            )
        rate = process_rate(rng)
        for victim in victims:
            if rng.bernoulli(0.30):
                now = read_prefix(ctx, now, victim, client)  # grep -l, head
            elif rng.bernoulli(0.06):
                now = read_random(ctx, now, victim, client, rng.randint(2, 5))
            else:
                now = read_whole(ctx, now, victim, client, rate=rate)
            now += rng.uniform(0.005, 0.1)
        # Pipe through a short-lived temporary file now and then.
        if rng.bernoulli(0.4):
            temp = ctx.emitter.create_file(now, ctx.user_id, client)
            now = write_whole(ctx, now, temp, client, rng.randint(256, 16 * KB))
            now = read_whole(ctx, now + 0.01, temp, client)
            now += rng.uniform(0.5, 12.0)
            ctx.emitter.delete_file(now, temp, ctx.user_id, client)
        # The shell appends the commands to its history file.
        now = append_run(
            ctx, now, ctx.files.history, client, rng.randint(40, 400)
        )
        # Occasionally update a small record file in place.
        if rng.bernoulli(0.05):
            if ctx.files.dbfile is None or not ctx.emitter.filespace.exists(
                ctx.files.dbfile.file_id
            ):
                ctx.files.dbfile = ctx.emitter.register_existing_file(
                    now, ctx.user_id, ctx.size_model.sample(rng, SizeClass.SMALL)
                )
            now = write_random(
                ctx, now, ctx.files.dbfile, client, rng.randint(2, 5)
            )
        # Spring-clean an old file once in a while: these deletions give
        # Figure 4 its hours-old tail.
        if rng.bernoulli(0.08) and len(ctx.files.sources) > 4:
            victim = ctx.files.sources.pop(rng.randint(2, len(ctx.files.sources) - 1))
            ctx.files.objects.pop(int(victim.file_id), None)
            if ctx.emitter.filespace.exists(victim.file_id):
                ctx.emitter.delete_file(now, victim, ctx.user_id, client)
        now += rng.uniform(1.0, 20.0)
    return now


def run_rw_update(ctx: AppContext, time: float) -> float:
    """Read/write accesses: in-place record updates (the paper's rare
    read-write accesses are essentially all random).  One invocation
    performs several read-modify-write episodes, like a database tool
    walking a set of record files."""
    rng = ctx.rng
    client = ctx.home
    now = time
    for _ in range(rng.randint(2, 6)):
        dbfile = ctx.emitter.register_existing_file(
            now, ctx.user_id, ctx.size_model.sample(rng, SizeClass.MEDIUM)
        )
        episode = ctx.emitter.open_file(
            now, dbfile, ctx.user_id, client, AccessMode.READ_WRITE
        )
        now += open_latency(rng)
        rate = process_rate(rng)
        for _ in range(rng.randint(2, 6)):
            size = max(dbfile.size, 1)
            offset = rng.randint(0, max(0, size - 1))
            length = min(size - offset, rng.randint(64, 2 * KB)) or 1
            now += io_duration(length, rate, 0.001)
            episode.read(now, offset, length)
            now += io_duration(length, rate, 0.001)
            episode.write(now, offset, length)
        episode.close(now)
        now += rng.uniform(0.5, 10.0)
    return now


def run_shared_log(
    ctx: AppContext,
    time: float,
    partner_user: UserProfile,
    requests: int,
    log_file: FileState,
) -> float:
    """Concurrent write-sharing on a shared log file.

    ``ctx.user`` appends records from their client while
    ``partner_user`` follows the same file from another client.  Both
    episodes overlap in time, which is precisely the paper's definition
    of concurrent write-sharing; each request is logged as a shared
    read/write event (Table 1's Shared Read/Write rows, the input to
    the Section 5.5/5.6 simulations).

    Most sharing is *phased*: the writer appends a batch, pauses, and
    the reader catches up on the accumulated tail -- minutes-grained
    alternation, which is why the paper's 3-second polling interval
    eliminated most stale reads and why the token scheme was usually
    competitive.  A minority of activities interleave at per-request
    granularity (the fine-grained sharing that makes the token scheme's
    overhead so variable).
    """
    rng = ctx.rng
    writer_client = ctx.home
    reader_client = partner_user.home_client
    if reader_client == writer_client and ctx.migration_hosts:
        reader_client = ctx.migration_hosts[0]
    reader_migrated = partner_user.uses_migration and rng.bernoulli(0.3)

    writer = ctx.emitter.open_file(
        time, log_file, ctx.user_id, writer_client, AccessMode.WRITE
    )
    reader = ctx.emitter.open_file(
        time + rng.uniform(0.5, 5.0),
        log_file,
        partner_user.user_id,
        reader_client,
        AccessMode.READ,
        migrated=reader_migrated,
    )

    now = max(writer.opened_at, reader.opened_at) + 0.1
    start_offset = log_file.size
    appended = 0
    read_position = start_offset
    remaining = max(1, requests)
    mode = rng.weighted_choice(
        ["status", "fine", "phased"], [0.50, 0.08, 0.42]
    )

    if mode == "status":
        # A shared status region rewritten in place by the writer and
        # polled by the reader.  Token-friendly: the writer's repeated
        # overwrites coalesce in its cache and flush once per delay
        # window, whereas Sprite's pass-through pays for every write.
        region = rng.randint(2048, 6144)
        region = min(region, max(1024, log_file.size or 4096))
        for _ in range(remaining):
            now += rng.uniform(2.0, 20.0)
            writer.shared_request(now, 0, region, is_write=True)
            if rng.bernoulli(0.18):
                now += rng.uniform(0.5, 5.0)
                reader.shared_request(now, 0, region, is_write=False)
        end = now + 0.05
        writer.write(end, 0, region)
        reader.read(end + 0.01, 0, region)
        writer.close(end + 0.02)
        reader.close(end + rng.uniform(0.03, 5.0))
        return end + 0.1

    fine_grained = mode == "fine"

    def reader_catch_up(at: float) -> float:
        nonlocal read_position
        delta = start_offset + appended - read_position
        t = at
        while delta > 0:
            chunk = min(delta, rng.randint(2 * KB, 32 * KB))
            t += rng.uniform(0.05, 1.0)
            reader.shared_request(t, read_position, chunk, is_write=False)
            read_position += chunk
            delta -= chunk
        return t

    if fine_grained:
        # Tight alternation: every append is chased by a read.
        for _ in range(remaining):
            size = rng.randint(100, 2000)
            now += rng.uniform(1.0, 8.0)
            writer.shared_request(
                now, start_offset + appended, size, is_write=True
            )
            appended += size
            if rng.bernoulli(0.8):
                now += rng.uniform(0.1, 2.0)
                chunk = start_offset + appended - read_position
                if chunk > 0:
                    reader.shared_request(
                        now, read_position, chunk, is_write=False
                    )
                    read_position += chunk
    else:
        # Phased: batches of appends, then a catch-up read pass.
        while remaining > 0:
            batch = min(remaining, rng.randint(3, 10))
            remaining -= batch
            for _ in range(batch):
                size = rng.randint(200, 6000)
                now += rng.uniform(1.0, 20.0)
                writer.shared_request(
                    now, start_offset + appended, size, is_write=True
                )
                appended += size
            now += rng.uniform(5.0, 90.0)
            now = reader_catch_up(now)
            now += rng.uniform(5.0, 60.0)

    # Coalesced runs carry the bytes: one long append run for the writer,
    # one tail read for the reader.
    end = now + 0.05
    if appended > 0:
        writer.write(end, start_offset, appended)
        if read_position > start_offset:
            reader.read(end + 0.01, start_offset, read_position - start_offset)
    writer.close(end + 0.02)
    reader.close(end + rng.uniform(0.03, 5.0))
    return end + 0.1
