"""Synthetic Sprite-style workload generation.

The original eight 24-hour Berkeley traces are not distributable, so this
package builds the closest synthetic equivalent: a population of users in
the paper's four groups (operating systems, architecture, VLSI/parallel,
miscellaneous), each running application models -- editing, pmake-driven
compilation with process migration, multi-megabyte simulations, mail,
document production -- whose file access behaviour is calibrated, trace
by trace, to the distributions the paper reports (Tables 1-3,
Figures 1-4).

The entry point is :func:`generate_standard_traces`, which produces the
eight traces of the study; each is a :class:`SyntheticTrace` carrying the
time-ordered records plus generation metadata.
"""

from repro.workload.distributions import FileSizeModel, SizeClass
from repro.workload.users import UserGroup, UserProfile, build_user_population
from repro.workload.filespace import FileSpace, FileState
from repro.workload.emitter import RecordEmitter
from repro.workload.profiles import TraceProfile, STANDARD_PROFILES
from repro.workload.generator import (
    SyntheticTrace,
    TraceGenerator,
    generate_standard_traces,
    generate_trace,
)

__all__ = [
    "FileSizeModel",
    "SizeClass",
    "UserGroup",
    "UserProfile",
    "build_user_population",
    "FileSpace",
    "FileState",
    "RecordEmitter",
    "TraceProfile",
    "STANDARD_PROFILES",
    "SyntheticTrace",
    "TraceGenerator",
    "generate_trace",
    "generate_standard_traces",
]
