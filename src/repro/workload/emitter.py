"""Record emission: turning application behaviour into legal traces.

Applications express themselves in terms of open episodes, runs, and
file lifecycle operations; :class:`RecordEmitter` turns those into the
trace vocabulary while maintaining the invariants the validator checks
(every run inside an open episode, repositions wherever a run starts
away from the previous position, close totals that match the runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields

from repro.common.errors import TraceError
from repro.common.ids import ClientId, IdAllocator, UserId
from repro.trace.columnar import ColumnarTraceBuilder
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    CreateRecord,
    DeleteRecord,
    DirectoryReadRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    TruncateRecord,
    WriteRunRecord,
)
from repro.workload.filespace import FileSpace, FileState


@dataclass
class OpenEpisode:
    """One in-progress open..close episode."""

    emitter: "RecordEmitter"
    open_id: int
    file: FileState
    user_id: UserId
    client_id: ClientId
    mode: AccessMode
    migrated: bool
    opened_at: float
    position: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    closed: bool = False
    last_time: float = field(default=0.0)

    def _check_open(self, time: float) -> None:
        if self.closed:
            raise TraceError(f"episode {self.open_id} already closed")
        if time < self.last_time:
            raise TraceError(
                f"episode {self.open_id} time went backwards: "
                f"{time} < {self.last_time}"
            )

    def _seek_if_needed(self, time: float, offset: int) -> None:
        """Emit a reposition when a run starts away from the current
        position (the paper's traces logged exactly these lseeks)."""
        if offset != self.position:
            self.emitter._emit_row(
                RepositionRecord,
                (
                    time,
                    int(self.file.server_id),
                    self.open_id,
                    int(self.file.file_id),
                    int(self.user_id),
                    int(self.client_id),
                    self.position,
                    offset,
                    self.migrated,
                ),
            )
            self.position = offset

    def read(self, end_time: float, offset: int, length: int) -> None:
        """One sequential read run ending at ``end_time``."""
        self._check_open(end_time)
        if length <= 0:
            raise TraceError(f"read run needs positive length, got {length}")
        self._seek_if_needed(self.last_time or self.opened_at, offset)
        self.emitter._emit_row(
            ReadRunRecord,
            (
                end_time,
                int(self.file.server_id),
                self.open_id,
                int(self.file.file_id),
                int(self.user_id),
                int(self.client_id),
                offset,
                length,
                self.migrated,
            ),
        )
        self.position = offset + length
        self.bytes_read += length
        self.last_time = end_time

    def write(self, end_time: float, offset: int, length: int) -> None:
        """One sequential write run ending at ``end_time``."""
        self._check_open(end_time)
        if length <= 0:
            raise TraceError(f"write run needs positive length, got {length}")
        self._seek_if_needed(self.last_time or self.opened_at, offset)
        self.emitter._emit_row(
            WriteRunRecord,
            (
                end_time,
                int(self.file.server_id),
                self.open_id,
                int(self.file.file_id),
                int(self.user_id),
                int(self.client_id),
                offset,
                length,
                self.migrated,
            ),
        )
        self.file.record_write(end_time, offset, length, int(self.client_id))
        self.position = offset + length
        self.bytes_written += length
        self.last_time = end_time

    def shared_request(
        self, time: float, offset: int, length: int, is_write: bool
    ) -> None:
        """Log one per-request server event for a write-shared file.

        These are *in addition to* the coalesced runs -- they carry no
        new bytes for Table 1, only the fine-grained request stream the
        consistency simulators consume.
        """
        self._check_open(time)
        cls = SharedWriteRecord if is_write else SharedReadRecord
        self.emitter._emit_row(
            cls,
            (
                time,
                int(self.file.server_id),
                int(self.file.file_id),
                int(self.user_id),
                int(self.client_id),
                offset,
                length,
                self.migrated,
            ),
        )
        self.last_time = time

    def close(self, time: float) -> None:
        """End the episode."""
        self._check_open(time)
        self.closed = True
        self.emitter._emit_row(
            CloseRecord,
            (
                time,
                int(self.file.server_id),
                self.open_id,
                int(self.file.file_id),
                int(self.user_id),
                int(self.client_id),
                self.file.size,
                self.bytes_read,
                self.bytes_written,
                self.migrated,
            ),
        )
        self.emitter._episode_closed(self)


class RecordEmitter:
    """Produces trace records into an in-memory columnar sink.

    Emission appends plain value rows (dataclass field order) to a
    :class:`~repro.trace.columnar.ColumnarTraceBuilder` -- no record
    objects are constructed on the hot path.  The generator seals the
    sink into a sorted :class:`~repro.trace.columnar.ColumnarTrace`;
    :attr:`records` materializes the classic emission-ordered list on
    demand (tests and small callers).
    """

    def __init__(self, filespace: FileSpace) -> None:
        self.filespace = filespace
        self.sink = ColumnarTraceBuilder()
        self._open_ids = IdAllocator(start=1)
        self._open_episodes: dict[int, OpenEpisode] = {}

    @property
    def records(self) -> list[TraceRecord]:
        """The emitted records in emission order (materialized fresh on
        every access -- cheap for tests, not for whole-day traces)."""
        return self.sink.emission_order_records()

    def _emit_row(self, cls: type[TraceRecord], row: tuple) -> None:
        self.sink.append(cls, row)

    def _emit(self, record: TraceRecord) -> None:
        """Compatibility entry for callers holding a built record."""
        self.sink.append(
            type(record),
            tuple(getattr(record, f.name) for f in dataclass_fields(record)),
        )

    def _episode_closed(self, episode: OpenEpisode) -> None:
        self._open_episodes.pop(episode.open_id, None)

    @property
    def open_episode_count(self) -> int:
        return len(self._open_episodes)

    # --- lifecycle operations ----------------------------------------------

    def create_file(
        self, time: float, user_id: UserId, client_id: ClientId, size: int = 0
    ) -> FileState:
        """Create a file and emit the create record."""
        state = self.filespace.create(time, user_id, size=size)
        self._emit_row(
            CreateRecord,
            (
                time,
                int(state.server_id),
                int(state.file_id),
                int(user_id),
                int(client_id),
            ),
        )
        return state

    def register_existing_file(
        self, time: float, user_id: UserId, size: int
    ) -> FileState:
        """Register a file that predates the trace (no create record)."""
        return self.filespace.create(time, user_id, size=size)

    def open_file(
        self,
        time: float,
        file: FileState,
        user_id: UserId,
        client_id: ClientId,
        mode: AccessMode,
        migrated: bool = False,
        truncate: bool = False,
    ) -> OpenEpisode:
        """Open a file, optionally truncating it (O_TRUNC semantics)."""
        if not self.filespace.exists(file.file_id):
            raise TraceError(f"cannot open deleted file {file.file_id}")
        if truncate and mode is AccessMode.READ:
            raise TraceError("cannot truncate a file opened read-only")
        size_at_open = file.size
        if truncate:
            file.truncate(time)
        episode = OpenEpisode(
            emitter=self,
            open_id=self._open_ids.allocate(),
            file=file,
            user_id=user_id,
            client_id=client_id,
            mode=mode,
            migrated=migrated,
            opened_at=time,
            last_time=time,
        )
        self._open_episodes[episode.open_id] = episode
        self._emit_row(
            OpenRecord,
            (
                time,
                int(file.server_id),
                episode.open_id,
                int(file.file_id),
                int(user_id),
                0,
                int(client_id),
                mode,
                size_at_open,
                migrated,
            ),
        )
        return episode

    def delete_file(
        self, time: float, file: FileState, user_id: UserId, client_id: ClientId
    ) -> None:
        """Delete a file, emitting its lifetime information."""
        state = self.filespace.delete(file.file_id)
        self._emit_row(
            DeleteRecord,
            (
                time,
                int(state.server_id),
                int(state.file_id),
                int(user_id),
                int(client_id),
                state.size,
                state.oldest_byte_time,
                state.newest_byte_time,
            ),
        )

    def truncate_file(
        self, time: float, file: FileState, user_id: UserId, client_id: ClientId
    ) -> None:
        """Truncate a file to zero length (counted as a delete for
        lifetime purposes, per Section 4.3)."""
        state = self.filespace.get(file.file_id)
        self._emit_row(
            TruncateRecord,
            (
                time,
                int(state.server_id),
                int(state.file_id),
                int(user_id),
                int(client_id),
                state.size,
                state.oldest_byte_time,
                state.newest_byte_time,
            ),
        )
        state.truncate(time)

    def read_directory(
        self, time: float, user_id: UserId, client_id: ClientId, length: int
    ) -> None:
        """A user-level directory read (always served by the server)."""
        if length <= 0:
            raise TraceError(f"directory read needs positive length, got {length}")
        self._emit_row(
            DirectoryReadRecord,
            (
                time,
                0,
                -1,
                int(user_id),
                int(client_id),
                length,
            ),
        )
