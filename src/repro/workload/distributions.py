"""Workload distributions.

The paper's headline distributional facts, which these samplers are
calibrated to land inside:

* Most accessed files are small (~40-50% of accesses under 1 KB,
  ~80% under 10 KB) but most bytes come from big files (~40% of bytes
  from files of 1 MB or more) -- Figure 2.
* "Large" files are an order of magnitude larger than in 1985: simulation
  inputs of 20 MB, outputs of 10 MB, kernel binaries of 2-10 MB.
* Most sequential runs are short (~80% under 10 Kbytes) yet at least 10%
  of bytes move in runs longer than 1 Mbyte -- Figure 1.
* Most files are open under a quarter second -- Figure 3.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.rng import RngStream
from repro.common.units import KB, MB


class SizeClass(enum.Enum):
    """Coarse file-size classes used by the application models."""

    TINY = "tiny"  # dotfiles, locks, small sources: ~100 B - 2 KB
    SMALL = "small"  # typical sources, mail, objects: ~1 - 30 KB
    MEDIUM = "medium"  # libraries, documents, images: ~30 KB - 1 MB
    LARGE = "large"  # binaries, kernels: ~1 - 10 MB
    HUGE = "huge"  # simulation inputs/outputs: ~10 - 20+ MB


#: Per-class lognormal parameters: (median bytes, sigma of log).
_CLASS_PARAMS: dict[SizeClass, tuple[float, float]] = {
    SizeClass.TINY: (500.0, 0.9),
    SizeClass.SMALL: (4 * KB, 1.0),
    SizeClass.MEDIUM: (120 * KB, 0.8),
    SizeClass.LARGE: (3 * MB, 0.6),
    SizeClass.HUGE: (14 * MB, 0.25),
}

#: Hard per-class caps keep a fat lognormal tail from generating
#: gigabyte outliers the 1991 cluster could not have stored.
_CLASS_CAPS: dict[SizeClass, int] = {
    SizeClass.TINY: 4 * KB,
    SizeClass.SMALL: 64 * KB,
    SizeClass.MEDIUM: 1 * MB,
    SizeClass.LARGE: 10 * MB,
    SizeClass.HUGE: 24 * MB,
}


@dataclass(frozen=True)
class FileSizeModel:
    """A mixture over size classes.

    ``weights`` maps each class to its mixture probability; the sampler
    draws a class, then a lognormal size within it.  Profiles tune the
    weights (the trace-3/4 simulation workloads push HUGE far up).
    """

    weights: dict[SizeClass, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigError("file size model needs at least one class weight")
        bad = [c for c, w in self.weights.items() if w < 0]
        if bad:
            raise ConfigError(f"negative class weights: {bad}")
        if sum(self.weights.values()) <= 0:
            raise ConfigError("file size model weights sum to zero")

    @classmethod
    def typical(cls) -> "FileSizeModel":
        """The day-to-day mix: overwhelmingly small files, thin big tail."""
        return cls(
            weights={
                SizeClass.TINY: 0.33,
                SizeClass.SMALL: 0.47,
                SizeClass.MEDIUM: 0.165,
                SizeClass.LARGE: 0.03,
                SizeClass.HUGE: 0.005,
            }
        )

    def sample_class(self, rng: RngStream) -> SizeClass:
        classes = list(self.weights)
        weights = [self.weights[c] for c in classes]
        return rng.weighted_choice(classes, weights)

    def sample(self, rng: RngStream, size_class: SizeClass | None = None) -> int:
        """Draw a file size in bytes (always at least 1)."""
        chosen = size_class or self.sample_class(rng)
        median, sigma = _CLASS_PARAMS[chosen]
        size = rng.lognormal(math.log(median), sigma)
        return max(1, min(int(size), _CLASS_CAPS[chosen]))


def open_latency(rng: RngStream) -> float:
    """Base open+close processing latency, seconds.

    Opens on a network file system were measured at 4-5x local-FS cost
    (Section 4.2 discussion of Figure 3); ~10-40 ms covers the observed
    range on 10-MIPS clients.
    """
    return rng.uniform(0.010, 0.040)


def process_rate(rng: RngStream) -> float:
    """Application data-processing rate, bytes/second.

    A 10-MIPS workstation touching file data (compiling, simulating,
    formatting) moves on the order of 0.5-2 Mbytes/second through the
    kernel interface; the rate varies per invocation.
    """
    return rng.uniform(0.5 * MB, 2.0 * MB)


def io_duration(nbytes: int, rate: float, latency: float) -> float:
    """Wall time for an application to move ``nbytes`` through an open
    episode at ``rate`` bytes/second plus fixed ``latency``."""
    if nbytes < 0:
        raise ConfigError(f"negative transfer size: {nbytes}")
    if rate <= 0:
        raise ConfigError(f"non-positive rate: {rate}")
    return latency + nbytes / rate


def think_time(rng: RngStream, mean_seconds: float) -> float:
    """Inter-action pause inside a user session (exponential)."""
    return rng.exponential(mean_seconds)


def diurnal_weight(time_of_day_seconds: float) -> float:
    """Relative activity level over a 24-hour day.

    Peaks through the working afternoon, stays substantial into the
    evening (graduate students), and bottoms out before dawn.  Used to
    thin session arrivals.
    """
    hours = (time_of_day_seconds / 3600.0) % 24.0
    # Two raised-cosine humps: a work-day hump and an evening hump.
    work = math.exp(-(((hours - 15.0) / 4.5) ** 2))
    evening = 0.6 * math.exp(-(((hours - 21.5) / 2.5) ** 2))
    base = 0.06
    return base + work + evening
