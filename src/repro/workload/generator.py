"""The top-level synthetic trace generator.

For each trace profile the generator builds a user population, a shared
file hierarchy on four servers, and a set of shared group log files,
then plays out every user's day as a series of sessions whose start
times follow the diurnal activity curve.  Sessions invoke the
application models of :mod:`repro.workload.apps` according to the user's
group mix; migration users fan pmake compilations (and some simulations)
out to idle hosts.  The result is a time-sorted, validated record
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.ids import ClientId
from repro.common.rng import RngStream
from repro.common.units import DEFAULT_CLIENT_COUNT, DEFAULT_SERVER_COUNT, MINUTE
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import TraceRecord
from repro.trace.validate import ValidationReport, validate_stream
from repro.workload.apps import (
    AppContext,
    UserFiles,
    run_browse,
    run_compile,
    run_document,
    run_edit,
    run_mail,
    run_rw_update,
    run_shared_log,
    run_shell,
    run_simulation,
)
from repro.workload.distributions import FileSizeModel, diurnal_weight
from repro.workload.emitter import RecordEmitter
from repro.workload.filespace import FileSpace, FileState
from repro.workload.profiles import STANDARD_PROFILES, TraceProfile, scaled_profile
from repro.workload.users import UserGroup, UserProfile, build_user_population

#: Peak value of the diurnal curve, for rejection sampling.
_DIURNAL_PEAK = 1.4


@dataclass
class SyntheticTrace:
    """One generated 24-hour trace plus its provenance.

    ``records`` is the classic materialized list every analysis
    consumes.  ``columnar`` is the same stream in columnar form
    (:class:`~repro.trace.columnar.ColumnarTrace`); when the trace was
    generated with ``materialize=False`` only ``columnar`` is
    populated and consumers stream records chunk-at-a-time via
    :meth:`iter_records` without ever holding the full list.
    """

    profile: TraceProfile
    seed: int
    scale: float
    records: list[TraceRecord]
    users: list[UserProfile]
    validation: ValidationReport
    #: Excluded from equality: the columnar form is a redundant view of
    #: the same stream (cache round-trips may drop or rebuild it).
    columnar: ColumnarTrace | None = field(default=None, compare=False)

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def duration(self) -> float:
        return self.profile.duration

    @property
    def record_count(self) -> int:
        """Number of records without forcing materialization."""
        if self.records:
            return len(self.records)
        if self.columnar is not None:
            return len(self.columnar)
        return 0

    def iter_records(self) -> Iterator[TraceRecord]:
        """The record stream, preferring the bounded-memory columnar
        path when the materialized list is absent."""
        if self.records:
            return iter(self.records)
        if self.columnar is not None:
            return self.columnar.iter_records()
        return iter(())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticTrace({self.name}, records={self.record_count}, "
            f"users={len(self.users)}, scale={self.scale})"
        )


class TraceGenerator:
    """Generates one synthetic trace from a profile."""

    #: Applications each session can invoke, keyed by mix name.
    _MEAN_SESSION_MINUTES = 55.0

    def __init__(
        self,
        profile: TraceProfile,
        seed: int,
        client_count: int = DEFAULT_CLIENT_COUNT,
        server_count: int = DEFAULT_SERVER_COUNT,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.client_count = client_count
        self.rng = RngStream.root(seed).fork(profile.name)
        self.filespace = FileSpace(server_count, self.rng.fork("filespace"))
        self.emitter = RecordEmitter(self.filespace)
        self.size_model = FileSizeModel.typical()
        self.users = build_user_population(
            self.rng.fork("users"),
            regular_users=profile.regular_users,
            occasional_users=profile.occasional_users,
            client_count=client_count,
            migration_user_target=profile.migration_user_target,
        )
        self._user_files: dict[int, UserFiles] = {}
        self._group_logs: dict[UserGroup, list[FileState]] = {}

    # --- shared resources ---------------------------------------------------

    def _shared_logs_for(self, group: UserGroup) -> list[FileState]:
        logs = self._group_logs.get(group)
        if logs is None:
            rng = self.rng.fork(f"logs-{group.value}")
            logs = [
                self.emitter.register_existing_file(
                    0.0, self.users[0].user_id, rng.randint(1024, 64 * 1024)
                )
                for _ in range(2)
            ]
            self._group_logs[group] = logs
        return logs

    def _partner_for(self, user: UserProfile, rng: RngStream) -> UserProfile:
        """Someone in the same group to share a file with (or anyone, if
        the user is alone in their group)."""
        mates = [
            u
            for u in self.users
            if u.group is user.group and u.user_id != user.user_id
            and u.shares_files
        ]
        if not mates:
            mates = [u for u in self.users if u.user_id != user.user_id]
        if not mates:
            return user
        return rng.choice(mates)

    # --- session machinery --------------------------------------------------

    #: Uniform draws fetched per rejection-sampling batch (8 candidate
    #: time/acceptance pairs; ~71% of candidates accept, so one batch
    #: almost always suffices).
    _START_BATCH = 16

    def _sample_session_start(self, rng: RngStream) -> float:
        """Rejection-sample a session start time from the diurnal curve.

        Draws are batched (:meth:`RngStream.randoms`) and consumed in
        pairs, in order -- byte-identical to the one-at-a-time
        ``uniform`` loop because ``uniform(0, x)`` is exactly
        ``x * random()``; the batch's unused tail is never observed
        (each session start owns a dedicated fork).
        """
        duration = self.profile.duration
        weight = diurnal_weight
        while True:
            draws = rng.randoms(self._START_BATCH)
            for i in range(0, self._START_BATCH, 2):
                t = duration * draws[i]
                if _DIURNAL_PEAK * draws[i + 1] <= weight(t):
                    return t

    def _context_for(self, user: UserProfile, rng: RngStream) -> AppContext:
        files = self._user_files.get(int(user.user_id))
        if files is None:
            files = UserFiles()
            self._user_files[int(user.user_id)] = files
        # A stable, user-specific host preference order: Sprite's
        # migration policy "tends to reuse the same hosts over and over
        # again, which may allow some reuse of data in the caches" --
        # the reason migrated processes hit better than average.
        others = [c for c in range(self.client_count) if c != int(user.home_client)]
        rotation = (int(user.user_id) * 7) % max(1, len(others))
        hosts = [ClientId(c) for c in others[rotation:] + others[:rotation]]
        return AppContext(
            emitter=self.emitter,
            rng=rng,
            user=user,
            files=files,
            size_model=self.size_model,
            migration_hosts=hosts,
            simulation_intensity=self.profile.simulation_intensity,
        )

    def _run_app(
        self, ctx: AppContext, app: str, time: float, rng: RngStream
    ) -> float:
        user = ctx.user
        if app == "edit":
            return run_edit(ctx, time)
        if app == "compile":
            migrated = user.uses_migration and rng.bernoulli(0.7)
            return run_compile(ctx, time, migrated=migrated)
        if app == "simulation":
            # The hot class-project simulations (traces 3-4) ran under
            # pmake, i.e. nearly always migrated; day-to-day simulations
            # only sometimes.
            p_migrate = 0.85 if self.profile.simulation_intensity >= 2.0 else 0.35
            migrated = user.uses_migration and rng.bernoulli(p_migrate)
            return run_simulation(ctx, time, migrated=migrated)
        if app == "mail":
            return run_mail(ctx, time)
        if app == "document":
            return run_document(ctx, time)
        if app == "browse":
            return run_browse(ctx, time)
        if app == "shell":
            return run_shell(ctx, time)
        if app == "shared_log":
            partner = self._partner_for(user, rng)
            requests = max(
                1, round(rng.randint(10, 80) * self.profile.shared_intensity)
            )
            log = rng.choice(self._shared_logs_for(user.group))
            return run_shared_log(ctx, time, partner, requests, log)
        if app == "rw_update":
            return run_rw_update(ctx, time)
        raise ValueError(f"unknown application kind: {app}")

    def _run_session(self, user: UserProfile, start: float, rng: RngStream) -> None:
        ctx = self._context_for(user, rng)
        length = min(
            rng.lognormal(
                mu=_log_mean_minutes(self._MEAN_SESSION_MINUTES), sigma=0.5
            )
            * MINUTE,
            4.0 * 3600.0,
        )
        mix = dict(user.app_mix())
        # Sharing is concentrated: clique members share several times a
        # day, everyone else not at all.
        if user.shares_files:
            if "shared_log" in mix:
                mix["shared_log"] *= 3.0
        else:
            mix.pop("shared_log", None)
        # A pinch of in-place read/write updates keeps Table 3's rare
        # read/write row populated.
        mix["rw_update"] = 0.04
        # The hot class-project simulations belonged to a couple of
        # pmake-driven users: concentrate them on migration users.
        if self.profile.simulation_intensity >= 2.0 and "simulation" in mix:
            mix["simulation"] *= 2.5 if user.uses_migration else 0.25
        apps = list(mix)
        weights = [mix[a] for a in apps]
        now = start
        deadline = start + length
        while now < deadline:
            app = rng.weighted_choice(apps, weights)
            now = self._run_app(ctx, app, now, rng)
            now += rng.exponential(25.0)

    # --- main entry -----------------------------------------------------------

    def generate(self, materialize: bool = True) -> SyntheticTrace:
        """Play out the full day and return the sorted, validated trace.

        With ``materialize=False`` the result carries only the columnar
        form (``records`` stays empty): validation streams transient
        chunks and no whole-day record list is ever built -- the mode
        scale-out generation runs in.
        """
        for user in self.users:
            user_rng = self.rng.fork(f"sessions-{user.user_id}")
            mean_sessions = user.sessions_per_day * self.profile.intensity
            session_count = user_rng.poisson(mean_sessions)
            if user.regular and session_count == 0:
                session_count = 1  # day-to-day users always show up
            starts = sorted(
                self._sample_session_start(user_rng.fork(f"start-{index}"))
                for index in range(session_count)
            )
            # Sessions are generated in time order so that file lifecycle
            # operations (a cleanup delete in an afternoon session) stay
            # temporally consistent with morning sessions.
            for index, start in enumerate(starts):
                self._run_session(user, start, user_rng.fork(f"run-{index}"))

        # Seal the columnar sink: drop out-of-window rows and argsort by
        # time (stable, emission order breaking ties) -- the vectorized
        # equivalent of the classic filter + list.sort.
        columnar = self.emitter.sink.seal(duration=self.profile.duration)
        report = validate_stream(
            columnar.iter_records(), allow_open_at_end=True
        )
        return SyntheticTrace(
            profile=self.profile,
            seed=self.seed,
            scale=1.0,
            records=columnar.materialize() if materialize else [],
            users=self.users,
            validation=report,
            columnar=columnar,
        )


def _log_mean_minutes(mean: float) -> float:
    """mu for a lognormal whose *median* is ``mean`` minutes."""
    import math

    return math.log(mean)


def generate_trace(
    profile: TraceProfile,
    seed: int = 1991,
    scale: float = 1.0,
    client_count: int = DEFAULT_CLIENT_COUNT,
    materialize: bool = True,
) -> SyntheticTrace:
    """Generate one trace, optionally population-scaled."""
    effective = scaled_profile(profile, scale)
    trace = TraceGenerator(
        effective, seed=seed, client_count=client_count
    ).generate(materialize=materialize)
    trace.scale = scale
    return trace


def generate_standard_traces(
    scale: float = 1.0,
    seed: int = 1991,
    client_count: int = DEFAULT_CLIENT_COUNT,
    profiles: tuple[TraceProfile, ...] = STANDARD_PROFILES,
) -> list[SyntheticTrace]:
    """Generate the study's eight traces.

    ``scale`` shrinks the user population for fast test/bench runs;
    distributional results are scale-invariant, totals scale roughly
    linearly (multiply by ``1/scale`` to compare with Table 1).
    """
    return [
        generate_trace(profile, seed=seed + index, scale=scale, client_count=client_count)
        for index, profile in enumerate(profiles)
    ]
