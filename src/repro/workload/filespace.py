"""The shared file hierarchy the workload operates on.

Sprite presented a single shared hierarchy with no local disks; every
file lives on one of the four servers.  The generator needs just enough
file state to produce honest traces: current size, which server holds
the file, and the write times of the oldest and newest bytes (the
paper's Section 4.3 lifetime estimator reads lifetimes straight off
those two times).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TraceError
from repro.common.ids import FileId, IdAllocator, ServerId, UserId
from repro.common.rng import RngStream


@dataclass
class FileState:
    """Mutable state of one live file."""

    file_id: FileId
    server_id: ServerId
    owner: UserId
    created_at: float
    size: int = 0
    #: Write time of the file's oldest surviving byte (-1 = never written).
    oldest_byte_time: float = -1.0
    #: Write time of the file's newest byte (-1 = never written).
    newest_byte_time: float = -1.0
    #: Client that last wrote this file, for recall modelling (-1 = none).
    last_writer_client: int = -1
    #: Time of the last write, for recall modelling.
    last_write_time: float = -1.0

    def record_write(self, time: float, offset: int, length: int, client: int) -> None:
        """Fold one write run into the byte-age bookkeeping.

        A full overwrite (offset 0 covering the whole file) resets the
        oldest byte; a partial write only refreshes the newest.
        """
        if length <= 0:
            return
        end = offset + length
        covers_all = offset == 0 and end >= self.size
        self.size = max(self.size, end)
        if covers_all or self.oldest_byte_time < 0:
            self.oldest_byte_time = time
        self.newest_byte_time = time
        self.last_writer_client = client
        self.last_write_time = time

    def truncate(self, time: float) -> None:
        """Truncate to zero length; byte ages reset."""
        self.size = 0
        self.oldest_byte_time = -1.0
        self.newest_byte_time = -1.0
        self.last_write_time = time


class FileSpace:
    """The population of live files, plus creation/deletion bookkeeping."""

    def __init__(self, server_count: int, rng: RngStream) -> None:
        if server_count <= 0:
            raise TraceError(f"need at least one server, got {server_count}")
        self.server_count = server_count
        self._rng = rng
        self._ids = IdAllocator()
        self._files: dict[FileId, FileState] = {}
        self.created_count = 0
        self.deleted_count = 0

    def _pick_server(self) -> ServerId:
        """Most traffic went through a single Sun 4 server; weight it 70%
        and spread the rest across the other three."""
        if self.server_count == 1:
            return ServerId(0)
        if self._rng.bernoulli(0.7):
            return ServerId(0)
        return ServerId(self._rng.randint(1, self.server_count - 1))

    def create(self, time: float, owner: UserId, size: int = 0) -> FileState:
        """Create a new file.  A non-zero initial ``size`` models files
        that predate the trace (their bytes are treated as written at
        creation registration time)."""
        if size < 0:
            raise TraceError(f"negative file size: {size}")
        state = FileState(
            file_id=FileId(self._ids.allocate()),
            server_id=self._pick_server(),
            owner=owner,
            created_at=time,
            size=size,
            oldest_byte_time=time if size else -1.0,
            newest_byte_time=time if size else -1.0,
        )
        self._files[state.file_id] = state
        self.created_count += 1
        return state

    def get(self, file_id: FileId) -> FileState:
        state = self._files.get(file_id)
        if state is None:
            raise TraceError(f"file {file_id} does not exist (or was deleted)")
        return state

    def exists(self, file_id: FileId) -> bool:
        return file_id in self._files

    def delete(self, file_id: FileId) -> FileState:
        """Remove a file, returning its final state for the delete record."""
        state = self._files.pop(file_id, None)
        if state is None:
            raise TraceError(f"cannot delete missing file {file_id}")
        self.deleted_count += 1
        return state

    @property
    def live_count(self) -> int:
        return len(self._files)

    def live_files(self) -> list[FileState]:
        """Snapshot of all live files (creation order)."""
        return list(self._files.values())
