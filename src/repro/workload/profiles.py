"""Per-trace calibration profiles.

Table 1 of the paper shows eight 24-hour traces with very different
personalities: traces 3 and 4 are dominated by two users running
simulations with 20-Mbyte inputs and a 10-Mbyte postprocess-and-delete
output; trace 8 has an order of magnitude more shared-file events; user
counts run from 33 to 50 and migration users from 6 to 15.  Each profile
below pins those knobs for one synthetic trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import DAY, HOUR


@dataclass(frozen=True)
class TraceProfile:
    """Generation parameters for one 24-hour trace."""

    name: str
    #: The paper's trace date, kept as documentation.
    date: str
    duration: float = DAY
    #: Distinct-user target (Table 1 "Different users").
    user_target: int = 45
    #: How many of those are day-to-day users.
    regular_fraction: float = 0.6
    #: Table 1 "Users of migration".
    migration_user_target: int = 6
    #: Multiplies per-user session rates; the global activity knob.
    intensity: float = 1.0
    #: Multiplies simulation size/recurrence (traces 3-4 run hot).
    simulation_intensity: float = 1.0
    #: Multiplies shared-log request counts (trace 8 runs hot).
    shared_intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigError(f"trace duration must be positive: {self.duration}")
        if self.user_target <= 0:
            raise ConfigError(f"need at least one user: {self.user_target}")
        if not 0.0 <= self.regular_fraction <= 1.0:
            raise ConfigError(
                f"regular_fraction out of range: {self.regular_fraction}"
            )
        if self.migration_user_target < 0:
            raise ConfigError("migration_user_target cannot be negative")
        if self.migration_user_target > self.user_target:
            raise ConfigError(
                "migration_user_target cannot exceed user_target "
                f"({self.migration_user_target} > {self.user_target})"
            )
        for knob in ("intensity", "simulation_intensity", "shared_intensity"):
            if getattr(self, knob) <= 0:
                raise ConfigError(f"{knob} must be positive")

    @property
    def regular_users(self) -> int:
        return max(1, round(self.user_target * self.regular_fraction))

    @property
    def occasional_users(self) -> int:
        return max(0, self.user_target - self.regular_users)


#: The eight traces of the study.  Dates are from Table 1; knobs are
#: calibrated so the analyses land in the paper's reported bands.
STANDARD_PROFILES: tuple[TraceProfile, ...] = (
    TraceProfile(
        name="trace1", date="1/24/91", duration=23.8 * HOUR,
        user_target=44, migration_user_target=6,
        intensity=1.0, shared_intensity=0.3,
    ),
    TraceProfile(
        name="trace2", date="1/25/91",
        user_target=48, migration_user_target=6,
        intensity=1.45, shared_intensity=1.0,
    ),
    TraceProfile(
        name="trace3", date="5/10/91",
        user_target=47, migration_user_target=11,
        intensity=1.1, simulation_intensity=3.2, shared_intensity=0.8,
    ),
    TraceProfile(
        name="trace4", date="5/11/91",
        user_target=33, migration_user_target=8,
        intensity=1.1, simulation_intensity=4.0, shared_intensity=0.6,
    ),
    TraceProfile(
        name="trace5", date="5/14/91",
        user_target=48, migration_user_target=6,
        intensity=0.85, shared_intensity=0.9,
    ),
    TraceProfile(
        name="trace6", date="5/15/91",
        user_target=50, migration_user_target=11,
        intensity=1.2, shared_intensity=1.2,
    ),
    TraceProfile(
        name="trace7", date="6/26/91",
        user_target=46, migration_user_target=9,
        intensity=0.9, shared_intensity=1.0,
    ),
    TraceProfile(
        name="trace8", date="6/27/91",
        user_target=36, migration_user_target=15,
        intensity=1.8, shared_intensity=6.0,
    ),
)


def scaled_profile(profile: TraceProfile, scale: float) -> TraceProfile:
    """Scale a profile's population down (or up) by ``scale``.

    Scaling reduces the number of users -- and hence total events and
    bytes -- while leaving per-user behaviour untouched, so per-user and
    distributional results stay calibrated while wall-clock cost drops.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    if scale == 1.0:
        return profile
    user_target = max(2, round(profile.user_target * scale))
    migration_target = max(
        1, min(user_target, round(profile.migration_user_target * scale))
    )
    return TraceProfile(
        name=profile.name,
        date=profile.date,
        duration=profile.duration,
        user_target=user_target,
        regular_fraction=profile.regular_fraction,
        migration_user_target=migration_target,
        intensity=profile.intensity,
        simulation_intensity=profile.simulation_intensity,
        shared_intensity=profile.shared_intensity,
    )
