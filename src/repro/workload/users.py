"""The user population.

Section 2: about 30 users did all their computing on the cluster and
another 40 used it occasionally, in four roughly equal groups --
operating systems researchers, architecture researchers simulating I/O
subsystems, a VLSI/parallel-processing group, and miscellaneous others
(administrators, graphics).  Different groups run different application
mixes; the architecture and parallel groups are the source of the
multi-megabyte simulation files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.ids import ClientId, UserId
from repro.common.rng import RngStream


class UserGroup(enum.Enum):
    """The paper's four user communities."""

    OS = "os"
    ARCHITECTURE = "architecture"
    VLSI_PARALLEL = "vlsi_parallel"
    MISC = "misc"


#: Relative weight of each application kind per group.  Application
#: kinds are interpreted by :mod:`repro.workload.apps`.
GROUP_APP_MIX: dict[UserGroup, dict[str, float]] = {
    UserGroup.OS: {
        "edit": 0.22,
        "compile": 0.22,
        "shell": 0.26,
        "mail": 0.10,
        "document": 0.05,
        "simulation": 0.04,
        "shared_log": 0.05,
        "browse": 0.06,
    },
    UserGroup.ARCHITECTURE: {
        "edit": 0.20,
        "compile": 0.20,
        "shell": 0.24,
        "mail": 0.10,
        "document": 0.05,
        "simulation": 0.10,
        "shared_log": 0.05,
        "browse": 0.06,
    },
    UserGroup.VLSI_PARALLEL: {
        "edit": 0.20,
        "compile": 0.20,
        "shell": 0.24,
        "mail": 0.09,
        "document": 0.05,
        "simulation": 0.10,
        "shared_log": 0.06,
        "browse": 0.06,
    },
    UserGroup.MISC: {
        "edit": 0.24,
        "mail": 0.22,
        "shell": 0.18,
        "document": 0.16,
        "compile": 0.06,
        "simulation": 0.01,
        "shared_log": 0.04,
        "browse": 0.09,
    },
}

#: Groups whose members use pmake (and hence migration) routinely.
MIGRATION_PROPENSITY: dict[UserGroup, float] = {
    UserGroup.OS: 0.75,
    UserGroup.ARCHITECTURE: 0.55,
    UserGroup.VLSI_PARALLEL: 0.55,
    UserGroup.MISC: 0.10,
}


@dataclass(frozen=True)
class UserProfile:
    """One user of the cluster."""

    user_id: UserId
    group: UserGroup
    home_client: ClientId
    #: Day-to-day users session much more than occasional ones.
    regular: bool
    #: Expected number of sessions this user starts per 24 hours.
    sessions_per_day: float
    #: Whether this user reaches for pmake/migration at all.
    uses_migration: bool

    @property
    def shares_files(self) -> bool:
        """Whether this user participates in shared-file activity.

        Sharing was concentrated in subgroups working on joint projects
        (the paper found a large error count but only about half the
        users affected); roughly 40% of users are in such a clique.
        """
        return int(self.user_id) % 5 < 2

    def app_mix(self) -> dict[str, float]:
        """The application mix for this user's group."""
        return GROUP_APP_MIX[self.group]


def build_user_population(
    rng: RngStream,
    regular_users: int,
    occasional_users: int,
    client_count: int,
    migration_user_target: int,
) -> list[UserProfile]:
    """Create the user population for one trace.

    ``migration_user_target`` pins roughly how many users employ
    migration during the day (Table 1's "Users of migration" row runs
    from 6 to 15).
    """
    if client_count <= 0:
        raise ConfigError(f"need at least one client, got {client_count}")
    total = regular_users + occasional_users
    if total <= 0:
        raise ConfigError("need at least one user")
    if migration_user_target > total:
        raise ConfigError(
            f"cannot have {migration_user_target} migration users out of {total}"
        )

    groups = list(UserGroup)
    users: list[UserProfile] = []
    for index in range(total):
        regular = index < regular_users
        group = groups[index % len(groups)]
        user_rng = rng.fork(f"user-{index}")
        sessions = (
            user_rng.uniform(4.0, 9.0) if regular else user_rng.uniform(0.5, 2.0)
        )
        users.append(
            UserProfile(
                user_id=UserId(index),
                group=group,
                home_client=ClientId(index % client_count),
                regular=regular,
                sessions_per_day=sessions,
                uses_migration=False,  # assigned below
            )
        )

    # Pick the migration users, biased by group propensity and toward
    # regular users (pmake is a daily-driver tool).
    candidates = sorted(
        users,
        key=lambda u: (
            -MIGRATION_PROPENSITY[u.group] * (2.0 if u.regular else 1.0),
            u.user_id,
        ),
    )
    chosen = {u.user_id for u in candidates[:migration_user_target]}
    return [
        UserProfile(
            user_id=u.user_id,
            group=u.group,
            home_client=u.home_client,
            regular=u.regular,
            sessions_per_day=u.sessions_per_day,
            uses_migration=u.user_id in chosen,
        )
        for u in users
    ]
