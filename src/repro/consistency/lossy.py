"""Table S: cache consistency under a lossy network.

The paper's consistency study (Table 12) assumes a reliable network:
every invalidation, recall, and token message arrives.  This study
drops that assumption and asks two questions the at-most-once transport
(:mod:`repro.fs.rpc`) makes answerable:

* **scheme robustness** -- replaying the write-shared request streams
  with a Bernoulli message-loss model attached to each scheme's
  consistency messages: how many reads are served from a copy a lost
  invalidation failed to drop, per scheme, as the loss rate rises?
* **transport overhead** -- replaying a full cluster trace with the
  lossy channel at the same rates: what does at-most-once delivery cost
  in retransmissions and stall time, and does the protocol-invariant
  oracle stay clean (it must -- the whole point of the transport is that
  message loss degrades performance, never correctness)?

The loss model is untimed at the scheme level: a lost consistency
message is retransmitted and "lands" at the victim's next touch of the
affected block, so one read in that window is served stale.  That makes
the stale-read count a direct measure of each scheme's exposure window
rather than of any particular retransmission timer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.common.render import format_number, render_table
from repro.common.rng import RngStream
from repro.consistency.schemes import SchemeComparison, SchemeOverhead
from repro.fs.rpc import MAX_ATTEMPTS

#: The scheme keys of :func:`repro.consistency.schemes.simulate_schemes`.
SCHEME_KEYS: tuple[str, ...] = ("sprite", "modified", "token")


class MessageLossModel:
    """Bernoulli loss with retransmission until delivery.

    One model per scheme, forked from the study seed, so each scheme
    sees an independent (but reproducible) loss pattern.
    """

    __slots__ = ("loss_rate", "rng")

    def __init__(self, loss_rate: float, rng: RngStream) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise SimulationError(
                f"message loss rate must be in [0, 1], got {loss_rate}"
            )
        self.loss_rate = loss_rate
        self.rng = rng

    def transmissions(self) -> int:
        """Sends until one gets through (>= 1; capped like the
        transport's eventually-reliable retransmission loop)."""
        sends = 1
        if not self.loss_rate:
            return sends
        while self.rng.random() < self.loss_rate and sends < MAX_ATTEMPTS:
            sends += 1
        return sends


def loss_models_for(
    rate: float, rng: RngStream
) -> "dict[str, MessageLossModel] | None":
    """One independent loss model per scheme (``None`` at rate zero, so
    the lossless column draws no randomness at all)."""
    if rate == 0.0:
        return None
    return {
        key: MessageLossModel(rate, rng.fork(f"loss-{key}"))
        for key in SCHEME_KEYS
    }


@dataclass
class LossRateCell:
    """One message-loss rate's row of Table S."""

    rate: float
    #: The scheme leg, pooled over every trace's shared-file activity.
    comparison: SchemeComparison

    #: The transport leg: one full cluster replay at this loss rate.
    messages_sent: int = 0
    retransmissions: int = 0
    replies_lost: int = 0
    duplicates_suppressed: int = 0
    replies_replayed: int = 0
    stale_rpcs_dropped: int = 0
    stall_seconds: float = 0.0
    oracle_checks: int = 0
    oracle_violations: int = 0

    def scheme(self, key: str) -> SchemeOverhead:
        return getattr(self.comparison, key)

    def stale_fraction(self, key: str) -> float:
        return self.scheme(key).stale_read_fraction

    @property
    def retransmission_rate(self) -> float:
        """Resends per message offered to the channel."""
        if self.messages_sent == 0:
            return 0.0
        return self.retransmissions / self.messages_sent


@dataclass
class LossStudyResult:
    """Table S: one cell per swept message-loss rate."""

    cells: list[LossRateCell]

    def render(self) -> str:
        scheme_rows = []
        for cell in self.cells:
            row = [f"{cell.rate * 100:g}%"]
            for key in SCHEME_KEYS:
                overhead = cell.scheme(key)
                row.append(
                    f"{overhead.stale_reads} "
                    f"({overhead.stale_read_fraction * 100:.2f}%)"
                )
            row.append(str(cell.scheme("token").retransmissions))
            scheme_rows.append(row)
        schemes_table = render_table(
            "Table S. Stale reads under message loss, per consistency scheme",
            [
                "Loss rate",
                "Sprite stale reads",
                "Mod Sprite stale reads",
                "Token stale reads",
                "Token resends",
            ],
            scheme_rows,
            note=(
                "Reads served from a copy a lost invalidation failed to "
                "drop (count and fraction of all reads to write-shared "
                "files).  The cluster transport below pays resends and "
                "stall instead: with at-most-once RPC the oracle column "
                "must stay at zero."
            ),
        )
        transport_rows = [
            [
                f"{cell.rate * 100:g}%",
                str(cell.messages_sent),
                str(cell.retransmissions),
                str(cell.replies_lost),
                str(cell.duplicates_suppressed),
                format_number(cell.stall_seconds, 1),
                f"{cell.oracle_violations}/{cell.oracle_checks}",
            ]
            for cell in self.cells
        ]
        transport_table = render_table(
            "Table S (cont.) At-most-once transport overhead, full replay",
            [
                "Loss rate",
                "Messages",
                "Resends",
                "Replies lost",
                "Dups suppressed",
                "Stall (s)",
                "Violations/checks",
            ],
            transport_rows,
        )
        return f"{schemes_table}\n\n{transport_table}"
