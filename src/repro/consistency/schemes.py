"""Table 12: the overhead of three cache-consistency schemes.

The simulators replay, per write-shared file, the request stream of
:mod:`repro.consistency.events` and account every byte and RPC the
consistency algorithm would move.  Following the paper's simulator:
client caches are infinitely large, blocks leave caches only for
consistency reasons, the 30-second delayed-write policy is modelled,
and RPCs are piggybacked (a token recall and its dirty-data flush
count once).

Schemes:

* **Sprite** -- the file is uncacheable from the onset of concurrent
  write-sharing until every client has closed it; requests in that
  window pass through byte-for-byte (this is the baseline the ratios
  are normalized against: the paper's second column is "bytes
  transferred / bytes requested", and Sprite transfers exactly the
  requested bytes while sharing is active).
* **Modified Sprite** -- identical, except the file becomes cacheable
  again as soon as the concurrent write-sharing ends; small requests
  after that point miss and pull whole 4-Kbyte blocks.
* **Token** -- Locus/Echo/DEcorum style: a single write token or any
  number of read tokens per file; conflicting requests recall tokens
  (flushing dirty data with a recalled write token, invalidating
  caches when a write token is granted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.common.render import format_with_range, render_table
from repro.common.stats import MinMax
from repro.common.units import BLOCK_SIZE, DELAYED_WRITE_SECONDS
from repro.consistency.events import SharedFileActivity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.consistency.lossy import MessageLossModel


@dataclass
class SchemeOverhead:
    """Accumulated cost of one scheme over one trace."""

    name: str
    bytes_transferred: int = 0
    rpcs: int = 0
    bytes_requested: int = 0
    requests: int = 0
    #: Lossy-network accounting (zero unless a loss model is attached).
    reads: int = 0
    stale_reads: int = 0  # reads served from a copy a lost message missed
    retransmissions: int = 0  # consistency messages resent after a loss

    @property
    def byte_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_transferred / self.bytes_requested

    @property
    def rpc_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.rpcs / self.requests

    @property
    def stale_read_fraction(self) -> float:
        if self.reads == 0:
            return 0.0
        return self.stale_reads / self.reads


def _blocks_in(offset: int, length: int) -> range:
    if length <= 0:
        return range(0)
    return range(offset // BLOCK_SIZE, (offset + length - 1) // BLOCK_SIZE + 1)


def _invalidate_copies(
    overhead: SchemeOverhead,
    cached: set[tuple[int, int]],
    stale_marks: set[tuple[int, int]],
    copies: list[tuple[int, int]],
    loss: "MessageLossModel | None",
) -> None:
    """Drop other clients' copies of freshly written blocks.

    With a loss model attached, the invalidation message to each victim
    client may need retransmissions; until the resend lands the victim
    keeps serving its (now stale) copy.  The model is untimed, so "until
    the resend lands" is rendered as "until the victim next touches the
    block": a read in that window is a stale read, after which the
    straggling invalidation catches up and the copy drops.
    """
    if loss is None:
        for key in copies:
            cached.discard(key)
        return
    for victim in sorted({key[0] for key in copies}):
        sends = loss.transmissions()
        overhead.retransmissions += sends - 1
        victim_keys = [key for key in copies if key[0] == victim]
        if sends == 1:
            for key in victim_keys:
                cached.discard(key)
                stale_marks.discard(key)
        else:
            stale_marks.update(victim_keys)


class _WindowedScheme:
    """Sprite and modified Sprite: uncacheable windows + normal caching
    outside the windows."""

    def __init__(self, name: str, until_all_close: bool) -> None:
        self.name = name
        self.until_all_close = until_all_close

    def run(
        self,
        activity: SharedFileActivity,
        loss: "MessageLossModel | None" = None,
    ) -> SchemeOverhead:
        overhead = SchemeOverhead(name=self.name)
        windows = activity.sharing_windows(self.until_all_close)

        def uncacheable(time: float) -> bool:
            return any(start <= time <= end for start, end in windows)

        #: (client, block) -> resident?
        cached: set[tuple[int, int]] = set()
        #: Copies a lost invalidation message failed to drop.
        stale_marks: set[tuple[int, int]] = set()
        #: (client, block) -> time the block became dirty (for the
        #: delayed-write model: it is flushed 30 s later).
        dirty: dict[tuple[int, int], float] = {}

        def flush_due(now: float) -> None:
            # The daemon writes all of a client's 30-second-old blocks
            # in one bulk RPC per client (the paper's piggybacking).
            due_clients: set[int] = set()
            for key, since in list(dirty.items()):
                if now - since >= DELAYED_WRITE_SECONDS:
                    overhead.bytes_transferred += BLOCK_SIZE
                    due_clients.add(key[0])
                    del dirty[key]
            overhead.rpcs += len(due_clients)

        for request in activity.requests:
            flush_due(request.time)
            overhead.requests += 1
            overhead.bytes_requested += request.length
            if not request.is_write:
                overhead.reads += 1
            if uncacheable(request.time):
                # Pass through: exactly the requested bytes, one RPC.
                overhead.bytes_transferred += request.length
                overhead.rpcs += 1
                continue
            # Cacheable: block-grain caching with delayed writes.
            fetched = False
            served_stale = False
            for block in _blocks_in(request.offset, request.length):
                key = (request.client_id, block)
                if request.is_write:
                    stale_marks.discard(key)  # overwritten: no longer stale
                    if key not in cached:
                        cached.add(key)
                    if key not in dirty:
                        dirty[key] = request.time
                    # Other clients' copies become stale; Sprite-style
                    # version checks would flush them at next open --
                    # model by dropping them (unless the message is lost).
                    copies = [
                        k for k in cached
                        if k[1] == block and k[0] != request.client_id
                    ]
                    _invalidate_copies(overhead, cached, stale_marks, copies, loss)
                else:
                    if key in cached:
                        if key in stale_marks:
                            # A hit on a copy a lost invalidation missed;
                            # the resend lands right after this read.
                            served_stale = True
                            cached.discard(key)
                            stale_marks.discard(key)
                        continue
                    overhead.bytes_transferred += BLOCK_SIZE
                    fetched = True
                    cached.add(key)
            if served_stale:
                overhead.stale_reads += 1
            if fetched:
                overhead.rpcs += 1  # one bulk fetch per request
        # Residual dirty blocks eventually flush (bulk, per client).
        overhead.bytes_transferred += BLOCK_SIZE * len(dirty)
        overhead.rpcs += len({key[0] for key in dirty})
        return overhead


class _TokenScheme:
    """The token-based scheme."""

    def run(
        self,
        activity: SharedFileActivity,
        loss: "MessageLossModel | None" = None,
    ) -> SchemeOverhead:
        overhead = SchemeOverhead(name="Token")
        write_holder: int | None = None
        read_holders: set[int] = set()
        cached: set[tuple[int, int]] = set()
        stale_marks: set[tuple[int, int]] = set()
        dirty: dict[tuple[int, int], float] = {}

        def flush_client(client: int) -> None:
            """Recalled write token: flush the client's dirty blocks.
            Piggybacked: one RPC for the recall+flush."""
            client_dirty = [k for k in dirty if k[0] == client]
            if client_dirty:
                overhead.bytes_transferred += BLOCK_SIZE * len(client_dirty)
            for key in client_dirty:
                del dirty[key]
            overhead.rpcs += 1  # the recall (flush piggybacked)

        def flush_due(now: float) -> None:
            due_clients: set[int] = set()
            for key, since in list(dirty.items()):
                if now - since >= DELAYED_WRITE_SECONDS:
                    overhead.bytes_transferred += BLOCK_SIZE
                    due_clients.add(key[0])
                    del dirty[key]
            overhead.rpcs += len(due_clients)

        for request in activity.requests:
            flush_due(request.time)
            overhead.requests += 1
            overhead.bytes_requested += request.length
            client = request.client_id

            if request.is_write:
                if write_holder != client:
                    # Acquire the write token: recall everything else.
                    if write_holder is not None:
                        flush_client(write_holder)
                    for reader in read_holders:
                        if reader != client:
                            overhead.rpcs += 1  # token recall
                    # A write-token grant invalidates other caches
                    # (lossily: a lost invalidation leaves stale copies).
                    stale = [k for k in cached if k[0] != client]
                    _invalidate_copies(overhead, cached, stale_marks, stale, loss)
                    read_holders.clear()
                    write_holder = client
                    overhead.rpcs += 1  # the token request itself
                for block in _blocks_in(request.offset, request.length):
                    key = (client, block)
                    stale_marks.discard(key)
                    cached.add(key)
                    dirty.setdefault(key, request.time)
            else:
                overhead.reads += 1
                holds_token = client == write_holder or client in read_holders
                if not holds_token:
                    if write_holder is not None and write_holder != client:
                        # Downgrade: recall the write token (flush).
                        flush_client(write_holder)
                        read_holders.add(write_holder)
                        write_holder = None
                    read_holders.add(client)
                    overhead.rpcs += 1  # the token request
                fetched = False
                served_stale = False
                for block in _blocks_in(request.offset, request.length):
                    key = (client, block)
                    if key in cached:
                        if key in stale_marks:
                            served_stale = True
                            cached.discard(key)
                            stale_marks.discard(key)
                        continue
                    overhead.bytes_transferred += BLOCK_SIZE
                    fetched = True
                    cached.add(key)
                if served_stale:
                    overhead.stale_reads += 1
                if fetched:
                    overhead.rpcs += 1  # one bulk fetch per request
        overhead.bytes_transferred += BLOCK_SIZE * len(dirty)
        overhead.rpcs += len({key[0] for key in dirty})
        return overhead


@dataclass
class SchemeComparison:
    """Table 12 for one trace (or pooled)."""

    sprite: SchemeOverhead
    modified: SchemeOverhead
    token: SchemeOverhead

    def as_dict(self) -> dict[str, SchemeOverhead]:
        return {"Sprite": self.sprite, "Modified Sprite": self.modified,
                "Token": self.token}


def simulate_schemes(
    activities: Sequence[SharedFileActivity],
    loss_models: "dict[str, MessageLossModel] | None" = None,
) -> SchemeComparison:
    """Run all three schemes over the shared-file activity of a trace.

    ``loss_models`` (keys ``sprite`` / ``modified`` / ``token``) attaches
    an independent message-loss model per scheme for the Table S study;
    with ``None`` no randomness is drawn and the result is Table 12's.
    """
    totals = {
        "sprite": SchemeOverhead(name="Sprite"),
        "modified": SchemeOverhead(name="Modified Sprite"),
        "token": SchemeOverhead(name="Token"),
    }
    runners = {
        "sprite": _WindowedScheme("Sprite", until_all_close=True),
        "modified": _WindowedScheme("Modified Sprite", until_all_close=False),
        "token": _TokenScheme(),
    }
    for activity in activities:
        if not activity.requests:
            continue
        for key, runner in runners.items():
            loss = loss_models.get(key) if loss_models else None
            result = runner.run(activity, loss=loss)
            total = totals[key]
            total.bytes_transferred += result.bytes_transferred
            total.rpcs += result.rpcs
            total.bytes_requested += result.bytes_requested
            total.requests += result.requests
            total.reads += result.reads
            total.stale_reads += result.stale_reads
            total.retransmissions += result.retransmissions
    return SchemeComparison(
        sprite=totals["sprite"],
        modified=totals["modified"],
        token=totals["token"],
    )


def render_table12(per_trace: list[SchemeComparison]) -> str:
    """Render Table 12 with per-trace min-max bands."""
    rows = []
    for key, label in (
        ("sprite", "Sprite (cache disable)"),
        ("modified", "Modified Sprite (re-enable)"),
        ("token", "Token-based"),
    ):
        byte_band, rpc_band = MinMax(), MinMax()
        total_bytes = total_requested = total_rpcs = total_requests = 0
        for comparison in per_trace:
            overhead: SchemeOverhead = getattr(comparison, key)
            byte_band.add(overhead.byte_ratio)
            rpc_band.add(overhead.rpc_ratio)
            total_bytes += overhead.bytes_transferred
            total_requested += overhead.bytes_requested
            total_rpcs += overhead.rpcs
            total_requests += overhead.requests
        byte_ratio = total_bytes / total_requested if total_requested else 0.0
        rpc_ratio = total_rpcs / total_requests if total_requests else 0.0
        rows.append(
            [
                label,
                format_with_range(byte_ratio, *byte_band.as_tuple(), 2),
                format_with_range(rpc_ratio, *rpc_band.as_tuple(), 2),
            ]
        )
    return render_table(
        "Table 12. Cache consistency overhead",
        ["Scheme", "Bytes transferred / requested", "RPCs / request"],
        rows,
        note=(
            "Paper: the three schemes differ little; only the token "
            "approach improves on Sprite, by ~2% in bytes and ~20% in "
            "RPCs, with high variance under fine-grained sharing."
        ),
    )
