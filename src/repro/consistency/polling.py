"""Table 11: stale-data errors under NFS-style polling consistency.

The simulated mechanism (Section 5.5): a client considers its cached
data valid for a fixed interval; on the first access after the interval
expires it re-checks with the server.  New data is written through
almost immediately.  If another client modified the file after this
client last validated, and the validity interval has not expired, the
client reads stale data -- a potential error.

The simulation replays every read/write in the trace (runs and shared
requests alike) in time order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.render import format_with_range, render_table
from repro.common.stats import MinMax
from repro.common.units import HOUR
from repro.trace.records import (
    OpenRecord,
    ReadRunRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    WriteRunRecord,
)


@dataclass
class PollingResult:
    """Stale-data simulation result for one trace."""

    refresh_interval: float
    duration: float = 0.0
    errors: int = 0
    migrated_errors: int = 0
    reads: int = 0
    opens: int = 0
    migrated_opens: int = 0
    users_seen: set[int] = field(default_factory=set)
    users_affected: set[int] = field(default_factory=set)

    @property
    def errors_per_hour(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.errors / (self.duration / HOUR)

    @property
    def fraction_users_affected(self) -> float:
        if not self.users_seen:
            return 0.0
        return len(self.users_affected) / len(self.users_seen)

    @property
    def error_fraction_of_opens(self) -> float:
        return self.errors / self.opens if self.opens else 0.0

    @property
    def migrated_error_fraction(self) -> float:
        if not self.migrated_opens:
            return 0.0
        return self.migrated_errors / self.migrated_opens


def simulate_polling(
    records: Iterable[TraceRecord],
    refresh_interval: float,
    duration: float,
) -> PollingResult:
    """Replay one trace under the polling scheme."""
    result = PollingResult(refresh_interval=refresh_interval, duration=duration)
    #: (file, client) -> time the client last validated with the server.
    validated: dict[tuple[int, int], float] = {}
    #: file -> (time of last write, writing client).
    last_write: dict[int, tuple[float, int]] = {}

    for record in records:
        user = getattr(record, "user_id", None)
        if user is not None and user >= 0:
            result.users_seen.add(user)
        if isinstance(record, OpenRecord):
            result.opens += 1
            if record.migrated:
                result.migrated_opens += 1
        elif isinstance(record, (WriteRunRecord, SharedWriteRecord)):
            # Written through (almost) immediately; the writer's own
            # cache is current as of now.
            last_write[record.file_id] = (record.time, record.client_id)
            validated[(record.file_id, record.client_id)] = record.time
        elif isinstance(record, (ReadRunRecord, SharedReadRecord)):
            result.reads += 1
            key = (record.file_id, record.client_id)
            check_time = validated.get(key)
            written = last_write.get(record.file_id)
            if check_time is None or record.time >= check_time + refresh_interval:
                # Cache expired (or cold): the client re-checks with the
                # server and sees current data.
                validated[key] = record.time
                continue
            if (
                written is not None
                and written[1] != record.client_id
                and written[0] > check_time
            ):
                # Another client wrote since we validated, and our cache
                # has not expired: stale data.
                result.errors += 1
                if record.migrated:
                    result.migrated_errors += 1
                if record.user_id >= 0:
                    result.users_affected.add(record.user_id)
    return result


def render_table11(
    results_60s: list[PollingResult], results_3s: list[PollingResult]
) -> str:
    """Render Table 11: pooled values plus per-trace min-max bands."""

    def row(
        label: str, getter, results_a: list[PollingResult],
        results_b: list[PollingResult], precision: int = 2,
    ) -> list[str]:
        cells = [label]
        for results in (results_a, results_b):
            band = MinMax()
            for result in results:
                band.add(getter(result))
            pooled = (
                sum(getter(r) for r in results) / len(results) if results else 0.0
            )
            cells.append(format_with_range(pooled, *band.as_tuple(), precision))
        return cells

    rows = [
        row("Average errors per hour", lambda r: r.errors_per_hour,
            results_60s, results_3s, 1),
        row("Users affected per 24 hours (%)",
            lambda r: 100 * r.fraction_users_affected, results_60s, results_3s, 1),
        row("File opens with error (%)",
            lambda r: 100 * r.error_fraction_of_opens, results_60s, results_3s, 3),
        row("Migrated file opens with error (%)",
            lambda r: 100 * r.migrated_error_fraction, results_60s, results_3s, 3),
    ]
    return render_table(
        "Table 11. Stale data errors under polling consistency",
        ["Measurement", "60-second interval", "3-second interval"],
        rows,
        note=(
            "Paper: 60-s interval -> 18 errors/hour (8-53), ~48% of users "
            "affected per day, 0.34% of opens; 3-s interval -> 0.59 "
            "errors/hour, ~7% of users, 0.011% of opens."
        ),
    )
