"""Table R: data loss and recovery cost versus writeback age.

The paper's delayed-write policy trades reliability for traffic: "a
delay means that data may be lost in a server or workstation crash"
(Section 5.2), bounded by the 30-second writeback age.  The paper
measures only the healthy cluster; this study injects the crashes and
asks what the policy actually costs -- how many dirty bytes die with a
machine, and what the Sprite reopen protocol pays to rebuild server
state -- as the writeback age is swept from write-through (age 0) to
well past Sprite's 30 seconds.

Each cell summarizes one full cluster replay (same trace, same fault
schedule, different writeback age), pooling the per-client fault
counters with the server's recovery counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.render import format_number, render_table
from repro.common.units import KB
from repro.fs.cluster import ClusterResult


@dataclass
class RecoveryCell:
    """Fault and recovery totals for one replay of the sweep."""

    label: str
    writeback_delay: float
    write_through: bool

    server_crashes: int = 0
    client_crashes: int = 0
    partitions: int = 0
    downtime_seconds: float = 0.0

    #: Dirty data destroyed by a client crash or a version conflict.
    lost_dirty_blocks: int = 0
    lost_dirty_bytes: int = 0
    #: Dirty blocks whose writeback came due during an outage and was
    #: replayed at recovery.
    replayed_blocks: int = 0

    #: Recovery protocol cost.
    reopen_rpcs: int = 0
    revalidate_rpcs: int = 0
    invalidated_blocks: int = 0

    #: Degraded-mode cost while the server was unreachable.
    rpc_retries: int = 0
    rpc_failed_ops: int = 0
    stall_seconds: float = 0.0
    ops_dropped: int = 0

    #: Stale cache hits served while partitioned from the server.
    stale_reads: int = 0
    stale_read_bytes: int = 0

    bytes_written_to_server: int = 0

    @classmethod
    def from_result(cls, label: str, result: ClusterResult) -> "RecoveryCell":
        config = result.config
        cell = cls(
            label=label,
            writeback_delay=config.writeback_delay,
            write_through=config.write_through,
            server_crashes=result.server_counters.crashes,
            downtime_seconds=result.server_counters.downtime_seconds,
        )
        for counters in result.final_counters.values():
            cell.client_crashes += counters.crashes
            cell.partitions += counters.partitions
            cell.lost_dirty_blocks += counters.lost_dirty_blocks
            cell.lost_dirty_bytes += counters.lost_dirty_bytes
            cell.replayed_blocks += counters.blocks_cleaned_recovery
            cell.reopen_rpcs += counters.reopen_rpcs
            cell.revalidate_rpcs += counters.revalidate_rpcs
            cell.invalidated_blocks += counters.blocks_invalidated_on_recovery
            cell.rpc_retries += counters.rpc_retries
            cell.rpc_failed_ops += counters.rpc_failed_ops
            cell.stall_seconds += counters.stall_seconds
            cell.ops_dropped += counters.ops_dropped_while_down
            cell.stale_reads += counters.stale_reads_served
            cell.stale_read_bytes += counters.stale_read_bytes
            cell.bytes_written_to_server += counters.bytes_written_to_server
        return cell

    @property
    def lost_kbytes(self) -> float:
        return self.lost_dirty_bytes / KB

    @property
    def writeback_kbytes(self) -> float:
        return self.bytes_written_to_server / KB


@dataclass
class RecoveryStudyResult:
    """The full sweep: one cell per writeback age, same fault timeline."""

    cells: list[RecoveryCell] = field(default_factory=list)

    def cell_for(self, label: str) -> RecoveryCell:
        for cell in self.cells:
            if cell.label == label:
                return cell
        raise KeyError(f"no sweep cell labelled {label!r}")

    def render(self) -> str:
        headers = ["Measurement"] + [cell.label for cell in self.cells]

        def row(label: str, getter, precision: int = 1) -> list[str]:
            return [label] + [
                format_number(getter(cell), precision) for cell in self.cells
            ]

        rows = [
            row("Dirty Kbytes lost to crashes",
                lambda c: c.lost_kbytes, 1),
            row("Dirty blocks lost", lambda c: float(c.lost_dirty_blocks), 0),
            row("Blocks replayed at recovery",
                lambda c: float(c.replayed_blocks), 0),
            row("Reopen RPCs", lambda c: float(c.reopen_rpcs), 0),
            row("Revalidate RPCs", lambda c: float(c.revalidate_rpcs), 0),
            row("Blocks invalidated (stale after reboot)",
                lambda c: float(c.invalidated_blocks), 0),
            row("RPC retries (backoff)", lambda c: float(c.rpc_retries), 0),
            row("Process-seconds stalled", lambda c: c.stall_seconds, 1),
            row("Stale reads while partitioned",
                lambda c: float(c.stale_reads), 0),
            row("Writeback traffic (Kbytes)",
                lambda c: c.writeback_kbytes, 0),
        ]
        first = self.cells[0] if self.cells else None
        note = None
        if first is not None:
            note = (
                f"Same trace and fault timeline in every column "
                f"({first.server_crashes} server crashes, "
                f"{first.client_crashes} client crashes, "
                f"{first.partitions} partitions; "
                f"{format_number(first.downtime_seconds, 0)} s server "
                f"downtime); only the writeback age varies.  The paper's "
                f"Section 5.2 caveat quantified: delayed writes risk up "
                f"to one writeback-age of work per crash, write-through "
                f"(age 0) loses nothing but pays the full write traffic."
            )
        return render_table(
            "Table R. Data loss and recovery cost vs. writeback age",
            headers,
            rows,
            note=note,
        )


def compute_recovery_study(
    labelled_results: list[tuple[str, ClusterResult]],
) -> RecoveryStudyResult:
    """Pool each replay of the writeback-age sweep into one table cell."""
    return RecoveryStudyResult(
        cells=[
            RecoveryCell.from_result(label, result)
            for label, result in labelled_results
        ]
    )
