"""Sections 5.5 and 5.6: the cache-consistency study.

Three analyses, all trace-driven:

* :mod:`repro.consistency.actions` -- Table 10, how often Sprite's
  consistency machinery is invoked (concurrent write-sharing and
  server recalls, as fractions of file opens);
* :mod:`repro.consistency.polling` -- Table 11, how many stale-data
  errors a weaker, NFS-style polling scheme would produce at 3-second
  and 60-second refresh intervals;
* :mod:`repro.consistency.schemes` -- Table 12, the byte and RPC
  overheads of three consistency algorithms (Sprite's cache-disable
  scheme, a modified scheme that re-enables caching when sharing ends,
  and a token-based scheme) replayed over the accesses to write-shared
  files;
* :mod:`repro.consistency.recovery` -- Table R, the cost of the
  30-second delayed-write policy under injected crashes: dirty bytes
  lost and reopen-protocol traffic as the writeback age is swept;
* :mod:`repro.consistency.lossy` -- Table S, the three schemes (and the
  full cluster's at-most-once transport) under a lossy network: stale
  reads from lost invalidations versus the retransmission/stall cost of
  reliable delivery.
"""

from repro.consistency.events import SharedFileActivity, extract_shared_activity
from repro.consistency.actions import ConsistencyActionResult, compute_actions
from repro.consistency.polling import PollingResult, simulate_polling
from repro.consistency.recovery import (
    RecoveryCell,
    RecoveryStudyResult,
    compute_recovery_study,
)
from repro.consistency.schemes import (
    SchemeOverhead,
    SchemeComparison,
    simulate_schemes,
)
from repro.consistency.lossy import (
    LossRateCell,
    LossStudyResult,
    MessageLossModel,
    loss_models_for,
)

__all__ = [
    "SharedFileActivity",
    "extract_shared_activity",
    "ConsistencyActionResult",
    "compute_actions",
    "PollingResult",
    "simulate_polling",
    "RecoveryCell",
    "RecoveryStudyResult",
    "compute_recovery_study",
    "SchemeOverhead",
    "SchemeComparison",
    "simulate_schemes",
    "LossRateCell",
    "LossStudyResult",
    "MessageLossModel",
    "loss_models_for",
]
