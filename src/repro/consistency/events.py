"""Extraction of shared-file request streams from a trace.

The paper logged "every read or write request ... for the files
undergoing concurrent write-sharing" (easy, because uncacheable
requests all pass through the server) and fed those logs to the
Section 5.6 simulators.  This module rebuilds that input: for every
file that ever experienced write-sharing it collects a time-ordered
request stream of (time, client, user, offset, length, is_write),
combining the fine-grained shared-request records with the coalesced
runs of non-overlapping (solo) accesses to the same files, while
dropping runs that duplicate shared requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.records import (
    CloseRecord,
    OpenRecord,
    ReadRunRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    WriteRunRecord,
    AccessMode,
)


@dataclass(frozen=True)
class SharedRequest:
    """One application request to a write-shared file."""

    time: float
    client_id: int
    user_id: int
    offset: int
    length: int
    is_write: bool
    migrated: bool = False


@dataclass
class OpenInterval:
    """One client's open..close window on a shared file."""

    client_id: int
    user_id: int
    start: float
    end: float
    writer: bool


@dataclass
class SharedFileActivity:
    """Everything the Section 5.6 simulators need for one file."""

    file_id: int
    requests: list[SharedRequest] = field(default_factory=list)
    intervals: list[OpenInterval] = field(default_factory=list)

    @property
    def requested_bytes(self) -> int:
        return sum(r.length for r in self.requests)

    def sharing_windows(self, until_all_close: bool) -> list[tuple[float, float]]:
        """Time windows during which the file is uncacheable.

        A window opens when the file is open on more than one client
        with at least one writer.  With ``until_all_close`` (Sprite's
        base scheme) it closes when *every* client has closed the file;
        otherwise (the modified scheme) it closes as soon as the
        concurrent write-sharing condition stops holding.
        """
        points: list[tuple[float, int, OpenInterval]] = []
        for interval in self.intervals:
            points.append((interval.start, 1, interval))
            points.append((interval.end, -1, interval))
        points.sort(key=lambda p: (p[0], -p[1]))

        open_now: list[OpenInterval] = []
        windows: list[tuple[float, float]] = []
        window_start: float | None = None
        for time, kind, interval in points:
            if kind == 1:
                open_now.append(interval)
            else:
                open_now.remove(interval)
            clients = {i.client_id for i in open_now}
            writers = [i for i in open_now if i.writer]
            sharing = bool(writers) and len(clients) > 1
            if window_start is None and sharing:
                window_start = time
            elif window_start is not None:
                if until_all_close:
                    if not open_now:
                        windows.append((window_start, time))
                        window_start = None
                elif not sharing:
                    windows.append((window_start, time))
                    window_start = None
        if window_start is not None:
            windows.append((window_start, float("inf")))
        return windows


def extract_shared_activity(
    records: Iterable[TraceRecord],
) -> list[SharedFileActivity]:
    """Build per-file activity for every file with shared requests."""
    shared_files: set[int] = set()
    requests_by_file: dict[int, list[SharedRequest]] = {}
    intervals_by_file: dict[int, list[OpenInterval]] = {}
    open_episodes: dict[int, tuple[OpenRecord, list[TraceRecord]]] = {}
    records = list(records)

    for record in records:
        if isinstance(record, (SharedReadRecord, SharedWriteRecord)):
            shared_files.add(record.file_id)

    # Collect open intervals and runs for those files.
    run_episodes: dict[int, list[TraceRecord]] = {}
    episode_opens: dict[int, OpenRecord] = {}
    for record in records:
        if isinstance(record, OpenRecord) and record.file_id in shared_files:
            episode_opens[record.open_id] = record
            run_episodes[record.open_id] = []
        elif isinstance(record, (ReadRunRecord, WriteRunRecord)):
            if record.open_id in run_episodes:
                run_episodes[record.open_id].append(record)
        elif isinstance(record, CloseRecord) and record.open_id in episode_opens:
            open_record = episode_opens.pop(record.open_id)
            file_id = open_record.file_id
            runs = run_episodes.pop(record.open_id, [])
            intervals_by_file.setdefault(file_id, []).append(
                OpenInterval(
                    client_id=open_record.client_id,
                    user_id=open_record.user_id,
                    start=open_record.time,
                    end=record.time,
                    writer=open_record.mode is not AccessMode.READ,
                )
            )
            # Keep the runs; duplicates of shared requests are dropped
            # later based on the sharing windows.
            open_episodes[record.open_id] = (open_record, runs)
        elif isinstance(record, (SharedReadRecord, SharedWriteRecord)):
            requests_by_file.setdefault(record.file_id, []).append(
                SharedRequest(
                    time=record.time,
                    client_id=record.client_id,
                    user_id=record.user_id,
                    offset=record.offset,
                    length=record.length,
                    is_write=isinstance(record, SharedWriteRecord),
                    migrated=record.migrated,
                )
            )

    activities: list[SharedFileActivity] = []
    for file_id in sorted(shared_files):
        activity = SharedFileActivity(
            file_id=file_id,
            requests=requests_by_file.get(file_id, []),
            intervals=intervals_by_file.get(file_id, []),
        )
        windows = activity.sharing_windows(until_all_close=True)

        def in_window(time: float) -> bool:
            return any(start <= time <= end for start, end in windows)

        # Solo runs on shared files become coarse requests -- unless
        # they fall inside a sharing window, where the fine-grained
        # shared records already cover them.
        for open_record, runs in open_episodes.values():
            if open_record.file_id != file_id:
                continue
            for run in runs:
                if in_window(run.time):
                    continue
                activity.requests.append(
                    SharedRequest(
                        time=run.time,
                        client_id=run.client_id,
                        user_id=run.user_id,
                        offset=run.offset,
                        length=run.length,
                        is_write=isinstance(run, WriteRunRecord),
                        migrated=run.migrated,
                    )
                )
        activity.requests.sort(key=lambda r: r.time)
        activities.append(activity)
    return activities
