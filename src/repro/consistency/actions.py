"""Table 10: how often consistency actions are invoked.

Both measures are fractions of file opens (directory opens excluded;
the trace format only records file opens):

* **concurrent write-sharing** -- opens that result in a file being
  open on multiple machines with at least one writer;
* **server recall** -- opens for which the file's current data resides
  in another client's cache so the server must retrieve it.  Like the
  paper's number, this is an upper bound: the server does not know
  whether the last writer already flushed via the 30-second delay, so
  every open within the flush horizon of another client's write counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.render import format_with_range, render_table
from repro.common.stats import MinMax
from repro.common.units import DELAYED_WRITE_SECONDS, WRITEBACK_SCAN_INTERVAL
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    OpenRecord,
    TraceRecord,
    WriteRunRecord,
)


@dataclass
class ConsistencyActionResult:
    """Table 10 for one trace."""

    opens: int = 0
    write_sharing_opens: int = 0
    recall_opens: int = 0

    @property
    def write_sharing_fraction(self) -> float:
        return self.write_sharing_opens / self.opens if self.opens else 0.0

    @property
    def recall_fraction(self) -> float:
        return self.recall_opens / self.opens if self.opens else 0.0


def compute_actions(
    records: Iterable[TraceRecord],
    flush_horizon: float = DELAYED_WRITE_SECONDS + WRITEBACK_SCAN_INTERVAL,
) -> ConsistencyActionResult:
    """Sweep one trace and count consistency actions."""
    result = ConsistencyActionResult()
    # per-file open state: client -> open count, and writer clients
    readers: dict[int, dict[int, int]] = {}
    writers: dict[int, dict[int, int]] = {}
    open_mode: dict[int, tuple[int, int, bool]] = {}  # open_id -> (file, client, writer)
    last_write: dict[int, tuple[int, float]] = {}  # file -> (client, time)

    for record in records:
        if isinstance(record, OpenRecord):
            result.opens += 1
            file_id = record.file_id
            is_writer = record.mode is not AccessMode.READ

            # Server recall check: data dirty on another client?
            written = last_write.get(file_id)
            if (
                written is not None
                and written[0] != record.client_id
                and record.time - written[1] <= flush_horizon
            ):
                result.recall_opens += 1
                last_write.pop(file_id, None)  # recalled: now clean

            table = writers if is_writer else readers
            by_client = table.setdefault(file_id, {})
            by_client[record.client_id] = by_client.get(record.client_id, 0) + 1
            open_mode[record.open_id] = (file_id, record.client_id, is_writer)

            clients = set(readers.get(file_id, {})) | set(writers.get(file_id, {}))
            if writers.get(file_id) and len(clients) > 1:
                result.write_sharing_opens += 1
        elif isinstance(record, CloseRecord):
            state = open_mode.pop(record.open_id, None)
            if state is None:
                continue
            file_id, client_id, is_writer = state
            table = writers if is_writer else readers
            by_client = table.get(file_id, {})
            count = by_client.get(client_id, 0)
            if count <= 1:
                by_client.pop(client_id, None)
                if not by_client:
                    table.pop(file_id, None)
            else:
                by_client[client_id] = count - 1
        elif isinstance(record, WriteRunRecord):
            last_write[record.file_id] = (record.client_id, record.time)
    return result


def render_table10(per_trace: list[ConsistencyActionResult]) -> str:
    """Render Table 10 with the pooled value and per-trace min-max."""
    opens = sum(r.opens for r in per_trace)
    sharing = sum(r.write_sharing_opens for r in per_trace)
    recalls = sum(r.recall_opens for r in per_trace)
    sharing_band = MinMax()
    recall_band = MinMax()
    for result in per_trace:
        sharing_band.add(100 * result.write_sharing_fraction)
        recall_band.add(100 * result.recall_fraction)
    rows = [
        [
            "Concurrent write-sharing",
            format_with_range(
                100 * sharing / opens if opens else 0.0, *sharing_band.as_tuple()
            ),
        ],
        [
            "Server recall",
            format_with_range(
                100 * recalls / opens if opens else 0.0, *recall_band.as_tuple()
            ),
        ],
    ]
    return render_table(
        "Table 10. Consistency action frequency (percent of file opens)",
        ["Type of action", "File opens (%)"],
        rows,
        note="Paper: concurrent write-sharing 0.34 (0.18-0.56); server recall 1.7 (0.79-3.35).",
    )
