"""The discrete-event engine: a clock plus a heap of pending callbacks.

Events scheduled at the same timestamp fire in scheduling order (FIFO),
which keeps runs deterministic regardless of heap tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SchedulingError

Callback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Engine.schedule`; lets the creator cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Engine:
    """A monotonic simulated clock driving timestamped callbacks."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far."""
        return self._events_run

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time}; the clock is already at {self._now}"
            )
        event = _ScheduledEvent(
            time=time, sequence=next(self._sequence), callback=callback
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Fire all events with time <= ``end_time``, then advance the
        clock to exactly ``end_time``."""
        if end_time < self._now:
            raise SchedulingError(
                f"cannot run until {end_time}; the clock is already at {self._now}"
            )
        while self._heap and self._heap[0].time <= end_time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_run += 1
            event.callback()
        self._now = end_time

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Fire every pending event; guard against runaway self-scheduling."""
        fired = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_run += 1
            event.callback()
            fired += 1
            if fired > max_events:
                raise SchedulingError(
                    f"run_all exceeded {max_events} events; runaway timer?"
                )

    def advance_to(self, time: float) -> None:
        """Move the clock forward without firing events (used by
        trace-driven components that interleave with the event loop)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot move the clock backwards from {self._now} to {time}"
            )
        if self._heap and not all(e.cancelled for e in self._heap):
            next_time = min(e.time for e in self._heap if not e.cancelled)
            if next_time < time:
                raise SchedulingError(
                    f"advance_to({time}) would skip an event at {next_time}; "
                    "use run_until instead"
                )
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.3f}, pending={self.pending})"
