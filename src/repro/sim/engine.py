"""The discrete-event engine: a clock plus a heap of pending callbacks.

Events scheduled at the same timestamp fire in scheduling order (FIFO),
which keeps runs deterministic regardless of heap tie-breaking.

Heap entries are plain ``(time, sequence, event)`` tuples, so every
heap compare is a C-level tuple comparison -- the sequence number is
unique, so the event object itself is never compared.  (The engine used
to order dataclass instances; at millions of events the generated
Python ``__lt__`` was a measurable slice of replay wall clock.)

Cancellation is lazy: a cancelled event stays in the heap (marked) and
is discarded when it reaches the top, so ``cancel``, ``pending``, and
``advance_to`` are all O(1) apart from amortized heap maintenance.  A
live-event counter replaces the old full-heap scans, and the heap is
compacted when cancelled entries come to dominate it, so a workload
that schedules and cancels millions of timers (every open schedules a
writeback, most are cancelled by the close) stays linear.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SchedulingError

Callback = Callable[[], None]

#: Compact the heap when it holds more than this many cancelled entries
#: *and* they outnumber the live ones (amortized O(1) per cancel).
_COMPACT_MIN_STALE = 64


@dataclass(slots=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: True once the event has left the heap (fired or discarded); a
    #: cancel after that point must not touch the live count.
    done: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Engine.schedule`; lets the creator cancel."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: _ScheduledEvent, engine: "Engine") -> None:
        self._event = event
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op once the
        event has already fired."""
        event = self._event
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._engine._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Engine:
    """A monotonic simulated clock driving timestamped callbacks."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        #: Min-heap of ``(time, sequence, _ScheduledEvent)`` tuples.
        self._heap: list[tuple[float, int, _ScheduledEvent]] = []
        #: Monotone schedule counter: the next event's tie-break sequence
        #: number, and a cheap change detector for "did anything get
        #: scheduled since I last looked?" (the replay loop caches
        #: :meth:`next_event_time` against it).
        self._sequence = 0
        self._events_run = 0
        self._live = 0  # scheduled, not yet fired, not cancelled
        self._stale = 0  # cancelled events still sitting in the heap
        #: Optional observability hook (repro.obs): notified after each
        #: fired event.  None by default -- one predictable branch per
        #: event is the whole cost of the inert path.
        self._observer = None

    def attach_observer(self, observer) -> None:
        """Attach an object with ``on_engine_event(time)`` (repro.obs)."""
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.  O(1)."""
        return self._live

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far."""
        return self._events_run

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time}; the clock is already at {self._now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = _ScheduledEvent(time=time, sequence=sequence, callback=callback)
        heapq.heappush(self._heap, (time, sequence, event))
        self._live += 1
        return EventHandle(event, self)

    def schedule_after(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def next_event_time(self) -> float | None:
        """The timestamp of the next live event, or None when idle.

        O(1) apart from purging cancelled entries off the top.  The
        replay loop uses it to skip :meth:`run_until` entirely between
        trace records that fall inside the same quiet stretch.
        """
        self._purge_cancelled_top()
        if not self._heap:
            return None
        return self._heap[0][0]

    def _note_cancelled(self) -> None:
        """Bookkeeping for a cancel; compacts when stale entries dominate."""
        self._live -= 1
        self._stale += 1
        if self._stale > _COMPACT_MIN_STALE and self._stale > self._live:
            survivors = []
            for entry in self._heap:
                event = entry[2]
                if event.cancelled:
                    event.done = True
                else:
                    survivors.append(entry)
            self._heap = survivors
            heapq.heapify(self._heap)
            self._stale = 0

    def _pop_next(self) -> _ScheduledEvent | None:
        """Pop the next live event, discarding cancelled ones."""
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            event.done = True
            if event.cancelled:
                self._stale -= 1
                continue
            self._live -= 1
            return event
        return None

    def _purge_cancelled_top(self) -> None:
        """Drop cancelled events sitting at the top of the heap."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2].done = True
            self._stale -= 1

    def run_until(self, end_time: float) -> None:
        """Fire all events with time <= ``end_time``, then advance the
        clock to exactly ``end_time``."""
        if end_time < self._now:
            raise SchedulingError(
                f"cannot run until {end_time}; the clock is already at {self._now}"
            )
        heap = self._heap
        while True:
            self._purge_cancelled_top()
            if not heap or heap[0][0] > end_time:
                break
            event = heapq.heappop(heap)[2]
            event.done = True
            self._live -= 1
            self._now = event.time
            self._events_run += 1
            event.callback()
            if self._observer is not None:
                self._observer.on_engine_event(event.time)
        self._now = end_time

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Fire every pending event; guard against runaway self-scheduling.

        Exactly ``max_events`` callbacks may fire; the guard raises the
        moment one more would run (it used to let ``max_events + 1``
        through before noticing).
        """
        fired = 0
        while True:
            event = self._pop_next()
            if event is None:
                break
            if fired >= max_events:
                raise SchedulingError(
                    f"run_all exceeded {max_events} events; runaway timer?"
                )
            fired += 1
            self._now = event.time
            self._events_run += 1
            event.callback()
            if self._observer is not None:
                self._observer.on_engine_event(event.time)

    def advance_to(self, time: float) -> None:
        """Move the clock forward without firing events (used by
        trace-driven components that interleave with the event loop)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot move the clock backwards from {self._now} to {time}"
            )
        self._purge_cancelled_top()
        if self._heap and self._heap[0][0] < time:
            raise SchedulingError(
                f"advance_to({time}) would skip an event at "
                f"{self._heap[0][0]}; use run_until instead"
            )
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.3f}, pending={self.pending})"
