"""Recurring timers built on the event engine.

Sprite's writeback daemon wakes every 5 seconds; the counter collector
snapshots at a regular period.  Both used to be independent
:class:`RecurringTimer`\\ s -- one heap event per daemon per interval,
which at cluster scale means the heap churns tens of thousands of
events per simulated minute just to wake 40 identical scans.

:class:`SharedTicker` coalesces them: one engine event per period,
fanned out to every subscriber in subscription order.  Because each
old per-client timer rescheduled itself immediately after its callback,
the per-tick FIFO order of N sibling timers was exactly their creation
order -- which is the ticker's subscription order, so coalescing is
byte-identical to the per-client timers it replaces.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import SchedulingError
from repro.sim.engine import Engine, EventHandle


class RecurringTimer:
    """Fires a callback every ``period`` seconds until stopped.

    The first firing happens ``period`` seconds after :meth:`start`
    (matching a daemon that sleeps before its first scan) unless
    ``fire_immediately`` is set.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[], None],
        fire_immediately: bool = False,
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"timer period must be positive, got {period}")
        self._engine = engine
        self.period = period
        self._callback = callback
        self._fire_immediately = fire_immediately
        self._handle: EventHandle | None = None
        self._running = False
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin firing.  Starting an already-running timer is an error."""
        if self._running:
            raise SchedulingError("timer is already running")
        self._running = True
        delay = 0.0 if self._fire_immediately else self.period
        self._handle = self._engine.schedule_after(delay, self._fire)

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self._callback()
        if self._running:
            self._handle = self._engine.schedule_after(self.period, self._fire)


class TickSubscription:
    """One subscriber's registration on a :class:`SharedTicker`."""

    __slots__ = ("_callback", "active")

    def __init__(self, callback: Callable[[], None]) -> None:
        self._callback = callback
        self.active = True

    def cancel(self) -> None:
        """Stop receiving ticks.  Idempotent."""
        self.active = False

    #: Alias so a subscription drops in where a RecurringTimer was held.
    stop = cancel

    @property
    def running(self) -> bool:
        return self.active


class SharedTicker:
    """One engine event per period, fanned out to many subscribers.

    Subscribers fire in subscription order on every tick.  The first
    tick lands ``period`` seconds after the first subscription (the
    same sleep-before-first-scan phase a :class:`RecurringTimer` has);
    if every subscriber cancels, the pending tick is dropped, and a
    later subscription re-arms the ticker from the current time.

    Tick callbacks must not schedule events at exactly the next tick's
    timestamp -- with per-subscriber timers such an event would have
    interleaved between sibling timers, while here it lands before the
    whole batch.  No engine-driven daemon in the simulator does this
    (ticks land on multiples of their period; ad-hoc events carry
    random float timestamps).
    """

    def __init__(self, engine: Engine, period: float) -> None:
        if period <= 0:
            raise SchedulingError(f"ticker period must be positive, got {period}")
        self._engine = engine
        self.period = period
        self._subscriptions: list[TickSubscription] = []
        self._handle: EventHandle | None = None
        self.fire_count = 0

    @property
    def subscriber_count(self) -> int:
        return sum(1 for sub in self._subscriptions if sub.active)

    def subscribe(self, callback: Callable[[], None]) -> TickSubscription:
        """Add a per-tick callback; returns a cancellable subscription."""
        subscription = TickSubscription(callback)
        self._subscriptions.append(subscription)
        if self._handle is None:
            self._handle = self._engine.schedule_after(self.period, self._fire)
        return subscription

    def _fire(self) -> None:
        self.fire_count += 1
        for subscription in list(self._subscriptions):
            if subscription.active:
                subscription._callback()
        self._subscriptions = [sub for sub in self._subscriptions if sub.active]
        if self._subscriptions:
            self._handle = self._engine.schedule_after(self.period, self._fire)
        else:
            self._handle = None
