"""Recurring timers built on the event engine.

Sprite's writeback daemon wakes every 5 seconds; the counter collector
snapshots at a regular period.  Both are :class:`RecurringTimer`\\ s.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import SchedulingError
from repro.sim.engine import Engine, EventHandle


class RecurringTimer:
    """Fires a callback every ``period`` seconds until stopped.

    The first firing happens ``period`` seconds after :meth:`start`
    (matching a daemon that sleeps before its first scan) unless
    ``fire_immediately`` is set.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[], None],
        fire_immediately: bool = False,
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"timer period must be positive, got {period}")
        self._engine = engine
        self.period = period
        self._callback = callback
        self._fire_immediately = fire_immediately
        self._handle: EventHandle | None = None
        self._running = False
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin firing.  Starting an already-running timer is an error."""
        if self._running:
            raise SchedulingError("timer is already running")
        self._running = True
        delay = 0.0 if self._fire_immediately else self.period
        self._handle = self._engine.schedule_after(delay, self._fire)

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self._callback()
        if self._running:
            self._handle = self._engine.schedule_after(self.period, self._fire)
