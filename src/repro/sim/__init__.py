"""A small discrete-event simulation engine.

The Sprite cluster simulator (:mod:`repro.fs`) needs a simulated clock,
one-shot events (a block becoming 30 seconds dirty), and recurring timers
(the 5-second writeback scan, the periodic counter snapshots).  The engine
here is deliberately minimal: a heap of timestamped callbacks and a
monotonic clock.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.timers import RecurringTimer, SharedTicker, TickSubscription

__all__ = [
    "Engine",
    "EventHandle",
    "RecurringTimer",
    "SharedTicker",
    "TickSubscription",
]
