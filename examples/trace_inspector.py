#!/usr/bin/env python3
"""Trace inspector: write a trace to disk, read it back, and profile it.

Demonstrates the trace tooling the way a user with their own traces
would drive it: the JSON-lines serialization, the multi-server merge,
the filters (dropping tracer self-traffic), the 48-hour split, and the
one-pass summarizer.

Run:  python examples/trace_inspector.py [path.jsonl.gz]
"""

import sys
import tempfile
from pathlib import Path

from repro.common.units import HOUR
from repro.trace import (
    drop_self_traffic,
    merge_streams,
    read_trace,
    validate_stream,
    write_trace,
)
from repro.trace.tools import split_by_duration, summarize
from repro.workload import STANDARD_PROFILES, generate_trace


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "sprite-trace1.jsonl.gz"

    print(f"Generating trace1 (scale 0.05) and writing {path} ...")
    trace = generate_trace(STANDARD_PROFILES[0], seed=7, scale=0.05)
    count = write_trace(path, trace.records)
    print(f"  wrote {count} records "
          f"({path.stat().st_size / 1024:.0f} KB compressed)")
    print()

    # Read back, filter, validate, summarize: the standard pipeline.
    records = list(drop_self_traffic(read_trace(path)))
    report = validate_stream(records)
    print(f"Validation: {report.opens} opens, {report.closes} closes, "
          f"{len(report.unclosed_open_ids)} cut by the window")
    print()
    print(summarize(records).render())
    print()

    # Per-server streams merge back into one ordered stream.
    by_server: dict[int, list] = {}
    for record in records:
        by_server.setdefault(record.server_id, []).append(record)
    merged = list(merge_streams(by_server.values()))
    print(f"Merged {len(by_server)} per-server streams back into "
          f"{len(merged)} ordered records "
          f"(order preserved: {[r.time for r in merged] == sorted(r.time for r in merged)})")
    print()

    # The paper's 48h -> 2 x 24h split, here 24h -> 2 x 12h.
    halves = list(split_by_duration(records, 12 * HOUR))
    for index, piece in halves:
        piece_summary = summarize(piece)
        print(f"half {index}: {piece_summary.records} records, "
              f"{len(piece_summary.users)} users, "
              f"{piece_summary.bytes_read / 2**20:.0f} MB read")


if __name__ == "__main__":
    main()
