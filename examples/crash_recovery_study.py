#!/usr/bin/env python3
"""Crash recovery study: what the 30-second delayed write actually risks.

Section 5.2 of the paper notes that Sprite's delayed-write policy
"means that data may be lost in a server or workstation crash", but the
measured cluster never crashed on camera.  This example injects the
crashes: it replays one day-long trace under a deterministic fault
schedule (server crashes, client reboots, network partitions) while
sweeping the writeback age, then prints Table R -- dirty bytes lost and
recovery-protocol cost per column -- plus a scripted single-crash
walkthrough of the reopen protocol.

Run:  python examples/crash_recovery_study.py
"""

from repro.consistency import compute_recovery_study
from repro.experiments import ExperimentContext, run_experiment
from repro.fs import (
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    SERVER_TARGET,
)
from repro.workload import STANDARD_PROFILES, generate_trace


def sweep() -> None:
    """The registry's Table R experiment: one fault timeline, five
    writeback ages from write-through to twice Sprite's 30 seconds."""
    ctx = ExperimentContext(scale=0.05, seed=1991)
    print("Sweeping writeback age under a fixed fault schedule ...")
    result = run_experiment("faults", ctx)
    print()
    print(result.rendered)
    print()
    print(f"Paper expectation: {result.paper_expectation}")


def scripted_crash() -> None:
    """One scripted server crash, step by step.

    The explicit :class:`FaultSchedule` drops the server for two
    minutes in the middle of the busiest hour; the counters afterwards
    show the reopen protocol's work.
    """
    print("Replaying one scripted two-minute server outage ...")
    trace = generate_trace(STANDARD_PROFILES[0], seed=1991, scale=0.05)
    # Crash at the median record's timestamp: the middle of the actual
    # activity, not of the (mostly idle) 24-hour clock.
    crash_at = trace.records[len(trace.records) // 2].time
    schedule = FaultSchedule(
        [FaultEvent(crash_at, FaultKind.SERVER_CRASH, SERVER_TARGET, 120.0)]
    )
    config = ClusterConfig(client_count=4)
    cluster = Cluster(config, seed=1991, fault_schedule=schedule)
    result = cluster.replay(trace.records, trace.duration)

    study = compute_recovery_study([("one crash", result)])
    cell = study.cells[0]
    server = result.server_counters
    print()
    print(f"  crash at t={crash_at:.0f}s, server down 120 s")
    print(f"  reopen RPCs (clients re-registering opens): {server.reopen_rpcs}")
    print(f"  revalidate RPCs (version-checking caches):  {server.revalidate_rpcs}")
    print(f"  cache blocks invalidated as stale:          {cell.invalidated_blocks}")
    print(f"  dirty blocks replayed at recovery:          {cell.replayed_blocks}")
    print(f"  RPC retries while the server was down:      {cell.rpc_retries}")
    print(f"  process-seconds stalled:                    {cell.stall_seconds:.1f}")
    print(f"  dirty Kbytes lost (server crash loses no"
          f" client data):                              {cell.lost_kbytes:.1f}")


def main() -> None:
    sweep()
    print()
    scripted_crash()


if __name__ == "__main__":
    main()
