#!/usr/bin/env python3
"""Quickstart: generate a synthetic Sprite trace and analyze it.

This walks the core public API end to end:

1. generate one of the study's eight 24-hour traces (population-scaled
   down so it runs in a couple of seconds);
2. run the Section 4 analyses on it (access patterns, run lengths,
   open times);
3. replay it through the Sprite cluster simulator and read the cache
   counters (Section 5);
4. print everything next to the paper's reported values.

Run:  python examples/quickstart.py
"""

from repro.analysis import (
    assemble_accesses,
    compute_access_patterns,
    compute_open_times,
    compute_run_lengths,
    compute_table1,
)
from repro.analysis.access_patterns import render_table3
from repro.analysis.table1 import render_table1
from repro.caching import compute_effectiveness, machine_days
from repro.fs import ClusterConfig, run_cluster_on_trace
from repro.workload import STANDARD_PROFILES, generate_trace


def main() -> None:
    # 1. One 24-hour trace at 10% of the paper's user population.
    profile = STANDARD_PROFILES[0]  # "trace1", 1/24/91
    print(f"Generating {profile.name} (scale 0.1) ...")
    trace = generate_trace(profile, seed=1991, scale=0.1)
    print(f"  {len(trace.records)} records from {len(trace.users)} users, "
          f"validation balanced={trace.validation.balanced}")
    print()

    # 2. Section 4 analyses.
    stats = compute_table1(trace.name, trace.records, trace.duration)
    print(render_table1([stats]))
    print()

    accesses = list(assemble_accesses(trace.records))
    patterns = compute_access_patterns(accesses)
    print(render_table3(patterns, [patterns]))
    print()

    runs = compute_run_lengths(accesses)
    print(f"Sequential runs under 10 KB: "
          f"{100 * runs.fraction_of_runs_below_10kb:.1f}%  (paper: ~80%)")
    print(f"Bytes moved in runs over 1 MB: "
          f"{100 * runs.fraction_of_bytes_in_runs_over_1mb:.1f}%  (paper: >=10%)")

    opens = compute_open_times(accesses)
    print(f"Opens under a quarter second: "
          f"{100 * opens.fraction_below_quarter_second:.1f}%  (paper: ~75%)")
    print()

    # 3. Replay through the cluster simulator.
    print("Replaying through the Sprite cluster simulator ...")
    config = ClusterConfig(client_count=4)
    result = run_cluster_on_trace(trace.records, trace.duration, config, seed=7)
    effectiveness = compute_effectiveness(machine_days([result]))
    print(f"  read miss ratio : {100 * effectiveness.read_miss.mean:.1f}%  "
          f"(paper: 41.4%)")
    print(f"  writeback ratio : {100 * effectiveness.writeback_traffic.mean:.1f}%  "
          f"(paper: 88.4%)")
    print(f"  server recalls  : {result.server_counters.recalls_issued}")


if __name__ == "__main__":
    main()
