#!/usr/bin/env python3
"""Then vs now: the 1985 BSD study against the 1991 reproduction.

The paper's narrative device is comparison with Ousterhout et al.'s
1985 BSD trace study.  This example measures our synthetic 1991
workload and prints the paper's headline comparisons: throughput grew
~20x while compute power grew 200-500x, sequentiality went up, large
files grew 10x, open times merely halved, and caches miss ~4x more
than the BSD study predicted.

It finishes with the Section 5.3 network analysis: why Sprite argued
for memory over local disks.

Run:  python examples/bsd_then_and_now.py
"""

from repro.analysis.bsd_comparison import (
    build_comparisons,
    render_then_vs_now,
    throughput_vs_compute_gap,
)
from repro.experiments import ExperimentContext, run_experiment
from repro.fs.latency import analyze_paging_latency


def main() -> None:
    ctx = ExperimentContext(scale=0.1, seed=1991)
    print("Running the Section 4 and 5 pipelines (scale 0.1) ...")
    table2 = run_experiment("table2", ctx).metrics
    table3 = run_experiment("table3", ctx).metrics
    figure3 = run_experiment("figure3", ctx).metrics
    table6 = run_experiment("table6", ctx).metrics
    print()

    rows = build_comparisons(
        throughput_10min_kbs=table2["avg_user_throughput_10min_kbs"],
        throughput_10s_kbs=table2["avg_user_throughput_10s_kbs"],
        opens_below_quarter_second=figure3["opens_below_quarter_second"],
        whole_file_read_fraction=table3["ro_whole_file_share"],
        sequential_bytes_fraction=table3["sequential_bytes_fraction"],
        read_miss_ratio=table6["read_miss_ratio"],
    )
    print(render_then_vs_now(rows))
    print()
    gap = throughput_vs_compute_gap(table2["avg_user_throughput_10min_kbs"])
    print(f"Compute grew {gap:.0f}x faster than file throughput: users "
          f"bought latency, not volume.")
    print()

    analysis = analyze_paging_latency(ctx.cluster_results())
    print(analysis.render())


if __name__ == "__main__":
    main()
