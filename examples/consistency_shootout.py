#!/usr/bin/env python3
"""Cache-consistency shootout: Sections 5.5 and 5.6 end to end.

Generates the study's traces, then answers the paper's three
consistency questions:

1. How often is consistency machinery invoked at all?  (Table 10)
2. What would a weaker, NFS-style polling scheme cost users in stale
   reads, at 60-second and 3-second refresh intervals?  (Table 11)
3. What do three "real" consistency algorithms cost on the accesses to
   write-shared files -- Sprite's cache-disable scheme, a variant that
   re-enables caching as soon as sharing stops, and a token scheme?
   (Table 12)

Run:  python examples/consistency_shootout.py
"""

from repro.consistency import (
    compute_actions,
    extract_shared_activity,
    simulate_polling,
    simulate_schemes,
)
from repro.consistency.actions import render_table10
from repro.consistency.polling import render_table11
from repro.consistency.schemes import render_table12
from repro.workload import generate_standard_traces


def main() -> None:
    print("Generating the study's eight traces (scale 0.1) ...")
    traces = generate_standard_traces(scale=0.1, seed=1991)
    print(f"  {sum(len(t.records) for t in traces)} records total")
    print()

    # Table 10 -- how often does Sprite act?
    actions = [compute_actions(t.records) for t in traces]
    print(render_table10(actions))
    print()

    # Table 11 -- what would polling cost?
    results_60 = [simulate_polling(t.records, 60.0, t.duration) for t in traces]
    results_3 = [simulate_polling(t.records, 3.0, t.duration) for t in traces]
    print(render_table11(results_60, results_3))
    print()

    # Table 12 -- scheme overheads on write-shared activity.
    comparisons = [
        simulate_schemes(extract_shared_activity(t.records)) for t in traces
    ]
    print(render_table12(comparisons))
    print()

    total_errors_60 = sum(r.errors for r in results_60)
    total_errors_3 = sum(r.errors for r in results_3)
    print("Takeaways (matching the paper's):")
    print(f"  * Write-sharing is rare, but a 60-s polling scheme still "
          f"produced {total_errors_60} stale reads across the traces; "
          f"3-s polling cut that to {total_errors_3} -- not zero.")
    print("  * The three consistency schemes cost about the same; pick "
          "the simplest one to implement.")


if __name__ == "__main__":
    main()
