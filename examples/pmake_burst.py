#!/usr/bin/env python3
"""Process migration and file traffic burstiness.

The paper's Section 4.1 finding: process migration (pmake fanning
compilations and simulations out to idle hosts) multiplies a user's
short-term file throughput several-fold -- one user peaked above
9.6 Mbytes/second in a 10-second window, ten times the raw Ethernet
bandwidth, which is only possible because client caches absorb the
burst.

This example generates a migration-heavy trace, computes Table 2's
interval statistics, and prints the per-interval burst distribution
for migration users versus everyone.

Run:  python examples/pmake_burst.py
"""

from repro.analysis import compute_activity
from repro.common.cdf import Cdf
from repro.common.units import KB, TEN_SECONDS
from repro.trace.records import ReadRunRecord, WriteRunRecord
from repro.workload import STANDARD_PROFILES, generate_trace


def burst_cdf(records, migrated_only: bool) -> Cdf:
    """Per-user 10-second throughput samples (KB/s), as a CDF."""
    by_interval: dict[tuple[int, int], int] = {}
    for record in records:
        if not isinstance(record, (ReadRunRecord, WriteRunRecord)):
            continue
        if migrated_only and not record.migrated:
            continue
        key = (int(record.time // TEN_SECONDS), record.user_id)
        by_interval[key] = by_interval.get(key, 0) + record.length
    cdf = Cdf()
    for nbytes in by_interval.values():
        cdf.add(nbytes / TEN_SECONDS / KB)
    return cdf


def main() -> None:
    profile = STANDARD_PROFILES[2]  # trace3: pmake-driven simulations
    print(f"Generating {profile.name} (migration-heavy) ...")
    trace = generate_trace(profile, seed=2042, scale=0.15)

    result = compute_activity([(trace.records, trace.duration)])
    print()
    print(result.render())
    print()
    print(f"Migration burst factor (10-min): "
          f"{result.migration_burst_factor:.1f}x   (paper: ~6x)")
    print()

    everyone = burst_cdf(trace.records, migrated_only=False)
    migrated = burst_cdf(trace.records, migrated_only=True)
    print("Per-user 10-second throughput distribution (KB/s):")
    print(f"{'percentile':>12} {'all users':>12} {'migrated':>12}")
    for fraction in (0.5, 0.9, 0.99, 1.0):
        all_kbs = everyone.value_at_fraction(fraction)
        mig_kbs = migrated.value_at_fraction(fraction) if migrated.count else 0.0
        print(f"{100 * fraction:>11.0f}% {all_kbs:>12.1f} {mig_kbs:>12.1f}")
    print()
    print("The tail is where migration lives: a single user's pmake "
          "marshals several workstations at once.")


if __name__ == "__main__":
    main()
