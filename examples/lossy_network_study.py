#!/usr/bin/env python3
"""Lossy network study: what message loss does to cache consistency.

The paper's consistency guarantees (Section 5.5, Table 11) are
measured over an Ethernet that never lost a message on camera.  This
example drops the messages: it sweeps a per-message loss rate over the
Sprite, modified-Sprite, and token consistency schemes (a lost
invalidation leaves a stale copy readable until the retransmission
lands), then replays a full cluster trace through the at-most-once RPC
transport with the protocol-invariant oracle watching -- Table S, plus
a scripted single replay at 10% loss stepped through the transport's
accounting.

Run:  python examples/lossy_network_study.py
"""

from repro.experiments import ExperimentContext, run_experiment
from repro.fs import (
    ClusterConfig,
    FaultConfig,
    ProtocolOracle,
    run_cluster_on_trace,
)
from repro.workload import STANDARD_PROFILES, generate_trace


def sweep() -> None:
    """The registry's Table S experiment: scheme stale reads and
    transport overhead at 0/1/5/10% message loss."""
    ctx = ExperimentContext(scale=0.05, seed=1991)
    print("Sweeping message-loss rates over schemes and transport ...")
    result = run_experiment("rpc_loss", ctx)
    print()
    print(result.rendered)
    print()
    print(f"Paper expectation: {result.paper_expectation}")


def scripted_lossy_replay() -> None:
    """One replay at 10% loss (plus duplicates, reordering, delays),
    with the oracle attached and the transport's books opened."""
    print("Replaying one trace through a 10%-loss channel ...")
    trace = generate_trace(STANDARD_PROFILES[0], seed=1991, scale=0.05)
    config = ClusterConfig(
        client_count=4,
        faults=FaultConfig(
            message_loss_rate=0.10,
            message_duplicate_rate=0.05,
            message_reorder_rate=0.05,
            message_delay_rate=0.10,
        ),
    )
    oracle = ProtocolOracle(seed=1991, raise_on_violation=False)
    result = run_cluster_on_trace(
        trace.records, trace.duration, config, seed=1991, oracle=oracle
    )

    sent = sum(c.rpc_messages_sent for c in result.final_counters.values())
    resent = sum(c.rpc_retransmissions for c in result.final_counters.values())
    lost = sum(c.rpc_replies_lost for c in result.final_counters.values())
    stalled = sum(c.stall_seconds for c in result.final_counters.values())
    server = result.server_counters
    print()
    print(f"  messages sent (requests + replies + resends): {sent}")
    print(f"  retransmissions after a lost request/reply:   {resent}")
    print(f"  replies lost in flight:                       {lost}")
    print(f"  duplicates suppressed by the server:          "
          f"{server.duplicate_rpcs_suppressed}")
    print(f"  cached replies replayed to duplicates:        "
          f"{server.rpc_replies_replayed}")
    print(f"  stale (evicted-seq) arrivals dropped:         "
          f"{server.stale_rpcs_dropped}")
    print(f"  process-seconds stalled waiting on resends:   {stalled:.1f}")
    print(f"  oracle: {len(oracle.violations)} violations in "
          f"{oracle.checks_run} checked executions")
    oracle.assert_clean()
    print()
    print("Loss cost time, never correctness: every protocol-visible")
    print("counter matches the zero-loss replay (tests/test_rpc_chaos.py")
    print("asserts this field by field).")


def main() -> None:
    sweep()
    print()
    scripted_lossy_replay()


if __name__ == "__main__":
    main()
