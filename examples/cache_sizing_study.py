#!/usr/bin/env python3
"""Cache sizing study: revisiting the BSD study's prediction.

The 1985 BSD study predicted a ~10% miss ratio for 4-Mbyte caches;
Sprite's measured miss ratios were about four times that, which the
authors blamed on the new population of multi-megabyte files.  This
example sweeps the client cache ceiling through the cluster simulator
and prints miss ratio and server traffic versus cache size -- the
curve the BSD study could only extrapolate.

Run:  python examples/cache_sizing_study.py
"""

from repro.caching import compute_cache_sizes, compute_effectiveness, machine_days
from repro.fs import ClusterConfig, run_cluster_on_trace
from repro.workload import STANDARD_PROFILES, generate_trace


def main() -> None:
    print("Generating a normal-workload trace ...")
    trace = generate_trace(STANDARD_PROFILES[0], seed=1991, scale=0.1)
    client_count = 4

    fractions = (0.02, 0.05, 0.10, 0.25, 0.50, 1.00)
    print()
    print(f"{'cache cap':>10} {'avg cache':>10} {'read miss':>10} "
          f"{'server/raw':>11}")
    print("-" * 45)
    for fraction in fractions:
        config = ClusterConfig(
            client_count=client_count, max_cache_fraction=fraction
        )
        result = run_cluster_on_trace(
            trace.records, trace.duration, config, seed=5
        )
        days = machine_days([result])
        effectiveness = compute_effectiveness(days)
        sizes = compute_cache_sizes(days)
        total_raw = sum(
            c.raw_total_bytes for c in result.final_counters.values()
        )
        total_server = sum(
            c.server_bytes for c in result.final_counters.values()
        )
        filter_ratio = total_server / total_raw if total_raw else 0.0
        print(
            f"{100 * fraction:>9.0f}% "
            f"{sizes.size.mean / 2**20:>8.1f}MB "
            f"{100 * effectiveness.read_miss.mean:>9.1f}% "
            f"{100 * filter_ratio:>10.1f}%"
        )

    print()
    print("Like the paper found: growing the cache buys hit ratio, but "
          "the multi-megabyte files keep the curve from ever reaching "
          "the BSD study's optimistic 10% prediction, and writes (which "
          "caches barely absorb) put a floor under server traffic.")


if __name__ == "__main__":
    main()
