"""Tests for the CSV figure export."""

import pytest

from repro.analysis.export import read_cdf_csv, write_cdf_csv
from repro.common.cdf import Cdf
from repro.common.errors import AnalysisError


def make_cdf(values):
    cdf = Cdf()
    cdf.extend(values)
    return cdf


class TestCdfCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "figure.csv"
        curves = {"by runs": make_cdf([1, 2, 3]), "by bytes": make_cdf([10])}
        rows = write_cdf_csv(path, curves)
        assert rows == 4
        back = read_cdf_csv(path)
        assert set(back) == {"by runs", "by bytes"}
        assert back["by runs"][-1] == (3.0, 1.0)

    def test_fractions_monotone(self, tmp_path):
        path = tmp_path / "figure.csv"
        write_cdf_csv(path, {"c": make_cdf(range(100))})
        points = read_cdf_csv(path)["c"]
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)

    def test_downsampling(self, tmp_path):
        path = tmp_path / "figure.csv"
        rows = write_cdf_csv(path, {"c": make_cdf(range(10_000))},
                             max_points=50)
        assert rows <= 50

    def test_empty_family_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_cdf_csv(tmp_path / "x.csv", {})

    def test_all_empty_curves_raise(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_cdf_csv(tmp_path / "x.csv", {"empty": Cdf()})

    def test_empty_curve_skipped(self, tmp_path):
        path = tmp_path / "figure.csv"
        write_cdf_csv(path, {"full": make_cdf([1]), "empty": Cdf()})
        assert set(read_cdf_csv(path)) == {"full"}

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(AnalysisError):
            read_cdf_csv(path)

    def test_export_real_figure(self, tmp_path, small_trace):
        from repro.analysis import assemble_accesses, compute_run_lengths

        result = compute_run_lengths(assemble_accesses(small_trace.records))
        path = tmp_path / "figure1.csv"
        rows = write_cdf_csv(
            path, {"by runs": result.by_runs, "by bytes": result.by_bytes}
        )
        assert rows > 100
