"""Deterministic chaos suite: randomized fault schedules, checked
against global invariants.

Each seed drives a full trace replay under a generated schedule of
server crashes, client crashes, and partitions, then the suite asserts
properties that must hold no matter where the faults landed:

* **conservation** -- every block ever dirtied is written back, or
  discarded by a delete, or destroyed by a counted fault, or still
  resident dirty at the end; nothing leaks;
* **no unvalidated survivors** -- after a server recovery, every
  reachable client re-validated every file it kept cached;
* **worker independence** -- replays fan out across processes without
  changing a single counter;
* **inertness** -- with fault knobs at their zero defaults the replay
  is identical to one with an explicitly empty schedule, and no fault
  counter moves;
* **write-through safety** -- with no delayed writes there is never
  dirty data to lose.
"""

from __future__ import annotations

import pytest

from repro.fs import (
    Cluster,
    ClusterConfig,
    FaultConfig,
    FaultSchedule,
    run_cluster_on_trace,
)
from repro.pipeline.runner import run_stage
from repro.pipeline.tasks import ReplayTask

CHAOS_SEEDS = (11, 23, 37, 41, 53)

CHAOS_FAULTS = FaultConfig(
    server_crash_rate=1.0,
    server_downtime=90.0,
    client_crash_rate=1.0,
    client_downtime=120.0,
    partition_rate=2.0,
    partition_duration=45.0,
)

CHAOS_CONFIG = ClusterConfig(client_count=4, faults=CHAOS_FAULTS)


class AuditingCluster(Cluster):
    """Cluster that checks the revalidation invariant at each recovery.

    ``on_server_recovered`` sends exactly one revalidate RPC per file
    the client holds cached, so across a recovery the RPC delta must
    equal the pre-recovery resident-file count for every reachable
    client.  Violations are recorded, not raised, so one replay can
    collect all of them.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.audit_failures: list[str] = []
        self.recoveries_audited = 0

    def recover_server(self, server_id: int = 0) -> None:
        now = self.engine.now
        before = {
            client.client_id: (
                len(client.cache.resident_files()),
                client.counters.revalidate_rpcs,
            )
            for client in self.clients
            if client.reachable(now)
        }
        super().recover_server(server_id)
        self.recoveries_audited += 1
        for client in self.clients:
            if client.client_id not in before:
                continue
            resident, rpcs_before = before[client.client_id]
            delta = client.counters.revalidate_rpcs - rpcs_before
            if delta != resident:
                self.audit_failures.append(
                    f"t={now:.1f} client {client.client_id}: "
                    f"{resident} cached files but {delta} revalidations"
                )


@pytest.fixture(scope="module", params=CHAOS_SEEDS)
def chaos_run(request, small_trace):
    """One audited chaos replay per seed (shared by the invariant tests)."""
    cluster = AuditingCluster(CHAOS_CONFIG, seed=request.param)
    result = cluster.replay(small_trace.records, small_trace.duration)
    return cluster, result


def test_chaos_runs_actually_inject_faults(chaos_run):
    _, result = chaos_run
    total_crashes = result.server_counters.crashes + sum(
        c.crashes for c in result.final_counters.values()
    )
    assert total_crashes > 0


def test_dirty_block_conservation(chaos_run):
    _, result = chaos_run
    for client_id, counters in result.final_counters.items():
        assert counters.dirty_blocks_accounted == counters.blocks_dirtied, (
            f"client {client_id}: dirtied {counters.blocks_dirtied}, "
            f"accounted {counters.dirty_blocks_accounted} "
            f"(cleaned {counters.blocks_cleaned_total}, "
            f"discarded {counters.dirty_blocks_discarded}, "
            f"lost {counters.lost_dirty_blocks}, "
            f"resident {counters.dirty_blocks_resident})"
        )


def test_no_cache_block_survives_recovery_unvalidated(chaos_run):
    cluster, _ = chaos_run
    assert cluster.recoveries_audited == cluster.server.counters.crashes
    assert cluster.audit_failures == []


def test_replay_is_deterministic_per_seed(request, chaos_run, small_trace):
    """Re-running the same seed reproduces the faulted replay exactly."""
    _, result = chaos_run
    seed = request.node.callspec.params["chaos_run"]
    again = Cluster(CHAOS_CONFIG, seed=seed).replay(
        small_trace.records, small_trace.duration
    )
    assert again.final_counters == result.final_counters
    assert again.server_counters == result.server_counters
    assert again.snapshots == result.snapshots


def test_worker_count_does_not_change_results(small_trace):
    """workers=1 and workers=4 must produce identical fault replays."""
    tasks = [
        ReplayTask(
            trace_fields={"kind": "chaos", "seed": seed},
            records=small_trace.records,
            duration=small_trace.duration,
            config=CHAOS_CONFIG,
            seed=seed,
        )
        for seed in CHAOS_SEEDS[:2]
    ]
    serial = run_stage("chaos-serial", tasks, workers=1, cache=None)
    parallel = run_stage("chaos-parallel", tasks, workers=4, cache=None)
    for one, many in zip(serial, parallel):
        assert one.final_counters == many.final_counters
        assert one.server_counters == many.server_counters
        assert one.snapshots == many.snapshots


def test_fault_free_run_is_identical_to_empty_schedule(small_trace):
    """The fault machinery must be inert when nothing is scheduled."""
    config = ClusterConfig(client_count=4)
    plain = run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=9
    )
    empty = run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=9,
        fault_schedule=FaultSchedule([]),
    )
    assert plain.final_counters == empty.final_counters
    assert plain.server_counters == empty.server_counters
    assert plain.snapshots == empty.snapshots

    for counters in plain.final_counters.values():
        assert counters.crashes == 0
        assert counters.partitions == 0
        assert counters.lost_dirty_blocks == 0
        assert counters.rpc_retries == 0
        assert counters.stall_seconds == 0.0
        assert counters.reopen_rpcs == 0
        assert counters.revalidate_rpcs == 0
    assert plain.server_counters.crashes == 0
    assert plain.server_counters.recalls_failed == 0


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_write_through_loses_nothing(seed, small_trace):
    """With no delayed writes there is no dirty window to lose."""
    config = ClusterConfig(
        client_count=4, write_through=True, writeback_delay=0.0,
        faults=CHAOS_FAULTS,
    )
    result = run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=seed
    )
    for counters in result.final_counters.values():
        assert counters.lost_dirty_bytes == 0
        assert counters.lost_dirty_blocks == 0
        assert counters.dirty_blocks_resident == 0
