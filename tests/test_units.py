"""Unit tests for repro.common.units."""

import pytest

from repro.common import units


class TestConstants:
    def test_block_size_is_4k(self):
        assert units.BLOCK_SIZE == 4096

    def test_delayed_write_is_30_seconds(self):
        assert units.DELAYED_WRITE_SECONDS == 30.0

    def test_writeback_scan_is_5_seconds(self):
        assert units.WRITEBACK_SCAN_INTERVAL == 5.0

    def test_vm_preference_is_20_minutes(self):
        assert units.VM_PREFERENCE_SECONDS == 1200.0

    def test_byte_units_are_powers_of_1024(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB

    def test_day_is_24_hours(self):
        assert units.DAY == 24 * units.HOUR == 86400.0

    def test_cluster_defaults_match_paper(self):
        assert units.DEFAULT_CLIENT_COUNT == 40
        assert units.DEFAULT_SERVER_COUNT == 4
        assert units.DEFAULT_CLIENT_MEMORY == 24 * units.MB
        assert units.DEFAULT_SERVER_MEMORY == 128 * units.MB


class TestConversions:
    def test_bytes_to_kbytes(self):
        assert units.bytes_to_kbytes(2048) == 2.0

    def test_bytes_to_mbytes(self):
        assert units.bytes_to_mbytes(3 * units.MB) == 3.0


class TestBlockMath:
    def test_blocks_for_zero_bytes(self):
        assert units.blocks_for(0) == 0

    def test_blocks_for_one_byte(self):
        assert units.blocks_for(1) == 1

    def test_blocks_for_exact_block(self):
        assert units.blocks_for(4096) == 1

    def test_blocks_for_block_plus_one(self):
        assert units.blocks_for(4097) == 2

    def test_blocks_for_negative_raises(self):
        with pytest.raises(ValueError):
            units.blocks_for(-1)

    def test_block_of_offsets(self):
        assert units.block_of(0) == 0
        assert units.block_of(4095) == 0
        assert units.block_of(4096) == 1

    def test_block_of_negative_raises(self):
        with pytest.raises(ValueError):
            units.block_of(-5)

    def test_block_range_empty_for_zero_length(self):
        assert list(units.block_range(100, 0)) == []

    def test_block_range_within_one_block(self):
        assert list(units.block_range(10, 100)) == [0]

    def test_block_range_spanning_blocks(self):
        assert list(units.block_range(4000, 200)) == [0, 1]

    def test_block_range_exact_boundaries(self):
        assert list(units.block_range(4096, 4096)) == [1]

    def test_block_range_negative_length_raises(self):
        with pytest.raises(ValueError):
            units.block_range(0, -1)

    def test_block_range_custom_block_size(self):
        assert list(units.block_range(0, 1024, block_size=512)) == [0, 1]
