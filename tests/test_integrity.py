"""End-to-end data integrity: checksums, disk faults, scrub, repair.

Covers the integrity layer (repro.fs.integrity) at three levels:

* **unit** -- the checksum content model, each disk-fault kind's
  detection story (bit rot and torn writes are caught by checksums;
  lost writes only by the scrubber's generation cross-check at r >= 2),
  repair-from-replica vs. declared loss, and the chunked scrub walk;
* **properties** (Hypothesis, skipped when unavailable) -- checksum
  round-trips, counter-row round-trips, and the columnar codec carrying
  the new integrity counters;
* **chaos** -- full replays under seeded disk faults: zero oracle
  integrity violations with replicas and scrubbing on (even with server
  crashes in the mix), strictly positive exposed corruption with the
  defences off, and determinism of the whole machinery;

plus the replication pending-log regression (a file deleted while a
replica was down must be dropped from the log, not replayed) and the
validation stories for every new knob.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.fs import (
    ClusterConfig,
    DiskFaultEvent,
    DiskFaultKind,
    FaultConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    IntegrityManager,
    Placement,
    ProtocolOracle,
    Server,
    block_checksum,
    block_payload,
    checksum_ok,
    run_cluster_on_trace,
)
from repro.fs.cluster import Cluster
from repro.fs.integrity import _garble
from repro.fs.replication import ReplicaMap, ReplicationManager
from repro.sim.engine import Engine
from repro.sim.timers import SharedTicker

pytestmark = pytest.mark.integrity

BLOCK = 4096


def _integrity_cluster(num_servers: int, replication_factor: int = 1):
    """Servers plus a wired IntegrityManager (no engine, no clients)."""
    servers = [
        Server(1 * MB, BLOCK, server_id=i) for i in range(num_servers)
    ]
    replica_map = (
        ReplicaMap(Placement(num_servers), replication_factor)
        if replication_factor > 1
        else None
    )
    manager = IntegrityManager(servers, replica_map=replica_map)
    for server in servers:
        server.integrity = manager
    return servers, manager


def _write_everywhere(manager, servers, file_id, index, now=0.0):
    """One logical client writeback fanned out to every server."""
    manager.begin_write(file_id, index)
    for server in servers:
        server.write_block(now, file_id, index, BLOCK)


# --------------------------------------------------------------------------
# the content model
# --------------------------------------------------------------------------


def test_checksum_round_trip_and_garble_detection():
    payload = block_payload(7, 3, 1)
    checksum = block_checksum(payload)
    assert checksum_ok(payload, checksum)
    assert not checksum_ok(_garble(payload), checksum)
    # Garbling twice must NOT restore validity (the mangle is a mix,
    # not an involutive flip): two faults on one block stay detectable.
    assert not checksum_ok(_garble(_garble(payload)), checksum)


def test_payload_is_a_pure_function_of_the_write():
    assert block_payload(1, 2, 3) == block_payload(1, 2, 3)
    assert block_payload(1, 2, 3) != block_payload(1, 2, 4)
    assert block_payload(1, 2, 3) != block_payload(1, 3, 3)
    assert block_payload(1, 2, 3) != block_payload(2, 2, 3)


# --------------------------------------------------------------------------
# fault kinds, detection, repair
# --------------------------------------------------------------------------


def test_bit_rot_is_detected_on_a_miss_read_and_repaired_from_replica():
    servers, manager = _integrity_cluster(2, replication_factor=2)
    _write_everywhere(manager, servers, 5, 0)
    assert manager.inject_bit_rot(1.0, 0, 0.0)
    # The server cache still holds the good RAM copy; rot hides behind
    # a hot cache until the copy is evicted or the machine reboots.
    assert servers[0].fetch_block(2.0, 5, 0, BLOCK) is True
    assert servers[0].counters.checksum_failures == 0
    servers[0].cache.clear()
    assert servers[0].fetch_block(3.0, 5, 0, BLOCK) is True  # repaired
    assert servers[0].counters.checksum_failures == 1
    assert servers[0].counters.blocks_repaired == 1
    assert servers[0].counters.blocks_declared_lost == 0
    assert manager.silent_corruption_report() == []


def test_bit_rot_at_r1_becomes_a_declared_loss():
    servers, manager = _integrity_cluster(1)
    _write_everywhere(manager, servers, 5, 0)
    manager.inject_bit_rot(1.0, 0, 0.0)
    servers[0].cache.clear()
    assert servers[0].fetch_block(2.0, 5, 0, BLOCK) is False
    assert servers[0].counters.checksum_failures == 1
    assert servers[0].counters.blocks_declared_lost == 1
    # Accountably gone is not silently gone.
    assert manager.silent_corruption_report() == []


def test_torn_write_persists_garbage_under_the_intended_checksum():
    servers, manager = _integrity_cluster(2, replication_factor=2)
    manager.arm_torn(0)
    _write_everywhere(manager, servers, 9, 2)
    assert servers[0].counters.disk_torn_writes == 1
    servers[0].cache.clear()
    assert servers[0].fetch_block(1.0, 9, 2, BLOCK) is True  # repaired
    assert servers[0].counters.checksum_failures == 1
    assert servers[0].counters.blocks_repaired == 1


def test_lost_write_is_invisible_to_checksums_but_caught_by_scrub():
    servers, manager = _integrity_cluster(2, replication_factor=2)
    _write_everywhere(manager, servers, 4, 1)
    manager.arm_lost(0)
    _write_everywhere(manager, servers, 4, 1)  # lost on server 0
    assert servers[0].counters.disk_lost_writes == 1
    servers[0].cache.clear()
    # The stale generation still verifies: reads cannot see a lost
    # write, which is exactly why the scrubber cross-checks stamps.
    assert servers[0].fetch_block(1.0, 4, 1, BLOCK) is True
    assert servers[0].counters.checksum_failures == 0
    manager.final_scrub(2.0)
    assert servers[0].counters.scrub_corruptions_found == 1
    assert servers[0].counters.blocks_repaired == 1
    assert manager.silent_corruption_report() == []


def test_lost_first_write_leaves_no_store_entry_yet_is_not_silent():
    servers, manager = _integrity_cluster(2, replication_factor=2)
    manager.arm_lost(0)
    _write_everywhere(manager, servers, 6, 0)  # first write, lost on 0
    # Exposed until the scrubber walks the *expected* ledger too.
    assert len(manager.silent_corruption_report()) == 1
    manager.final_scrub(1.0)
    assert servers[0].counters.blocks_repaired == 1
    assert manager.silent_corruption_report() == []


def test_scrubber_walks_in_bounded_chunks():
    servers, manager = _integrity_cluster(1)
    for index in range(IntegrityManager.SCRUB_CHUNK + 40):
        _write_everywhere(manager, servers, 1, index)
    manager.scrub_tick(1.0)
    assert (
        servers[0].counters.scrub_blocks_checked
        == IntegrityManager.SCRUB_CHUNK
    )
    manager.scrub_tick(2.0)  # cursor wraps after finishing the tail
    assert (
        servers[0].counters.scrub_blocks_checked
        == IntegrityManager.SCRUB_CHUNK + 40
    )


def test_delete_drops_every_integrity_trace_of_the_file():
    servers, manager = _integrity_cluster(1)
    _write_everywhere(manager, servers, 3, 0)
    manager.inject_bit_rot(1.0, 0, 0.0)
    servers[0].invalidate_file(3)
    # The corrupt block died with the file: nothing left to expose.
    assert manager.silent_corruption_report() == []
    manager.final_scrub(2.0)
    assert servers[0].counters.scrub_corruptions_found == 0


# --------------------------------------------------------------------------
# disk-fault schedule generation
# --------------------------------------------------------------------------


def test_disk_fault_schedule_is_deterministic_and_inert_at_rate_zero():
    from repro.common.rng import RngStream

    config = FaultConfig(
        disk_corruption_rate=4.0,
        disk_torn_write_rate=1.0,
        disk_lost_write_rate=1.0,
    )
    one = FaultSchedule.generate(
        config, 4, 3600.0, RngStream.root(7), num_servers=2
    )
    two = FaultSchedule.generate(
        config, 4, 3600.0, RngStream.root(7), num_servers=2
    )
    assert one.disk_events == two.disk_events
    assert len(one.disk_events) > 0
    assert {e.server_id for e in one.disk_events} <= {0, 1}
    quiet = FaultSchedule.generate(
        FaultConfig(), 4, 3600.0, RngStream.root(7), num_servers=2
    )
    assert quiet.disk_events == []


def test_disk_fault_event_validation():
    DiskFaultEvent(time=1.0, kind=DiskFaultKind.BIT_ROT, server_id=0)
    with pytest.raises(ConfigError):
        DiskFaultEvent(time=-1.0, kind=DiskFaultKind.BIT_ROT, server_id=0)
    with pytest.raises(ConfigError):
        DiskFaultEvent(time=1.0, kind=DiskFaultKind.BIT_ROT, server_id=-1)
    with pytest.raises(ConfigError):
        DiskFaultEvent(
            time=1.0, kind=DiskFaultKind.BIT_ROT, server_id=0, selector=1.0
        )


# --------------------------------------------------------------------------
# knob validation (new integrity knobs + heartbeat regression)
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "knob",
    ["disk_corruption_rate", "disk_torn_write_rate", "disk_lost_write_rate"],
)
def test_negative_disk_fault_rates_are_rejected(knob):
    with pytest.raises(ConfigError, match=f"{knob} must be >= 0"):
        FaultConfig(**{knob: -0.5})


def test_negative_scrub_interval_is_rejected():
    with pytest.raises(ConfigError, match="scrub_interval must be >= 0"):
        ClusterConfig(scrub_interval=-1.0)


def test_negative_heartbeat_knobs_are_rejected():
    """Regression guard: the failure detector's knobs must stay
    validated (a zero interval would spin the ticker forever)."""
    with pytest.raises(ConfigError, match="heartbeat interval"):
        ClusterConfig(num_servers=2, replication_factor=2, heartbeat_interval=0)
    with pytest.raises(ConfigError, match="heartbeat interval"):
        ClusterConfig(
            num_servers=2, replication_factor=2, heartbeat_interval=-5.0
        )
    with pytest.raises(ConfigError, match="heartbeat miss threshold"):
        ClusterConfig(
            num_servers=2, replication_factor=2, heartbeat_miss_threshold=0
        )


def test_experiment_context_rejects_negative_integrity_knobs():
    from repro.experiments import ExperimentContext

    with pytest.raises(ConfigError, match="disk_corruption_rate"):
        ExperimentContext(scale=0.05, disk_corruption_rate=-1.0)
    with pytest.raises(ConfigError, match="scrub_interval"):
        ExperimentContext(scale=0.05, scrub_interval=-1.0)


def test_cli_rejects_negative_integrity_flags(capsys):
    from repro.experiments.cli import main

    with pytest.raises(SystemExit):
        main(["table1", "--disk-corruption-rate", "-1"])
    assert "--disk-corruption-rate must be >= 0" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["table1", "--scrub-interval", "-0.5"])
    assert "--scrub-interval must be >= 0" in capsys.readouterr().err


# --------------------------------------------------------------------------
# replication pending log: deletes must be dropped, not replayed
# --------------------------------------------------------------------------


def _replication_manager(num_servers=2):
    engine = Engine()
    servers = [
        Server(1 * MB, BLOCK, server_id=i) for i in range(num_servers)
    ]
    manager = ReplicationManager(
        engine, servers, Placement(num_servers), 2, 3,
        ticker=SharedTicker(engine, 30.0),
    )
    return servers, manager


def test_pending_delete_drops_a_previously_queued_version():
    servers, manager = _replication_manager()
    servers[1].apply_replica_version(8, 3)  # durable pre-outage stamp
    manager.queue_pending(1, 8, 5)  # push missed while down
    manager.queue_pending(1, 8, None)  # then the file was deleted
    manager.flush_pending(1)
    # The delete wins: replaying the stale push would resurrect the file.
    assert servers[1].peek_version(8) == 0
    assert 8 not in servers[1]._files


def test_pending_delete_then_recreate_applies_the_new_version_exactly():
    servers, manager = _replication_manager()
    servers[1].apply_replica_version(8, 7)  # durable pre-delete stamp
    manager.queue_pending(1, 8, None)  # deleted while down...
    manager.queue_pending(1, 8, 2)  # ...then recreated at version 2
    manager.flush_pending(1)
    # Invalidate-then-apply: the recreate's stamp must not max-merge
    # against the dead file's higher pre-delete version.
    assert servers[1].peek_version(8) == 2


def test_delete_under_a_crashed_primary_does_not_resurrect_the_file():
    """End to end: write a file to both replicas, crash its primary,
    delete it, recover -- the primary's durable copy must be gone, and
    a recreate while the primary was down must land at the recreate's
    version on every replica (the oracle's divergence sweep agrees)."""
    oracle = ProtocolOracle(seed=5, raise_on_violation=True)
    cluster = Cluster(
        ClusterConfig(
            client_count=4, num_servers=2, replication_factor=2,
            paging_intensity=0.0,
        ),
        seed=5,
        oracle=oracle,
    )
    client = cluster.clients[0]
    file_id = 11
    primary = cluster.replication.replica_map.base_replicas(file_id)[0]
    other = cluster.replication.replica_map.base_replicas(file_id)[1]

    for _ in range(3):  # several write cycles: the version climbs past 1
        client.open_file(0.0, file_id, True)
        client.write(0.0, file_id, 0, 3 * BLOCK)
        client.close_file(0.0, file_id, True, fsync=True)
    v_before = cluster.servers[primary].peek_version(file_id)
    assert v_before > 1
    assert cluster.servers[other].peek_version(file_id) == v_before

    cluster.crash_server(10.0, server_id=primary)
    client.delete_on_server(1.0, file_id)
    client.delete_file(1.0, file_id)
    # Recreate while the primary is still down: the new life of the
    # file starts over, so its version restarts below v_before.
    client.open_file(2.0, file_id, True)
    client.write(2.0, file_id, 0, BLOCK)
    client.close_file(2.0, file_id, True, fsync=True)
    v_new = cluster.servers[other].peek_version(file_id)
    assert 0 < v_new < v_before

    cluster.engine.run_until(10.0)
    cluster.recover_server(primary)
    assert cluster.servers[primary].peek_version(file_id) == v_new
    oracle.final_check(11.0, cluster.clients, cluster.servers)
    assert oracle.violations == []


# --------------------------------------------------------------------------
# property suite (skipped when Hypothesis is unavailable)
# --------------------------------------------------------------------------


hypothesis = pytest.importorskip("hypothesis")
given = hypothesis.given
st = hypothesis.strategies


@given(payload=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_property_checksum_verifies_and_garble_never_does(payload):
    checksum = block_checksum(payload)
    assert 0 <= checksum < (1 << 64)
    assert checksum_ok(payload, checksum)
    assert not checksum_ok(_garble(payload), checksum)


@given(
    file_id=st.integers(min_value=0, max_value=1 << 32),
    index=st.integers(min_value=0, max_value=1 << 20),
    generation=st.integers(min_value=1, max_value=1 << 20),
)
def test_property_payload_checksum_round_trip(file_id, index, generation):
    payload = block_payload(file_id, index, generation)
    assert checksum_ok(payload, block_checksum(payload))
    # A write of the next generation never collides with this one.
    assert payload != block_payload(file_id, index, generation + 1)


@given(values=st.lists(st.integers(min_value=0, max_value=1 << 40)))
def test_property_server_counter_rows_round_trip(values):
    from repro.fs import ServerCounters

    counters = ServerCounters()
    fields = type(counters).FIELDS
    for name, value in zip(fields, values):
        setattr(counters, name, value)
    rebuilt = ServerCounters.from_row(counters.as_row())
    assert rebuilt.as_row() == counters.as_row()
    assert "checksum_failures" in fields
    assert "scrub_blocks_checked" in fields


@given(
    checksum_failures=st.integers(min_value=0, max_value=1 << 30),
    repaired=st.integers(min_value=0, max_value=1 << 30),
    declared=st.integers(min_value=0, max_value=1 << 30),
)
def test_property_codec_carries_integrity_counters(
    checksum_failures, repaired, declared
):
    """A ClusterResult round-trips through the columnar codec with the
    appended integrity counters intact."""
    from repro.fs import ClientCounters, ClusterResult, ServerCounters
    from repro.pipeline.codec import decode_artifact, encode_artifact

    server = ServerCounters()
    server.checksum_failures = checksum_failures
    server.blocks_repaired = repaired
    server.blocks_declared_lost = declared
    client = ClientCounters()
    client.checksum_failures = checksum_failures
    result = ClusterResult(
        config=ClusterConfig(),
        duration=10.0,
        snapshots={0: []},
        final_counters={0: client},
        server_counters=server,
        records_replayed=1,
        per_server_counters=(server.copy(),),
    )
    decoded = decode_artifact(encode_artifact(result))
    assert decoded.server_counters.checksum_failures == checksum_failures
    assert decoded.server_counters.blocks_repaired == repaired
    assert decoded.server_counters.blocks_declared_lost == declared
    assert decoded.final_counters[0].checksum_failures == checksum_failures


# --------------------------------------------------------------------------
# chaos: full replays under seeded disk faults
# --------------------------------------------------------------------------


DISK_KNOBS = FaultConfig(
    disk_corruption_rate=6.0,
    disk_torn_write_rate=2.0,
    disk_lost_write_rate=2.0,
)


def test_integrity_replay_is_deterministic(small_trace):
    config = ClusterConfig(
        client_count=4, num_servers=4, replication_factor=2,
        paging_intensity=0.0, scrub_interval=60.0, faults=DISK_KNOBS,
    )
    rows = []
    for _ in range(2):
        result = run_cluster_on_trace(
            small_trace.records, small_trace.duration, config, seed=17
        )
        rows.append(
            (
                result.server_counters.as_row(),
                tuple(
                    c.as_row() for c in result.final_counters.values()
                ),
            )
        )
    assert rows[0] == rows[1]


def test_zero_rate_config_builds_no_integrity_layer(small_trace):
    cluster = Cluster(ClusterConfig(client_count=4))
    assert cluster.integrity is None
    result = cluster.replay(small_trace.records, small_trace.duration)
    assert result.server_counters.checksum_failures == 0
    assert result.server_counters.scrub_blocks_checked == 0
    assert result.server_counters.disk_bit_rot_events == 0
    assert all(
        c.checksum_failures == 0 for c in result.final_counters.values()
    )


@pytest.mark.slow
def test_chaos_no_silent_corruption_with_replicas_and_scrubbing(small_trace):
    """r=2 with scrubbing on, under disk faults AND rolling server
    crashes: the oracle's end-state sweep must find zero silent
    corruption, and the defences must actually have fired."""
    duration = small_trace.duration
    outage = duration * 0.08
    crashes = [
        FaultEvent(
            time=duration * (0.15 + 0.2 * sid),
            kind=FaultKind.SERVER_CRASH,
            target=sid,
            duration=outage,
        )
        for sid in range(4)
    ]
    from repro.common.rng import RngStream

    schedule = FaultSchedule.generate(
        DISK_KNOBS, 4, duration, RngStream.root(31), num_servers=4
    )
    schedule = FaultSchedule(crashes, disk_events=schedule.disk_events)
    oracle = ProtocolOracle(seed=31, raise_on_violation=False)
    config = ClusterConfig(
        client_count=4, num_servers=4, replication_factor=2,
        paging_intensity=0.0, scrub_interval=30.0, faults=DISK_KNOBS,
    )
    result = run_cluster_on_trace(
        small_trace.records, duration, config, seed=31,
        fault_schedule=schedule, oracle=oracle,
    )
    assert result.server_counters.disk_bit_rot_events > 0
    assert result.server_counters.scrub_blocks_checked > 0
    assert result.server_counters.blocks_repaired > 0
    silent = [
        v for v in oracle.violations if v.invariant == "silent-corruption"
    ]
    assert silent == []


@pytest.mark.slow
def test_chaos_undefended_corruption_is_exposed(small_trace):
    """r=1 with scrubbing off under the same disk-fault load: the
    oracle must expose corruption, or the defended run above proves
    nothing."""
    oracle = ProtocolOracle(seed=31, raise_on_violation=False)
    config = ClusterConfig(
        client_count=4, num_servers=4,
        paging_intensity=0.0, faults=DISK_KNOBS,
    )
    run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=31,
        oracle=oracle,
    )
    exposed = [
        v for v in oracle.violations if v.invariant == "silent-corruption"
    ]
    assert len(exposed) > 0


@pytest.mark.slow
def test_integrity_experiment_meets_its_pins(experiment_context):
    """Table C's acceptance criteria, straight off the metrics."""
    from repro.experiments import run_experiment

    result = run_experiment("integrity", experiment_context)
    metrics = result.metrics
    assert metrics["exposed_r1_scrub0"] > 0
    assert metrics["exposed_r2_scrub60"] == 0
    assert metrics["exposed_r3_scrub30"] == 0
    assert metrics["oracle_violations_r2_scrub60"] == 0
    assert metrics["oracle_violations_r3_scrub30"] == 0
    assert metrics["repaired_r2_scrub60"] > 0
    assert metrics["detected_r1_scrub60"] > 0
    assert "Table C" in result.rendered
