"""Scripted fault scenarios: each test injects one specific failure and
checks the protocol's visible footprint (counters and server state).

The chaos suite (:mod:`tests.test_faults_chaos`) covers randomized
schedules and global invariants; these tests pin down the individual
mechanisms -- reopen, revalidation, replay, retry backoff, stale reads,
degraded modes -- one at a time.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.fs import (
    Cluster,
    ClusterConfig,
    FaultConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    SERVER_TARGET,
    run_cluster_on_trace,
)
from repro.fs.rpc import BackoffPolicy
from repro.common.rng import RngStream

KB = 1024


def make_cluster(**kwargs) -> Cluster:
    config = ClusterConfig(client_count=2, **kwargs)
    return Cluster(config, seed=77)


# --- configuration and schedule --------------------------------------------------


class TestFaultConfig:
    def test_defaults_are_inert(self):
        assert not FaultConfig().any_faults

    def test_any_rate_arms_the_subsystem(self):
        assert FaultConfig(server_crash_rate=0.1).any_faults
        assert FaultConfig(client_crash_rate=0.1).any_faults
        assert FaultConfig(partition_rate=0.1).any_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"server_crash_rate": -1.0},
            {"server_downtime": 0.0},
            {"client_downtime": -5.0},
            {"rpc_timeout": 0.0},
            {"rpc_initial_backoff": 0.0},
            {"rpc_backoff_factor": 0.5},
            {"degraded_mode": "panic"},
            {"message_loss_rate": -0.1},
            {"message_loss_rate": 1.5},
            {"message_duplicate_rate": -0.1},
            {"message_duplicate_rate": 1.0001},
            {"message_reorder_rate": 2.0},
            {"message_delay_rate": -1.0},
            {"message_delay_mean": 0.0},
            {"message_delay_mean": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FaultConfig(**kwargs)

    def test_cluster_config_rejects_plain_dict(self):
        with pytest.raises(ConfigError):
            ClusterConfig(faults={"server_crash_rate": 1.0})


class TestFaultEvent:
    def test_server_crash_must_target_server(self):
        # A server id >= 0 or SERVER_TARGET is valid (sharded clusters
        # target individual servers); anything below -1 is not.
        with pytest.raises(ConfigError):
            FaultEvent(0.0, FaultKind.SERVER_CRASH, -2, 10.0)

    def test_server_crash_accepts_shard_targets(self):
        assert FaultEvent(0.0, FaultKind.SERVER_CRASH, 3, 10.0).target == 3
        assert (
            FaultEvent(0.0, FaultKind.SERVER_CRASH, SERVER_TARGET, 10.0).target
            == SERVER_TARGET
        )

    def test_client_fault_needs_client_target(self):
        with pytest.raises(ConfigError):
            FaultEvent(0.0, FaultKind.CLIENT_CRASH, SERVER_TARGET, 10.0)

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultEvent(0.0, FaultKind.PARTITION, 0, 0.0)

    def test_end_time(self):
        event = FaultEvent(5.0, FaultKind.PARTITION, 0, 7.5)
        assert event.end_time == 12.5


class TestBackoff:
    @staticmethod
    def attempts(config, wait):
        return BackoffPolicy.from_config(config).attempts_for_wait(wait)

    def test_single_attempt_for_tiny_wait(self):
        assert self.attempts(FaultConfig(), 0.05) == 1

    def test_exponential_series(self):
        # Delays 0.1, 0.2, 0.4 reach a cumulative 0.7 >= 0.5 on the
        # third attempt.
        assert self.attempts(FaultConfig(), 0.5) == 3

    def test_backoff_caps_at_max(self):
        config = FaultConfig(
            rpc_initial_backoff=1.0, rpc_backoff_factor=2.0, rpc_max_backoff=2.0
        )
        # Delays 1, 2, 2, 2, ... -> 60 seconds needs 1 + ceil(59/2) = 31.
        assert self.attempts(config, 60.0) == 31


class TestFaultSchedule:
    CONFIG = FaultConfig(
        server_crash_rate=1.0, client_crash_rate=0.5, partition_rate=2.0
    )

    def test_zero_rates_yield_empty_schedule(self):
        schedule = FaultSchedule.generate(
            FaultConfig(), 8, 86400.0, RngStream.root(1).fork("faults")
        )
        assert len(schedule) == 0

    def test_deterministic_for_same_stream(self):
        a = FaultSchedule.generate(
            self.CONFIG, 4, 86400.0, RngStream.root(9).fork("faults")
        )
        b = FaultSchedule.generate(
            self.CONFIG, 4, 86400.0, RngStream.root(9).fork("faults")
        )
        assert a.events == b.events
        assert len(a) > 0

    def test_events_inside_horizon_and_sorted(self):
        schedule = FaultSchedule.generate(
            self.CONFIG, 4, 3600.0, RngStream.root(3).fork("faults")
        )
        times = [e.time for e in schedule.events]
        assert times == sorted(times)
        assert all(0 <= t < 3600.0 for t in times)

    def test_no_overlap_per_failure_process(self):
        schedule = FaultSchedule.generate(
            self.CONFIG, 4, 86400.0, RngStream.root(5).fork("faults")
        )
        by_process: dict[tuple, float] = {}
        for event in schedule.events:
            process = (event.kind, event.target)
            assert event.time >= by_process.get(process, 0.0)
            by_process[process] = event.end_time

    def test_explicit_schedule_sorts_events(self):
        late = FaultEvent(50.0, FaultKind.PARTITION, 0, 5.0)
        early = FaultEvent(10.0, FaultKind.PARTITION, 1, 5.0)
        assert FaultSchedule([late, early]).events == [early, late]


# --- server crash and the reopen protocol -----------------------------------------


class TestServerCrash:
    def test_crash_loses_volatile_state_keeps_versions(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        client.open_file(0.0, 7, will_write=True)
        client.write(0.0, 7, 0, 8 * KB)
        version_before = cluster.server.state_of(7).version

        cluster.crash_server(down_until=50.0)
        state = cluster.server.state_of(7)
        assert not cluster.server.up
        assert not state.writers and not state.readers
        assert state.last_writer == -1
        assert len(cluster.server.cache) == 0
        assert state.version == version_before  # durable on disk
        assert cluster.server.counters.crashes == 1
        # Downtime is booked from real timestamps at recovery, not
        # predicted at crash time.
        assert cluster.server.counters.downtime_seconds == 0.0
        cluster.engine.run_until(50.0)
        cluster.recover_server()
        assert cluster.server.counters.downtime_seconds == pytest.approx(50.0)

    def test_reopen_reregisters_open_files(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        client.open_file(0.0, 7, will_write=True)
        client.open_file(0.0, 9, will_write=False)

        cluster.engine.run_until(10.0)
        cluster.crash_server(down_until=20.0)
        cluster.engine.run_until(20.0)
        cluster.recover_server()

        assert cluster.server.counters.reopen_rpcs == 2
        assert cluster.server.state_of(7).writers == {0: 1}
        assert cluster.server.state_of(9).readers == {0: 1}
        assert client.counters.reopen_rpcs == 2

    def test_recovery_revalidates_every_cached_file(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        for file_id in (3, 4, 5):
            client.open_file(0.0, file_id, will_write=False)
            client.read(0.0, file_id, 0, 4 * KB)
            client.close_file(0.0, file_id, wrote=False)

        cluster.crash_server(down_until=30.0)
        cluster.engine.run_until(30.0)
        cluster.recover_server()

        resident = set(client.cache.resident_files())
        assert client.counters.revalidate_rpcs >= len(resident)
        # Versions matched, so the blocks survived.
        assert client.counters.blocks_invalidated_on_recovery == 0
        assert resident == {3, 4, 5}

    def test_recovery_invalidates_stale_cached_files(self):
        cluster = make_cluster()
        reader, writer = cluster.clients
        reader.open_file(0.0, 11, will_write=False)
        reader.read(0.0, 11, 0, 4 * KB)
        reader.close_file(0.0, 11, wrote=False)

        cluster.crash_server(down_until=30.0)
        # While the reader is cut off, the file's durable version moves
        # on (simulate by bumping the stamp the way an accepted write
        # elsewhere would).
        cluster.server.state_of(11).version += 1
        cluster.engine.run_until(30.0)
        cluster.recover_server()

        assert reader.counters.blocks_invalidated_on_recovery == 1
        assert (11, 0) not in reader.cache

    def test_recovery_replays_overdue_writes(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        client.open_file(1.0, 7, will_write=True)
        client.write(1.0, 7, 0, 4 * KB)

        cluster.engine.run_until(10.0)
        cluster.crash_server(down_until=60.0)
        cluster.engine.run_until(60.0)
        assert client.cache.dirty_count == 1  # daemon was gated off
        cluster.recover_server()

        assert client.counters.blocks_cleaned_recovery == 1
        assert client.cache.dirty_count == 0
        assert client.counters.lost_dirty_blocks == 0

    def test_write_shared_file_is_redisabled_after_reopen(self):
        cluster = make_cluster()
        writer, reader = cluster.clients
        writer.open_file(0.0, 13, will_write=True)
        reader.open_file(0.0, 13, will_write=False)
        assert 13 in writer._uncacheable

        cluster.crash_server(down_until=10.0)
        cluster.engine.run_until(10.0)
        cluster.recover_server()

        assert cluster.server.state_of(13).uncacheable
        assert 13 in writer._uncacheable and 13 in reader._uncacheable


# --- client crash ------------------------------------------------------------------


class TestClientCrash:
    def test_dirty_data_dies_with_the_machine(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        client.open_file(0.0, 7, will_write=True)
        client.write(0.0, 7, 0, 10 * KB)
        assert client.cache.dirty_count == 3

        cluster.crash_client(client)
        assert client.counters.lost_dirty_blocks == 3
        assert client.counters.lost_dirty_bytes > 0
        assert len(client.cache) == 0
        assert cluster.server.state_of(7).last_writer == -1
        assert cluster.server.state_of(7).writers == {}

    def test_epoch_bump_drops_stale_closes(self):
        from repro.trace.records import (
            AccessMode,
            CloseRecord,
            OpenRecord,
            WriteRunRecord,
        )

        schedule = FaultSchedule(
            [FaultEvent(10.0, FaultKind.CLIENT_CRASH, 0, 20.0)]
        )
        records = [
            OpenRecord(time=1.0, open_id=1, file_id=7, server_id=0,
                       client_id=0, mode=AccessMode.WRITE),
            WriteRunRecord(time=2.0, open_id=1, file_id=7, server_id=0,
                           client_id=0, offset=0, length=4 * KB),
            # The machine reboots at t=30; this close's open died with it.
            CloseRecord(time=40.0, open_id=1, file_id=7, server_id=0,
                        client_id=0),
        ]
        result = run_cluster_on_trace(
            records, 60.0, ClusterConfig(client_count=2), seed=5,
            fault_schedule=schedule,
        )
        counters = result.final_counters[0]
        assert counters.crashes == 1
        assert counters.ops_dropped_while_down == 1
        assert counters.lost_dirty_blocks == 1

    def test_ops_to_a_dead_client_are_dropped(self):
        from repro.trace.records import AccessMode, OpenRecord, ReadRunRecord

        schedule = FaultSchedule(
            [FaultEvent(5.0, FaultKind.CLIENT_CRASH, 0, 100.0)]
        )
        records = [
            OpenRecord(time=10.0, open_id=1, file_id=3, server_id=0,
                       client_id=0, mode=AccessMode.READ),
            ReadRunRecord(time=11.0, open_id=1, file_id=3, server_id=0,
                          client_id=0, offset=0, length=KB),
        ]
        result = run_cluster_on_trace(
            records, 50.0, ClusterConfig(client_count=2), seed=5,
            fault_schedule=schedule,
        )
        counters = result.final_counters[0]
        assert counters.ops_dropped_while_down == 2
        assert counters.file_open_ops == 0
        assert counters.cache_read_ops == 0


# --- partitions and degraded modes -------------------------------------------------


class TestPartition:
    def test_stale_reads_are_counted(self):
        cluster = make_cluster()
        reader, writer = cluster.clients
        reader.open_file(0.0, 5, will_write=False)
        reader.read(0.0, 5, 0, 4 * KB)
        reader.close_file(0.0, 5, wrote=False)

        cluster.partition_client(reader, until=100.0)
        # The version moves on while the reader is cut off.
        writer.open_file(1.0, 5, will_write=True)
        writer.write(1.0, 5, 0, 4 * KB)
        writer.close_file(1.0, 5, wrote=True)

        reader.read(2.0, 5, 0, 4 * KB)
        assert reader.counters.stale_reads_served == 1
        assert reader.counters.stale_read_bytes == 4 * KB

    def test_stall_mode_books_retries_and_stall_time(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        cluster.partition_client(client, until=10.0)
        client.open_file(0.0, 5, will_write=False)
        assert client.counters.rpc_retries > 0
        assert client.counters.stall_seconds == pytest.approx(10.0)
        # The op itself executed (stall semantics): the server saw it.
        assert cluster.server.counters.open_rpcs == 1

    def test_fail_mode_drops_data_ops_after_timeout(self):
        cluster = make_cluster(
            faults=FaultConfig(degraded_mode="fail", rpc_timeout=5.0)
        )
        client = cluster.clients[0]
        cluster.partition_client(client, until=100.0)
        client.open_file(0.0, 5, will_write=False)  # naming op: stalls
        before = cluster.server.counters.block_reads
        client.read(0.0, 5, 0, 4 * KB)
        assert client.counters.rpc_failed_ops == 1
        assert cluster.server.counters.block_reads == before
        assert client.counters.cache_read_misses == 1  # miss still counted
        assert len(client.cache) == 0  # nothing crossed the wire

    def test_heal_revalidates_and_replays(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        client.open_file(1.0, 7, will_write=True)
        client.write(1.0, 7, 0, 4 * KB)
        client.close_file(1.0, 7, wrote=True)

        # End the partition off the daemon's 5-second grid so the heal
        # itself (not a coincident scan) does the replaying.
        cluster.partition_client(client, until=57.5)
        cluster.engine.run_until(57.5)
        assert client.cache.dirty_count == 1  # daemon gated off
        cluster.heal_client(client)
        assert client.counters.blocks_cleaned_recovery == 1
        assert client.counters.revalidate_rpcs > 0

    def test_overlapping_partitions_extend_not_recount(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        cluster.partition_client(client, until=50.0)
        cluster.engine.run_until(10.0)
        cluster.partition_client(client, until=80.0)
        assert client.counters.partitions == 1
        assert client.partition_until == 80.0

    def test_failed_recall_keeps_writer_on_record(self):
        cluster = make_cluster()
        writer, reader = cluster.clients
        writer.open_file(0.0, 7, will_write=True)
        writer.write(0.0, 7, 0, 4 * KB)
        writer.close_file(0.0, 7, wrote=True)

        cluster.partition_client(writer, until=100.0)
        reader.open_file(1.0, 7, will_write=False)
        assert cluster.server.counters.recalls_failed == 1
        assert cluster.server.counters.recalls_issued == 0
        # The dirty data is still on the writer, still on record.
        assert cluster.server.state_of(7).last_writer == 0
        assert writer.cache.dirty_count == 1


# --- the injector ------------------------------------------------------------------


class TestFaultInjector:
    def test_scripted_server_crash_through_replay(self, small_trace):
        mid = small_trace.records[len(small_trace.records) // 2].time
        schedule = FaultSchedule(
            [FaultEvent(mid, FaultKind.SERVER_CRASH, SERVER_TARGET, 120.0)]
        )
        result = run_cluster_on_trace(
            small_trace.records,
            small_trace.duration,
            ClusterConfig(client_count=4),
            seed=9,
            fault_schedule=schedule,
        )
        assert result.server_counters.crashes == 1
        assert result.server_counters.downtime_seconds == pytest.approx(120.0)
        total_revalidate = sum(
            c.revalidate_rpcs for c in result.final_counters.values()
        )
        assert total_revalidate == result.server_counters.revalidate_rpcs
        assert total_revalidate > 0

    def test_generated_schedule_arms_automatically(self, small_trace):
        config = ClusterConfig(
            client_count=4,
            faults=FaultConfig(server_crash_rate=2.0, server_downtime=60.0),
        )
        result = run_cluster_on_trace(
            small_trace.records, small_trace.duration, config, seed=9
        )
        assert result.server_counters.crashes > 0

    def test_recovery_past_end_stays_down(self):
        schedule = FaultSchedule(
            [FaultEvent(10.0, FaultKind.SERVER_CRASH, SERVER_TARGET, 1e6)]
        )
        cluster = Cluster(
            ClusterConfig(client_count=2), seed=3, fault_schedule=schedule
        )
        result = cluster.replay([], 100.0)
        assert not cluster.server.up
        assert result.server_counters.crashes == 1
