"""Tests for trace tools (summarize, split) and the BSD comparison and
latency analysis modules."""

import pytest

from repro.analysis.bsd_comparison import (
    BSD_1985,
    build_comparisons,
    render_then_vs_now,
    throughput_vs_compute_gap,
)
from repro.common.errors import TraceError
from repro.fs.latency import analyze_paging_latency
from repro.trace.records import OpenRecord, ReadRunRecord, WriteRunRecord
from repro.trace.tools import split_by_duration, summarize


class TestSummarize:
    def test_empty_stream(self):
        summary = summarize([])
        assert summary.records == 0
        assert summary.span_seconds == 0.0

    def test_counts_and_bytes(self):
        records = [
            OpenRecord(time=0.0, server_id=0, open_id=1, file_id=1, user_id=3,
                       client_id=2),
            ReadRunRecord(time=1.0, server_id=0, open_id=1, file_id=1,
                          user_id=3, client_id=2, offset=0, length=100),
            WriteRunRecord(time=2.0, server_id=0, open_id=1, file_id=1,
                           user_id=3, client_id=2, offset=0, length=50),
        ]
        summary = summarize(records)
        assert summary.records == 3
        assert summary.bytes_read == 100
        assert summary.bytes_written == 50
        assert summary.users == {3}
        assert summary.clients == {2}
        assert summary.span_seconds == 2.0

    def test_negative_user_ids_excluded(self):
        records = [
            OpenRecord(time=0.0, server_id=0, open_id=1, file_id=1,
                       user_id=-1),
        ]
        assert summarize(records).users == set()

    def test_render(self, small_trace):
        text = summarize(small_trace.records).render()
        assert "records" in text and "Mbytes read" in text

    def test_matches_trace(self, small_trace):
        summary = summarize(small_trace.records)
        assert summary.records == len(small_trace.records)
        assert summary.by_kind["open"] == summary.by_kind["close"] + len(
            small_trace.validation.unclosed_open_ids
        )


class TestSplit:
    def test_split_into_halves(self):
        records = [
            OpenRecord(time=float(t), server_id=0, open_id=t, file_id=1)
            for t in range(10)
        ]
        pieces = list(split_by_duration(records, 5.0))
        assert [index for index, _ in pieces] == [0, 1]
        assert len(pieces[0][1]) == 5

    def test_rebase_times(self):
        records = [OpenRecord(time=7.0, server_id=0, open_id=1, file_id=1)]
        (_, piece), = split_by_duration(records, 5.0)
        assert piece[0].time == 2.0

    def test_no_rebase(self):
        records = [OpenRecord(time=7.0, server_id=0, open_id=1, file_id=1)]
        (_, piece), = split_by_duration(records, 5.0, rebase_times=False)
        assert piece[0].time == 7.0

    def test_unsorted_raises(self):
        records = [
            OpenRecord(time=9.0, server_id=0, open_id=1, file_id=1),
            OpenRecord(time=1.0, server_id=0, open_id=2, file_id=1),
        ]
        with pytest.raises(TraceError):
            list(split_by_duration(records, 5.0))

    def test_bad_duration_raises(self):
        with pytest.raises(TraceError):
            list(split_by_duration([], 0.0))

    def test_split_conserves_records(self, small_trace):
        pieces = list(split_by_duration(small_trace.records, 6 * 3600.0))
        assert sum(len(p) for _, p in pieces) == len(small_trace.records)


class TestBsdComparison:
    def test_baseline_paging_share(self):
        assert BSD_1985.paging_share == pytest.approx(3 / 7)

    def test_build_comparisons_rows(self):
        rows = build_comparisons(
            throughput_10min_kbs=8.0,
            throughput_10s_kbs=47.0,
            opens_below_quarter_second=0.75,
            whole_file_read_fraction=0.78,
            sequential_bytes_fraction=0.92,
            read_miss_ratio=0.41,
        )
        assert len(rows) == 7
        throughput_row = rows[0]
        assert throughput_row.factor == pytest.approx(20.0)

    def test_large_file_row_optional(self):
        rows = build_comparisons(8.0, 47.0, 0.75, 0.78, 0.92, 0.41,
                                 median_large_file_bytes=1e7)
        assert len(rows) == 8
        assert rows[-1].factor == pytest.approx(10.0)

    def test_compute_gap(self):
        # Paper: compute grew 350x, throughput 20x -> gap ~17.5.
        gap = throughput_vs_compute_gap(8.0)
        assert 10.0 < gap < 25.0

    def test_zero_throughput_gap(self):
        assert throughput_vs_compute_gap(0.0) == float("inf")

    def test_render(self):
        rows = build_comparisons(8.0, 47.0, 0.75, 0.78, 0.92, 0.41)
        text = render_then_vs_now(rows)
        assert "1985" in text and "Measured" in text


class TestLatencyAnalysis:
    def test_from_cluster_result(self, cluster_result):
        analysis = analyze_paging_latency([cluster_result])
        assert analysis.paging_bytes_per_second > 0
        assert 0.0 < analysis.ethernet_utilization < 1.0
        assert analysis.remote_faster_than_disk  # 6.5 ms < 25 ms
        assert 0.0 < analysis.backing_share_of_server_traffic < 1.0

    def test_render(self, cluster_result):
        text = analyze_paging_latency([cluster_result]).render()
        assert "Ethernet" in text
        assert "Verdict" in text

    def test_empty_results(self):
        analysis = analyze_paging_latency([])
        assert analysis.paging_bytes_per_second == 0.0
        assert analysis.pages_per_client_per_second == 0.0
