"""Tests for the application models and the trace generator."""

import pytest

from repro.common.ids import ClientId, UserId
from repro.common.rng import RngStream
from repro.trace.validate import validate_stream
from repro.workload import (
    STANDARD_PROFILES,
    FileSpace,
    RecordEmitter,
    TraceProfile,
    generate_trace,
)
from repro.workload.apps import (
    AppContext,
    UserFiles,
    run_browse,
    run_compile,
    run_document,
    run_edit,
    run_mail,
    run_rw_update,
    run_shared_log,
    run_shell,
    run_simulation,
)
from repro.workload.distributions import FileSizeModel
from repro.workload.profiles import scaled_profile
from repro.workload.users import UserGroup, UserProfile


def make_context(seed=5, migration_hosts=4):
    rng = RngStream.root(seed)
    filespace = FileSpace(server_count=4, rng=rng.fork("fs"))
    emitter = RecordEmitter(filespace)
    user = UserProfile(
        user_id=UserId(0),
        group=UserGroup.OS,
        home_client=ClientId(0),
        regular=True,
        sessions_per_day=5.0,
        uses_migration=True,
    )
    return AppContext(
        emitter=emitter,
        rng=rng.fork("app"),
        user=user,
        files=UserFiles(),
        size_model=FileSizeModel.typical(),
        migration_hosts=[ClientId(i) for i in range(1, migration_hosts + 1)],
    )


def sorted_records(ctx):
    return sorted(ctx.emitter.records, key=lambda r: r.time)


APPS = [
    ("edit", lambda ctx: run_edit(ctx, 0.0)),
    ("compile_local", lambda ctx: run_compile(ctx, 0.0, migrated=False)),
    ("compile_migrated", lambda ctx: run_compile(ctx, 0.0, migrated=True)),
    ("simulation", lambda ctx: run_simulation(ctx, 0.0, migrated=False)),
    ("simulation_migrated", lambda ctx: run_simulation(ctx, 0.0, migrated=True)),
    ("mail", lambda ctx: run_mail(ctx, 0.0)),
    ("document", lambda ctx: run_document(ctx, 0.0)),
    ("browse", lambda ctx: run_browse(ctx, 0.0)),
    ("shell", lambda ctx: run_shell(ctx, 0.0)),
    ("rw_update", lambda ctx: run_rw_update(ctx, 0.0)),
]


class TestApplications:
    @pytest.mark.parametrize("name,runner", APPS, ids=[a[0] for a in APPS])
    def test_app_emits_valid_trace(self, name, runner):
        ctx = make_context()
        end = runner(ctx)
        assert end > 0.0
        report = validate_stream(sorted_records(ctx))
        assert report.balanced, f"{name} left unbalanced episodes"

    @pytest.mark.parametrize("name,runner", APPS, ids=[a[0] for a in APPS])
    def test_app_advances_time_monotonically(self, name, runner):
        ctx = make_context(seed=11)
        end = runner(ctx)
        assert all(r.time <= end + 1e-6 for r in ctx.emitter.records)

    def test_compile_migrated_uses_remote_hosts(self):
        ctx = make_context(seed=3)
        run_compile(ctx, 0.0, migrated=True)
        migrated = [r for r in ctx.emitter.records
                    if getattr(r, "migrated", False)]
        assert migrated, "a migrated compile must produce migrated records"
        assert any(r.client_id != 0 for r in migrated)

    def test_compile_local_stays_home(self):
        ctx = make_context(seed=3)
        run_compile(ctx, 0.0, migrated=False)
        assert all(r.client_id == 0 for r in ctx.emitter.records
                   if hasattr(r, "client_id"))

    def test_compile_link_reads_objects_at_home(self):
        ctx = make_context(seed=4)
        run_compile(ctx, 0.0, migrated=True)
        # The link step writes an executable on the home client.
        writes_home = [
            r for r in ctx.emitter.records
            if r.kind == "write_run" and r.client_id == 0
        ]
        assert writes_home

    def test_simulation_deletes_its_output(self):
        ctx = make_context(seed=6)
        run_simulation(ctx, 0.0, migrated=False)
        kinds = [r.kind for r in ctx.emitter.records]
        assert "delete" in kinds

    def test_simulation_reads_megabytes(self):
        ctx = make_context(seed=6)
        ctx.simulation_intensity = 3.0
        run_simulation(ctx, 0.0, migrated=False)
        read_bytes = sum(r.length for r in ctx.emitter.records
                         if r.kind == "read_run")
        assert read_bytes > 5 * 1024 * 1024

    def test_edit_reuses_files_across_invocations(self):
        ctx = make_context(seed=7)
        run_edit(ctx, 0.0)
        first_sources = list(ctx.files.sources)
        run_edit(ctx, 10_000.0)
        assert any(f in ctx.files.sources for f in first_sources)

    def test_shell_appends_history(self):
        ctx = make_context(seed=8)
        run_shell(ctx, 0.0)
        assert ctx.files.history is not None

    def test_mail_creates_inbox(self):
        ctx = make_context(seed=9)
        run_mail(ctx, 0.0)
        assert ctx.files.inbox is not None

    def test_rw_update_produces_read_write_access(self):
        ctx = make_context(seed=10)
        run_rw_update(ctx, 0.0)
        from repro.analysis import assemble_accesses, classify_access
        from repro.analysis.access_patterns import AccessType

        accesses = list(assemble_accesses(sorted_records(ctx)))
        types = {classify_access(a)[0] for a in accesses if classify_access(a)}
        assert AccessType.READ_WRITE in types

    def test_shared_log_produces_shared_events_and_overlap(self):
        ctx = make_context(seed=12)
        partner = UserProfile(
            user_id=UserId(1), group=UserGroup.OS, home_client=ClientId(3),
            regular=True, sessions_per_day=5.0, uses_migration=False,
        )
        log = ctx.emitter.register_existing_file(0.0, ctx.user_id, 4096)
        run_shared_log(ctx, 0.0, partner, requests=20, log_file=log)
        kinds = [r.kind for r in ctx.emitter.records]
        assert "shared_write" in kinds
        opens = [r for r in ctx.emitter.records if r.kind == "open"]
        assert len(opens) == 2
        assert {o.client_id for o in opens} == {0, 3}


class TestProfiles:
    def test_standard_profiles_count(self):
        assert len(STANDARD_PROFILES) == 8

    def test_profile_names_unique(self):
        names = [p.name for p in STANDARD_PROFILES]
        assert len(set(names)) == 8

    def test_sim_traces_marked(self):
        assert STANDARD_PROFILES[2].simulation_intensity > 2
        assert STANDARD_PROFILES[3].simulation_intensity > 2

    def test_scaled_profile_shrinks_users(self):
        scaled = scaled_profile(STANDARD_PROFILES[0], 0.5)
        assert scaled.user_target == round(44 * 0.5)
        assert scaled.migration_user_target >= 1

    def test_scaled_profile_identity(self):
        assert scaled_profile(STANDARD_PROFILES[0], 1.0) is STANDARD_PROFILES[0]

    def test_scaled_profile_rejects_zero(self):
        with pytest.raises(Exception):
            scaled_profile(STANDARD_PROFILES[0], 0.0)

    def test_profile_validation(self):
        with pytest.raises(Exception):
            TraceProfile(name="bad", date="x", user_target=0)
        with pytest.raises(Exception):
            TraceProfile(name="bad", date="x", user_target=5,
                         migration_user_target=6)


class TestGenerator:
    def test_trace_is_sorted_and_valid(self, small_trace):
        times = [r.time for r in small_trace.records]
        assert times == sorted(times)
        assert small_trace.validation.records == len(small_trace.records)

    def test_trace_within_duration(self, small_trace):
        assert all(0 <= r.time < small_trace.duration
                   for r in small_trace.records)

    def test_trace_determinism(self):
        a = generate_trace(STANDARD_PROFILES[0], seed=77, scale=0.03)
        b = generate_trace(STANDARD_PROFILES[0], seed=77, scale=0.03)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        a = generate_trace(STANDARD_PROFILES[0], seed=77, scale=0.03)
        b = generate_trace(STANDARD_PROFILES[0], seed=78, scale=0.03)
        assert a.records != b.records

    def test_trace_has_core_event_kinds(self, small_trace):
        kinds = {r.kind for r in small_trace.records}
        assert {"open", "close", "read_run", "write_run", "delete",
                "dir_read"} <= kinds

    def test_migration_users_present(self, small_trace):
        migrated_users = {
            r.user_id for r in small_trace.records
            if getattr(r, "migrated", False)
        }
        assert migrated_users

    def test_client_ids_in_range(self, small_trace):
        clients = {
            r.client_id for r in small_trace.records if hasattr(r, "client_id")
        }
        assert all(0 <= c < 40 for c in clients)

    def test_shared_trace_has_more_shared_events(
        self, small_trace, shared_heavy_trace
    ):
        def shared_count(trace):
            return sum(1 for r in trace.records
                       if r.kind in ("shared_read", "shared_write"))

        # trace8's shared intensity is 20x trace1's.
        assert shared_count(shared_heavy_trace) > shared_count(small_trace)

    def test_sim_trace_reads_more_bytes(self, small_trace, sim_trace):
        def read_bytes(trace):
            return sum(r.length for r in trace.records
                       if r.kind == "read_run")

        assert read_bytes(sim_trace) > 2 * read_bytes(small_trace)
