"""Tests for the consistency study (Tables 10-12)."""

import pytest

from repro.consistency import (
    compute_actions,
    extract_shared_activity,
    simulate_polling,
    simulate_schemes,
)
from repro.consistency.events import OpenInterval, SharedFileActivity, SharedRequest
from repro.consistency.schemes import _TokenScheme, _WindowedScheme
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    OpenRecord,
    ReadRunRecord,
    WriteRunRecord,
)


def open_close(open_id, file_id, client, t0, t1, write=False, user=None):
    mode = AccessMode.WRITE if write else AccessMode.READ
    user = user if user is not None else client
    return [
        OpenRecord(time=t0, server_id=0, open_id=open_id, file_id=file_id,
                   user_id=user, client_id=client, mode=mode),
        CloseRecord(time=t1, server_id=0, open_id=open_id, file_id=file_id,
                    user_id=user, client_id=client),
    ]


class TestActions:
    def test_no_sharing_no_actions(self):
        records = sorted(
            open_close(1, 1, client=0, t0=0.0, t1=1.0)
            + open_close(2, 1, client=0, t0=2.0, t1=3.0),
            key=lambda r: r.time,
        )
        result = compute_actions(records)
        assert result.opens == 2
        assert result.write_sharing_opens == 0
        assert result.recall_opens == 0

    def test_concurrent_write_sharing_detected(self):
        records = sorted(
            open_close(1, 1, client=0, t0=0.0, t1=10.0, write=True)
            + open_close(2, 1, client=1, t0=5.0, t1=8.0),
            key=lambda r: r.time,
        )
        result = compute_actions(records)
        assert result.write_sharing_opens == 1

    def test_same_client_not_sharing(self):
        records = sorted(
            open_close(1, 1, client=0, t0=0.0, t1=10.0, write=True)
            + open_close(2, 1, client=0, t0=5.0, t1=8.0),
            key=lambda r: r.time,
        )
        assert compute_actions(records).write_sharing_opens == 0

    def test_two_readers_not_sharing(self):
        records = sorted(
            open_close(1, 1, client=0, t0=0.0, t1=10.0)
            + open_close(2, 1, client=1, t0=5.0, t1=8.0),
            key=lambda r: r.time,
        )
        assert compute_actions(records).write_sharing_opens == 0

    def test_recall_on_quick_cross_client_open(self):
        writer = open_close(1, 1, client=0, t0=0.0, t1=1.0, write=True)
        writer.insert(1, WriteRunRecord(
            time=0.5, server_id=0, open_id=1, file_id=1, user_id=0,
            client_id=0, offset=0, length=100,
        ))
        reader = open_close(2, 1, client=1, t0=5.0, t1=6.0)
        records = sorted(writer + reader, key=lambda r: r.time)
        assert compute_actions(records).recall_opens == 1

    def test_no_recall_after_flush_horizon(self):
        writer = open_close(1, 1, client=0, t0=0.0, t1=1.0, write=True)
        writer.insert(1, WriteRunRecord(
            time=0.5, server_id=0, open_id=1, file_id=1, user_id=0,
            client_id=0, offset=0, length=100,
        ))
        reader = open_close(2, 1, client=1, t0=100.0, t1=101.0)
        records = sorted(writer + reader, key=lambda r: r.time)
        assert compute_actions(records).recall_opens == 0

    def test_no_recall_for_own_data(self):
        writer = open_close(1, 1, client=0, t0=0.0, t1=1.0, write=True)
        writer.insert(1, WriteRunRecord(
            time=0.5, server_id=0, open_id=1, file_id=1, user_id=0,
            client_id=0, offset=0, length=100,
        ))
        again = open_close(2, 1, client=0, t0=2.0, t1=3.0)
        records = sorted(writer + again, key=lambda r: r.time)
        assert compute_actions(records).recall_opens == 0

    def test_trace_level_frequencies(self, small_trace):
        result = compute_actions(small_trace.records)
        assert 0.0 < result.write_sharing_fraction < 0.05
        assert 0.0 < result.recall_fraction < 0.10


class TestPolling:
    def write(self, t, client, file_id=1):
        return WriteRunRecord(time=t, server_id=0, open_id=0, file_id=file_id,
                              user_id=client, client_id=client, offset=0,
                              length=10)

    def read(self, t, client, file_id=1):
        return ReadRunRecord(time=t, server_id=0, open_id=0, file_id=file_id,
                             user_id=client, client_id=client, offset=0,
                             length=10)

    def test_stale_read_within_interval(self):
        records = [
            self.read(0.0, client=1),   # client 1 validates at t=0
            self.write(5.0, client=2),  # foreign write
            self.read(10.0, client=1),  # within 60s window: stale!
        ]
        result = simulate_polling(records, refresh_interval=60.0, duration=3600)
        assert result.errors == 1
        assert result.users_affected == {1}

    def test_expired_cache_revalidates(self):
        records = [
            self.read(0.0, client=1),
            self.write(5.0, client=2),
            self.read(100.0, client=1),  # interval expired: fresh check
        ]
        result = simulate_polling(records, refresh_interval=60.0, duration=3600)
        assert result.errors == 0

    def test_short_interval_catches_more(self):
        records = [
            self.read(0.0, client=1),
            self.write(5.0, client=2),
            self.read(10.0, client=1),
        ]
        stale_60 = simulate_polling(records, 60.0, 3600).errors
        stale_3 = simulate_polling(records, 3.0, 3600).errors
        assert stale_60 == 1
        assert stale_3 == 0

    def test_own_write_never_stale(self):
        records = [
            self.read(0.0, client=1),
            self.write(5.0, client=1),
            self.read(10.0, client=1),
        ]
        assert simulate_polling(records, 60.0, 3600).errors == 0

    def test_cold_cache_no_error(self):
        records = [
            self.write(5.0, client=2),
            self.read(10.0, client=1),  # first read: validates fresh
        ]
        assert simulate_polling(records, 60.0, 3600).errors == 0

    def test_errors_per_hour(self):
        records = [
            self.read(0.0, client=1),
            self.write(5.0, client=2),
            self.read(10.0, client=1),
        ]
        result = simulate_polling(records, 60.0, duration=7200.0)
        assert result.errors_per_hour == pytest.approx(0.5)

    def test_trace_level_60s_worse_than_3s(self, shared_heavy_trace):
        r60 = simulate_polling(shared_heavy_trace.records, 60.0,
                               shared_heavy_trace.duration)
        r3 = simulate_polling(shared_heavy_trace.records, 3.0,
                              shared_heavy_trace.duration)
        assert r60.errors > r3.errors
        assert len(r60.users_affected) >= len(r3.users_affected)


class TestSharedActivityExtraction:
    def test_extracts_shared_files_only(self, small_trace):
        activities = extract_shared_activity(small_trace.records)
        shared_ids = {
            r.file_id for r in small_trace.records
            if r.kind in ("shared_read", "shared_write")
        }
        assert {a.file_id for a in activities} == shared_ids

    def test_requests_time_ordered(self, small_trace):
        for activity in extract_shared_activity(small_trace.records):
            times = [r.time for r in activity.requests]
            assert times == sorted(times)

    def test_sharing_windows_basic(self):
        activity = SharedFileActivity(file_id=1)
        activity.intervals = [
            OpenInterval(client_id=0, user_id=0, start=0.0, end=10.0,
                         writer=True),
            OpenInterval(client_id=1, user_id=1, start=2.0, end=6.0,
                         writer=False),
        ]
        strict = activity.sharing_windows(until_all_close=True)
        relaxed = activity.sharing_windows(until_all_close=False)
        assert strict == [(2.0, 10.0)]
        assert relaxed == [(2.0, 6.0)]

    def test_no_window_without_writer(self):
        activity = SharedFileActivity(file_id=1)
        activity.intervals = [
            OpenInterval(client_id=0, user_id=0, start=0.0, end=10.0,
                         writer=False),
            OpenInterval(client_id=1, user_id=1, start=2.0, end=6.0,
                         writer=False),
        ]
        assert activity.sharing_windows(until_all_close=True) == []


class TestSchemes:
    def make_activity(self, requests, intervals=None):
        activity = SharedFileActivity(file_id=1)
        activity.requests = requests
        activity.intervals = intervals or [
            OpenInterval(client_id=0, user_id=0, start=0.0, end=1e9,
                         writer=True),
            OpenInterval(client_id=1, user_id=1, start=0.0, end=1e9,
                         writer=False),
        ]
        return activity

    def test_sprite_is_exact_passthrough(self):
        requests = [
            SharedRequest(time=1.0, client_id=0, user_id=0, offset=0,
                          length=100, is_write=True),
            SharedRequest(time=2.0, client_id=1, user_id=1, offset=0,
                          length=100, is_write=False),
        ]
        overhead = _WindowedScheme("Sprite", True).run(self.make_activity(requests))
        assert overhead.byte_ratio == 1.0
        assert overhead.rpc_ratio == 1.0

    def test_token_coalesces_repeated_writes(self):
        # 10 writes to the same block within 30 s, no readers.
        requests = [
            SharedRequest(time=float(i), client_id=0, user_id=0, offset=0,
                          length=4096, is_write=True)
            for i in range(10)
        ]
        overhead = _TokenScheme().run(self.make_activity(requests))
        # One eventual 4K flush for 40K written.
        assert overhead.byte_ratio == pytest.approx(0.1)
        assert overhead.rpc_ratio < 1.0

    def test_token_thrashes_on_fine_alternation(self):
        requests = []
        for index in range(20):
            requests.append(
                SharedRequest(time=index * 2.0, client_id=0, user_id=0,
                              offset=0, length=100, is_write=True)
            )
            requests.append(
                SharedRequest(time=index * 2.0 + 1.0, client_id=1, user_id=1,
                              offset=0, length=100, is_write=False)
            )
        sprite = _WindowedScheme("Sprite", True).run(self.make_activity(requests))
        token = _TokenScheme().run(self.make_activity(requests))
        assert token.byte_ratio > sprite.byte_ratio

    def test_token_read_hits_are_free(self):
        requests = [
            SharedRequest(time=1.0, client_id=1, user_id=1, offset=0,
                          length=4096, is_write=False),
            SharedRequest(time=2.0, client_id=1, user_id=1, offset=0,
                          length=4096, is_write=False),
        ]
        token = _TokenScheme().run(self.make_activity(requests))
        # One fetch RPC + one token RPC for the first read; second free.
        assert token.bytes_transferred == 4096

    def test_simulate_schemes_pools_files(self, shared_heavy_trace):
        comparison = simulate_schemes(
            extract_shared_activity(shared_heavy_trace.records)
        )
        assert comparison.sprite.requests > 0
        assert comparison.sprite.byte_ratio == pytest.approx(1.0, abs=0.1)
        assert comparison.token.requests == comparison.sprite.requests

    def test_schemes_comparable_overheads(self, shared_heavy_trace):
        """The paper's conclusion: no scheme is dramatically worse."""
        comparison = simulate_schemes(
            extract_shared_activity(shared_heavy_trace.records)
        )
        assert comparison.token.byte_ratio < 3.0
        assert comparison.modified.byte_ratio < 2.0
