"""Unit tests for the discrete-event engine and timers."""

import time

import pytest

from repro.common.errors import SchedulingError
from repro.sim import Engine, RecurringTimer, SharedTicker
from repro.sim.engine import _COMPACT_MIN_STALE


class TestEngine:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_clock_custom_start(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append(3))
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run_until(10.0)
        assert fired == [1, 2, 3]

    def test_ties_fire_fifo(self):
        engine = Engine()
        fired = []
        for index in range(5):
            engine.schedule_at(1.0, lambda i=index: fired.append(i))
        engine.run_all()
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until_advances_clock(self):
        engine = Engine()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_run_until_stops_at_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("on-boundary"))
        engine.schedule_at(5.001, lambda: fired.append("after"))
        engine.run_until(5.0)
        assert fired == ["on-boundary"]
        assert engine.pending == 1

    def test_schedule_in_past_raises(self):
        engine = Engine()
        engine.run_until(10.0)
        with pytest.raises(SchedulingError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SchedulingError):
            Engine().schedule_after(-1.0, lambda: None)

    def test_run_until_backwards_raises(self):
        engine = Engine()
        engine.run_until(10.0)
        with pytest.raises(SchedulingError):
            engine.run_until(5.0)

    def test_cancel_prevents_firing(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run_all()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending == 0

    def test_callback_sees_current_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(7.5, lambda: seen.append(engine.now))
        engine.run_all()
        assert seen == [7.5]

    def test_callback_can_schedule_more(self):
        engine = Engine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule_after(1.0, lambda: fired.append("second"))

        engine.schedule_at(1.0, first)
        engine.run_until(5.0)
        assert fired == ["first", "second"]

    def test_run_all_guards_against_runaway(self):
        engine = Engine()

        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule_at(0.0, reschedule)
        with pytest.raises(SchedulingError):
            engine.run_all(max_events=100)

    def test_run_all_guard_is_exact(self):
        # Exactly max_events pending events must run to completion; the
        # guard used to let max_events + 1 callbacks fire before raising.
        engine = Engine()
        fired = []
        for i in range(5):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        engine.run_all(max_events=5)
        assert fired == [0, 1, 2, 3, 4]

    def test_run_all_guard_raises_before_excess_event_fires(self):
        engine = Engine()
        fired = []
        for i in range(6):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        with pytest.raises(SchedulingError):
            engine.run_all(max_events=5)
        # The sixth callback must never have run.
        assert fired == [0, 1, 2, 3, 4]

    def test_advance_to_skipping_event_raises(self):
        engine = Engine()
        engine.schedule_at(5.0, lambda: None)
        with pytest.raises(SchedulingError):
            engine.advance_to(10.0)

    def test_advance_to_before_events_ok(self):
        engine = Engine()
        engine.schedule_at(5.0, lambda: None)
        engine.advance_to(3.0)
        assert engine.now == 3.0

    def test_events_run_counter(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.run_all()
        assert engine.events_run == 2


class TestRecurringTimer:
    def test_fires_every_period(self):
        engine = Engine()
        fired = []
        timer = RecurringTimer(engine, 5.0, lambda: fired.append(engine.now))
        timer.start()
        engine.run_until(16.0)
        assert fired == [5.0, 10.0, 15.0]
        assert timer.fire_count == 3

    def test_fire_immediately_option(self):
        engine = Engine()
        fired = []
        timer = RecurringTimer(
            engine, 5.0, lambda: fired.append(engine.now), fire_immediately=True
        )
        timer.start()
        engine.run_until(6.0)
        assert fired == [0.0, 5.0]

    def test_stop_halts_firing(self):
        engine = Engine()
        fired = []
        timer = RecurringTimer(engine, 1.0, lambda: fired.append(engine.now))
        timer.start()
        engine.run_until(2.5)
        timer.stop()
        engine.run_until(10.0)
        assert fired == [1.0, 2.0]
        assert not timer.running

    def test_double_start_raises(self):
        engine = Engine()
        timer = RecurringTimer(engine, 1.0, lambda: None)
        timer.start()
        with pytest.raises(SchedulingError):
            timer.start()

    def test_stop_is_idempotent(self):
        engine = Engine()
        timer = RecurringTimer(engine, 1.0, lambda: None)
        timer.start()
        timer.stop()
        timer.stop()

    def test_restart_after_stop(self):
        engine = Engine()
        fired = []
        timer = RecurringTimer(engine, 1.0, lambda: fired.append(engine.now))
        timer.start()
        engine.run_until(1.5)
        timer.stop()
        timer.start()
        engine.run_until(3.0)
        assert fired == [1.0, 2.5]

    def test_bad_period_raises(self):
        with pytest.raises(SchedulingError):
            RecurringTimer(Engine(), 0.0, lambda: None)

    def test_callback_stopping_timer_mid_fire(self):
        engine = Engine()
        fired = []
        timer = RecurringTimer(engine, 1.0, lambda: None)

        def fire_and_stop():
            fired.append(engine.now)
            timer.stop()

        timer._callback = fire_and_stop
        timer.start()
        engine.run_until(5.0)
        assert fired == [1.0]


class TestCancellationScaling:
    """The schedule-then-cancel workload the cluster generates by the
    tens of thousands (every open schedules a writeback; most closes
    cancel it) must stay linear: pending is a counter, cancel is a
    flag flip, and cancelled events are purged lazily."""

    def test_10k_schedule_and_cancel_fast_and_correct(self):
        engine = Engine()
        handles = [
            engine.schedule_at(float(i), lambda: None) for i in range(10_000)
        ]
        counts = []
        start = time.perf_counter()
        for handle in handles:
            counts.append(engine.pending)
            handle.cancel()
        elapsed = time.perf_counter() - start
        assert counts == list(range(10_000, 0, -1))
        assert engine.pending == 0
        # The old implementation scanned the heap per pending call
        # (~50M comparisons here); the counter version is instant.
        assert elapsed < 1.0
        engine.run_all()
        assert engine.events_run == 0

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule_at(1.0, lambda: None)
        engine.run_until(2.0)
        assert engine.pending == 0
        handle.cancel()  # already fired: must not corrupt the count
        assert engine.pending == 0
        engine.schedule_at(3.0, lambda: None)
        handle.cancel()
        assert engine.pending == 1

    def test_heap_compacts_under_mass_cancellation(self):
        engine = Engine()
        handles = [
            engine.schedule_at(float(i), lambda: None) for i in range(10_000)
        ]
        for handle in handles[:-1]:
            handle.cancel()
        assert engine.pending == 1
        assert len(engine._heap) < 10_000  # stale entries were dropped
        engine.run_all()
        assert engine.events_run == 1

    def test_advance_to_skips_cancelled_events(self):
        engine = Engine()
        doomed = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(10.0, lambda: None)
        doomed.cancel()
        engine.advance_to(5.0)  # fine: the 1.0 event is cancelled
        assert engine.now == 5.0
        with pytest.raises(SchedulingError):
            engine.advance_to(11.0)  # would skip the live 10.0 event

    def test_run_until_with_cancelled_head_stops_at_end_time(self):
        engine = Engine()
        fired = []
        doomed = engine.schedule_at(1.0, lambda: fired.append("doomed"))
        engine.schedule_at(10.0, lambda: fired.append("late"))
        doomed.cancel()
        engine.run_until(5.0)  # must not fire the 10.0 event early
        assert fired == []
        assert engine.pending == 1
        engine.run_until(10.0)
        assert fired == ["late"]


class TestHeapCompaction:
    """Boundary behaviour of the stale-entry compaction pass.

    Compaction triggers when stale > _COMPACT_MIN_STALE AND
    stale > live; these tests pin both edges of that predicate and the
    invariants that must hold afterwards.
    """

    def test_no_compaction_at_exactly_min_stale(self):
        # stale == _COMPACT_MIN_STALE is NOT "more than": the heap must
        # still hold every entry.
        engine = Engine()
        handles = [
            engine.schedule_at(float(i), lambda: None)
            for i in range(_COMPACT_MIN_STALE + 1)
        ]
        for handle in handles[:_COMPACT_MIN_STALE]:
            handle.cancel()
        assert engine._stale == _COMPACT_MIN_STALE
        assert len(engine._heap) == _COMPACT_MIN_STALE + 1

    def test_compaction_one_past_the_threshold(self):
        # The (min+1)-th cancel satisfies both conditions (stale > min,
        # stale > live) and must shrink the heap to the survivors.
        engine = Engine()
        handles = [
            engine.schedule_at(float(i), lambda: None)
            for i in range(_COMPACT_MIN_STALE + 2)
        ]
        for handle in handles[: _COMPACT_MIN_STALE + 1]:
            handle.cancel()
        assert engine._stale == 0  # reset by the compaction pass
        assert len(engine._heap) == 1
        assert engine.pending == 1

    def test_stale_majority_required(self):
        # Many cancels but a live majority: no compaction yet.
        engine = Engine()
        total = 4 * _COMPACT_MIN_STALE
        handles = [
            engine.schedule_at(float(i), lambda: None) for i in range(total)
        ]
        for handle in handles[: _COMPACT_MIN_STALE + 10]:
            handle.cancel()
        assert engine._stale == _COMPACT_MIN_STALE + 10
        assert len(engine._heap) == total

    def test_advance_to_and_pending_after_compaction(self):
        engine = Engine()
        handles = [
            engine.schedule_at(float(i + 1), lambda: None)
            for i in range(_COMPACT_MIN_STALE + 2)
        ]
        survivor_time = handles[-1].time
        for handle in handles[:-1]:
            handle.cancel()
        assert len(engine._heap) == 1  # compacted
        assert engine.pending == 1
        # advance_to honours the surviving event, not the dropped ones.
        engine.advance_to(survivor_time - 0.5)
        assert engine.now == survivor_time - 0.5
        with pytest.raises(SchedulingError):
            engine.advance_to(survivor_time + 1.0)
        engine.run_all()
        assert engine.events_run == 1
        assert engine.pending == 0

    def test_cancel_after_fire_stays_idempotent_across_compaction(self):
        # A handle whose event already fired, then a compaction, then
        # more cancels of that same handle: the live count must not go
        # negative or drift.
        engine = Engine()
        fired_handle = engine.schedule_at(0.5, lambda: None)
        engine.run_until(1.0)
        handles = [
            engine.schedule_at(float(i + 2), lambda: None)
            for i in range(_COMPACT_MIN_STALE + 2)
        ]
        for handle in handles[:-1]:
            handle.cancel()
        assert engine.pending == 1
        fired_handle.cancel()  # no-op: already fired
        fired_handle.cancel()
        handles[0].cancel()  # no-op: already cancelled + compacted away
        assert engine.pending == 1
        engine.run_all()
        assert engine.events_run == 2

    def test_compaction_preserves_fifo_order(self):
        engine = Engine()
        fired = []
        doomed = [
            engine.schedule_at(1.0, lambda: fired.append("doomed"))
            for _ in range(_COMPACT_MIN_STALE + 1)
        ]
        survivors = [
            engine.schedule_at(1.0, lambda i=i: fired.append(i))
            for i in range(3)
        ]
        for handle in doomed:
            handle.cancel()
        assert len(engine._heap) == len(survivors)
        engine.run_all()
        assert fired == [0, 1, 2]


class TestSharedTicker:
    def test_fans_out_in_subscription_order(self):
        engine = Engine()
        ticker = SharedTicker(engine, 5.0)
        fired = []
        ticker.subscribe(lambda: fired.append(("a", engine.now)))
        ticker.subscribe(lambda: fired.append(("b", engine.now)))
        engine.run_until(11.0)
        assert fired == [
            ("a", 5.0), ("b", 5.0), ("a", 10.0), ("b", 10.0),
        ]
        assert ticker.fire_count == 2

    def test_one_heap_event_per_period(self):
        engine = Engine()
        ticker = SharedTicker(engine, 5.0)
        for _ in range(40):
            ticker.subscribe(lambda: None)
        assert engine.pending == 1  # not 40
        engine.run_until(21.0)
        assert engine.events_run == 4  # ticks at 5, 10, 15, 20

    def test_matches_per_subscriber_recurring_timers(self):
        # The coalescing byte-identity argument in miniature: N sibling
        # RecurringTimers started in order produce the same callback
        # sequence as N subscriptions on one ticker.
        def run_with_timers():
            engine = Engine()
            fired = []
            for name in ("a", "b", "c"):
                timer = RecurringTimer(
                    engine, 5.0, lambda n=name: fired.append((n, engine.now))
                )
                timer.start()
            engine.run_until(16.0)
            return fired

        def run_with_ticker():
            engine = Engine()
            fired = []
            ticker = SharedTicker(engine, 5.0)
            for name in ("a", "b", "c"):
                ticker.subscribe(lambda n=name: fired.append((n, engine.now)))
            engine.run_until(16.0)
            return fired

        assert run_with_timers() == run_with_ticker()

    def test_cancelled_subscription_stops_receiving(self):
        engine = Engine()
        ticker = SharedTicker(engine, 1.0)
        fired = []
        keep = ticker.subscribe(lambda: fired.append("keep"))
        drop = ticker.subscribe(lambda: fired.append("drop"))
        engine.run_until(1.5)
        drop.cancel()
        drop.stop()  # the RecurringTimer-compatible alias, idempotent
        engine.run_until(3.5)
        assert fired == ["keep", "drop", "keep", "keep"]
        assert keep.running and not drop.running
        assert ticker.subscriber_count == 1

    def test_rearms_after_full_drain(self):
        engine = Engine()
        ticker = SharedTicker(engine, 2.0)
        first = ticker.subscribe(lambda: None)
        first.cancel()
        engine.run_until(3.0)  # the armed tick fires into nobody
        assert engine.pending == 0  # ...and did not reschedule
        fired = []
        ticker.subscribe(lambda: fired.append(engine.now))
        engine.run_until(10.0)
        # Re-armed from subscription time (3.0), not from the old phase.
        assert fired == [5.0, 7.0, 9.0]

    def test_bad_period_raises(self):
        with pytest.raises(SchedulingError):
            SharedTicker(Engine(), 0.0)
