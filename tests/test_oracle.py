"""Unit tests for the protocol-invariant oracle (repro.fs.oracle)."""

from __future__ import annotations

import pytest

from repro.common.rng import RngStream
from repro.fs.client import ClientKernel
from repro.fs.config import ClusterConfig
from repro.fs.faults import FaultConfig
from repro.fs.oracle import InvariantViolation, ProtocolOracle, Violation
from repro.fs.server import OpenReply, Server
from repro.fs.vm import VirtualMemory
from repro.sim import Engine


def make_rig(client_count=1, channel_rng=None, oracle=None, **fault_kwargs):
    """Engine + server + clients wired through the RPC transport."""
    config = ClusterConfig(
        client_count=client_count, faults=FaultConfig(**fault_kwargs)
    )
    engine = Engine()
    server = Server(config.server_memory, config.block_size)
    clients = []
    for client_id in range(client_count):
        vm = VirtualMemory(
            total_pages=config.client_page_count,
            preference_seconds=config.vm_preference,
            base_demand_pages=500,
            cache_floor_pages=config.min_cache_size // config.block_size,
        )
        rng = channel_rng.fork(f"client-{client_id}") if channel_rng else None
        client = ClientKernel(
            client_id, config, engine, server, vm,
            channel_rng=rng, oracle=oracle,
        )
        server.register_client(client)
        clients.append(client)
    return config, engine, server, clients


class TestAtMostOnce:
    def test_second_execution_of_same_seq_raises(self):
        oracle = ProtocolOracle(seed=7)
        oracle.on_execute(0.0, 0, 3, "name_operation", (), None)
        with pytest.raises(InvariantViolation) as excinfo:
            oracle.on_execute(1.0, 0, 3, "name_operation", (), None)
        violation = excinfo.value.violation
        assert violation.invariant == "at-most-once"
        assert violation.seed == 7  # replayable from the exception alone

    def test_fast_path_seq_is_untracked(self):
        oracle = ProtocolOracle()
        oracle.on_execute(0.0, 0, -1, "name_operation", (), None)
        oracle.on_execute(1.0, 0, -1, "name_operation", (), None)
        assert not oracle.violations

    def test_different_clients_may_share_seq(self):
        oracle = ProtocolOracle()
        oracle.on_execute(0.0, 0, 3, "name_operation", (), None)
        oracle.on_execute(0.0, 1, 3, "name_operation", (), None)
        assert not oracle.violations


class TestMonotonicVersions:
    def test_version_moving_backwards_raises(self):
        oracle = ProtocolOracle()
        reply = OpenReply(version=5, cacheable=True, recalled=False)
        oracle.on_execute(0.0, 0, 0, "open_file", (1, 0, True), reply)
        stale = OpenReply(version=4, cacheable=True, recalled=False)
        with pytest.raises(InvariantViolation, match="monotonic-versions"):
            oracle.on_execute(1.0, 0, 1, "open_file", (1, 0, True), stale)

    def test_revalidate_reply_is_checked_too(self):
        oracle = ProtocolOracle()
        oracle.on_execute(0.0, 0, 0, "revalidate_file", (1,), 9)
        with pytest.raises(InvariantViolation, match="monotonic-versions"):
            oracle.on_execute(1.0, 0, 1, "revalidate_file", (1,), 8)

    def test_delete_resets_the_stamp(self):
        oracle = ProtocolOracle()
        oracle.on_execute(0.0, 0, 0, "revalidate_file", (1,), 9)
        oracle.on_execute(1.0, 0, 1, "delete_file", (1,), None)
        # A recreated file may legitimately restart at version 1.
        oracle.on_execute(2.0, 0, 2, "revalidate_file", (1,), 1)
        assert not oracle.violations


class TestCallbackInvariants:
    def test_clean_recall_passes(self):
        _, _, _, (client,) = make_rig()
        oracle = ProtocolOracle()
        client.open_file(0.0, 1, will_write=True)
        client.write(0.0, 1, 0, 4096)
        client.recall_dirty_data(1.0, 1)
        oracle.on_callback(1.0, client, "recall", 1)
        assert not oracle.violations

    def test_dirty_leftovers_after_recall_raise(self):
        _, _, _, (client,) = make_rig()
        oracle = ProtocolOracle()
        client.open_file(0.0, 1, will_write=True)
        client.write(0.0, 1, 0, 4096)
        with pytest.raises(InvariantViolation, match="no-stale-after"):
            oracle.on_callback(1.0, client, "recall", 1)

    def test_blocks_left_after_cache_disable_raise(self):
        _, _, _, (client,) = make_rig()
        oracle = ProtocolOracle()
        client.open_file(0.0, 1, will_write=False)
        client.read(0.0, 1, 0, 4096)
        with pytest.raises(InvariantViolation, match="no-stale-after"):
            oracle.on_callback(1.0, client, "cache_disable", 1)


class TestDirtyConservation:
    def test_clean_ledger_passes(self):
        _, _, _, (client,) = make_rig()
        oracle = ProtocolOracle()
        client.open_file(0.0, 1, will_write=True)
        client.write(0.0, 1, 0, 4096)
        oracle.final_check(1.0, [client])
        assert not oracle.violations

    def test_leaked_block_raises(self):
        _, _, _, (client,) = make_rig()
        oracle = ProtocolOracle()
        client.open_file(0.0, 1, will_write=True)
        client.write(0.0, 1, 0, 4096)
        client.counters.blocks_dirtied += 1  # a block with no fate
        with pytest.raises(InvariantViolation, match="dirty-byte-conservation"):
            oracle.final_check(1.0, [client])


class TestCollectionMode:
    def test_collects_instead_of_raising(self):
        oracle = ProtocolOracle(seed=11, raise_on_violation=False)
        oracle.on_execute(0.0, 0, 3, "name_operation", (), None)
        oracle.on_execute(1.0, 0, 3, "name_operation", (), None)
        oracle.on_execute(2.0, 0, 3, "name_operation", (), None)
        assert len(oracle.violations) == 2
        with pytest.raises(InvariantViolation):
            oracle.assert_clean()

    def test_violation_renders_with_seed(self):
        violation = Violation(
            invariant="at-most-once", time=1.5, seed=42, details="boom"
        )
        assert "at-most-once" in str(violation)
        assert "seed=42" in str(violation)


class TestOracleIsPassive:
    def test_attaching_oracle_changes_no_counters(self):
        """The oracle observes; it must never perturb the replay."""
        plain = make_rig(client_count=2)
        watched = make_rig(client_count=2, oracle=ProtocolOracle())

        def drive(clients):
            a, b = clients
            a.open_file(0.0, 1, will_write=True)
            a.write(0.0, 1, 0, 8192)
            b.open_file(1.0, 1, will_write=False)
            b.read(1.0, 1, 0, 8192)
            a.close_file(2.0, 1, wrote=True)
            b.close_file(2.0, 1, wrote=False)

        drive(plain[3])
        drive(watched[3])
        for bare, checked in zip(plain[3], watched[3]):
            assert bare.counters == checked.counters
        assert plain[2].counters == watched[2].counters

    def test_unused_channel_rng_changes_no_counters(self):
        plain = make_rig(client_count=2)
        seeded = make_rig(client_count=2, channel_rng=RngStream.root(5))

        def drive(clients):
            a, b = clients
            a.open_file(0.0, 1, will_write=True)
            a.write(0.0, 1, 0, 8192)
            a.close_file(1.0, 1, wrote=True)

        drive(plain[3])
        drive(seeded[3])
        for bare, with_rng in zip(plain[3], seeded[3]):
            assert bare.counters == with_rng.counters


class TestReplicaDivergence:
    """The divergence check must catch real propagation loss -- seeded
    through the ReplicationManager's drop-propagation test hook -- and
    stay silent on a healthy replicated replay."""

    def _replicated_replay(self, small_trace, skip_server=None):
        from repro.fs.cluster import Cluster

        config = ClusterConfig(
            client_count=4, num_servers=4, replication_factor=2
        )
        oracle = ProtocolOracle(seed=77, raise_on_violation=False)
        cluster = Cluster(config, seed=77, oracle=oracle)
        if skip_server is not None:
            cluster.replication.skip_propagation_to = {skip_server}
        cluster.replay(small_trace.records, small_trace.duration)
        return oracle

    def test_healthy_replay_is_divergence_free(self, small_trace):
        oracle = self._replicated_replay(small_trace)
        assert oracle.checks_run > 0
        assert oracle.violations == []

    def test_dropped_propagation_is_caught_with_seed(self, small_trace):
        """Silently dropping every push to one replica must surface as
        replica-divergence violations carrying the replay seed."""
        oracle = self._replicated_replay(small_trace, skip_server=1)
        diverged = [
            v for v in oracle.violations
            if v.invariant == "replica-divergence"
        ]
        assert diverged, "lost propagation went undetected"
        assert all(v.seed == 77 for v in diverged)
        assert all("server 1" in v.details for v in diverged)
        # Nothing else broke: the damage the hook does is exactly the
        # damage the divergence invariant names.
        assert len(diverged) == len(oracle.violations)

    def test_divergence_raises_in_raise_mode(self):
        """Unit-level: two live replicas disagreeing on a version stamp
        trips the final check immediately."""

        class _StubServer:
            def __init__(self, server_id, versions):
                self.server_id = server_id
                self.up = True
                self._files = dict.fromkeys(versions)
                self._versions = versions

            def peek_version(self, file_id):
                return self._versions.get(file_id, 0)

        class _StubMap:
            def replicas(self, file_id):
                return (0, 1)

        oracle = ProtocolOracle(seed=13)
        oracle.replica_map = _StubMap()
        servers = [_StubServer(0, {7: 3}), _StubServer(1, {7: 2})]
        with pytest.raises(InvariantViolation, match="replica-divergence"):
            oracle._check_replica_divergence(
                5.0, servers, oracle.replica_map, None
            )
