"""Replication chaos suite: failover must hide single-server crashes.

The chaos matrix crashes each of the four servers in turn under
``replication_factor=2`` and asserts the availability contract end to
end:

* **zero stall** -- with every file on two servers and only one server
  down at a time, every operation routes to a live replica; no client
  ever stalls (the protocol oracle rides along in raise mode, so the
  availability cannot come from skipped consistency work);
* **failover really happened** -- the replays must book failover reads,
  failure detections, and re-replicated files, or the zero-stall
  assertion would pass vacuously;
* **worker independence** -- replicated replays fan out across worker
  processes without changing a single counter;
* **generated schedules stay clean** -- a randomized crash/partition
  timeline at r=2 books zero oracle violations in collection mode.

Paging is disabled throughout: backing-store pages are pinned to one
server by design, so a paging stall cannot fail over and would mask
the zero-stall signal.
"""

from __future__ import annotations

import pytest

from repro.fs import (
    ClusterConfig,
    FaultConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ProtocolOracle,
    run_cluster_on_trace,
)
from repro.pipeline.runner import run_stage
from repro.pipeline.tasks import ReplayTask

pytestmark = pytest.mark.replication

REPLICATED_CONFIG = ClusterConfig(
    client_count=4,
    num_servers=4,
    replication_factor=2,
    paging_intensity=0.0,
)


def _rolling_crash_schedule(duration: float) -> FaultSchedule:
    """Crash servers 0..3 one after another, outages never overlapping."""
    outage = duration * 0.08
    return FaultSchedule(
        [
            FaultEvent(
                time=duration * (0.15 + 0.2 * server_id),
                kind=FaultKind.SERVER_CRASH,
                target=server_id,
                duration=outage,
            )
            for server_id in range(4)
        ]
    )


@pytest.mark.slow
@pytest.mark.parametrize("seed", (11, 23, 37))
def test_rolling_server_crashes_never_stall_a_client(seed, small_trace):
    """Each server dies in turn under r=2: every operation fails over,
    so no client stalls for a single second -- and the oracle (raise
    mode) guarantees the served data still honoured every invariant."""
    oracle = ProtocolOracle(seed=seed, raise_on_violation=True)
    result = run_cluster_on_trace(
        small_trace.records,
        small_trace.duration,
        REPLICATED_CONFIG,
        seed=seed,
        fault_schedule=_rolling_crash_schedule(small_trace.duration),
        oracle=oracle,
    )
    for server_id in range(4):
        assert result.per_server_counters[server_id].crashes == 1
    clients = result.final_counters.values()
    assert sum(c.stall_seconds for c in clients) == 0.0
    assert sum(c.rpc_retries for c in clients) == 0
    # The calm is earned, not vacuous: ops really were routed around
    # the dead servers, and the detector really declared them.
    assert sum(c.failover_reads for c in clients) > 0
    assert sum(c.failover_ops for c in clients) > 0
    assert result.server_counters.failure_detections > 0
    assert result.server_counters.rereplicated_files > 0
    assert oracle.checks_run > 0
    assert oracle.violations == []


@pytest.mark.slow
def test_single_copy_baseline_does_stall(small_trace):
    """The same rolling schedule at r=1 must stall: this pins that the
    zero-stall matrix above is measuring replication, not a fault
    schedule too gentle to hurt anyone."""
    config = ClusterConfig(
        client_count=4, num_servers=4, paging_intensity=0.0
    )
    result = run_cluster_on_trace(
        small_trace.records,
        small_trace.duration,
        config,
        seed=11,
        fault_schedule=_rolling_crash_schedule(small_trace.duration),
    )
    assert sum(
        c.stall_seconds for c in result.final_counters.values()
    ) > 0.0


def test_worker_count_does_not_change_replicated_results(small_trace):
    """workers=1 and workers=4 must produce identical r=2 replays."""
    tasks = [
        ReplayTask(
            trace_fields={"kind": "replication-chaos", "seed": seed},
            records=small_trace.records,
            duration=small_trace.duration,
            config=REPLICATED_CONFIG,
            seed=seed,
        )
        for seed in (11, 23)
    ]
    serial = run_stage("replication-serial", tasks, workers=1, cache=None)
    parallel = run_stage("replication-parallel", tasks, workers=4, cache=None)
    for one, many in zip(serial, parallel):
        assert one.final_counters == many.final_counters
        assert one.server_counters == many.server_counters
        assert one.per_server_counters == many.per_server_counters
        assert one.snapshots == many.snapshots


class TestSingleCopyInertness:
    """``replication_factor=1`` must construct none of the machinery:
    no manager, no heartbeat subscription, no fan-out -- and therefore
    no way for the replication knobs to perturb an unreplicated replay."""

    def test_r1_builds_no_manager(self):
        from repro.fs.cluster import Cluster

        cluster = Cluster(
            ClusterConfig(client_count=4, num_servers=4), seed=11
        )
        assert cluster.replication is None

    def test_heartbeat_knobs_cannot_move_an_r1_replay(self, small_trace):
        """A faulted sharded replay is byte-identical however the
        heartbeat detector is tuned, because at r=1 no detector exists."""
        results = []
        for interval, threshold in ((5.0, 3), (1.0, 7)):
            config = ClusterConfig(
                client_count=4,
                num_servers=4,
                heartbeat_interval=interval,
                heartbeat_miss_threshold=threshold,
            )
            results.append(
                run_cluster_on_trace(
                    small_trace.records,
                    small_trace.duration,
                    config,
                    seed=23,
                    fault_schedule=_rolling_crash_schedule(
                        small_trace.duration
                    ),
                )
            )
        base, tuned = results
        assert base.final_counters == tuned.final_counters
        assert base.per_server_counters == tuned.per_server_counters
        assert base.snapshots == tuned.snapshots

    def test_r1_books_no_replication_counters(self, small_trace):
        result = run_cluster_on_trace(
            small_trace.records,
            small_trace.duration,
            ClusterConfig(client_count=4, num_servers=4),
            seed=23,
            fault_schedule=_rolling_crash_schedule(small_trace.duration),
        )
        assert result.server_counters.heartbeats_missed == 0
        assert result.server_counters.failure_detections == 0
        assert result.server_counters.rereplicated_files == 0
        for counters in result.final_counters.values():
            assert counters.failover_reads == 0
            assert counters.failover_ops == 0
            assert counters.replica_writeback_blocks == 0


@pytest.mark.slow
def test_table_a_availability_strictly_improves(experiment_context):
    """The reproduction contract for Table A: every extra copy strictly
    reduces stall time under the same fault timeline, at zero oracle
    violations, and the improvement is visibly bought with failovers
    and re-replication rather than with skipped work."""
    from repro.experiments import run_experiment

    metrics = run_experiment("replication", experiment_context).metrics
    assert (
        metrics["stall_seconds_r1"]
        > metrics["stall_seconds_r2"]
        > metrics["stall_seconds_r3"]
    )
    assert metrics["oracle_violations_total"] == 0.0
    assert metrics["failover_reads_r2"] > 0
    assert metrics["failure_detections_r2"] > 0
    assert metrics["rereplicated_files_r2"] > 0
    # Replication also shrinks the crash-loss window: writebacks keep
    # draining to live replicas instead of piling up behind an outage.
    assert metrics["lost_kbytes_r2"] <= metrics["lost_kbytes_r1"]


@pytest.mark.slow
@pytest.mark.parametrize("seed", (41, 53))
def test_generated_fault_schedule_stays_oracle_clean(seed, small_trace):
    """A randomized crash/partition timeline at r=2 may stall (outages
    can overlap, partitioned clients reach no server at all) but must
    never trade correctness for availability."""
    config = ClusterConfig(
        client_count=4,
        num_servers=4,
        replication_factor=2,
        paging_intensity=0.0,
        faults=FaultConfig(
            server_crash_rate=2.0,
            server_downtime=120.0,
            client_crash_rate=1.0,
            client_downtime=60.0,
            partition_rate=1.0,
            partition_duration=45.0,
        ),
    )
    oracle = ProtocolOracle(seed=seed, raise_on_violation=False)
    result = run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=seed,
        oracle=oracle,
    )
    assert result.server_counters.crashes > 0
    assert oracle.checks_run > 0
    assert oracle.violations == []
